"""Component throughput microbenchmarks.

Not paper artifacts — these track the performance of the substrate
itself (cache model, predictor, full core replay, tree fit/predict), so
regressions in simulation speed are visible.
"""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.simulator import (
    CacheConfig,
    GsharePredictor,
    MachineConfig,
    SetAssociativeCache,
    SimulatedCore,
)
from repro.workloads import PhaseParams, synthesize_block


@pytest.fixture(scope="module")
def addresses():
    rng = np.random.default_rng(0)
    return [int(a) for a in rng.integers(0, 1 << 24, 20000)]


def test_cache_access_throughput(benchmark, addresses):
    cache = SetAssociativeCache(CacheConfig(32 * 1024, 8))

    def run():
        access = cache.access
        for addr in addresses:
            access(addr)

    benchmark(run)


def test_branch_predictor_throughput(benchmark):
    rng = np.random.default_rng(0)
    outcomes = [bool(b) for b in rng.random(20000) < 0.8]
    predictor = GsharePredictor(12)

    def run():
        access = predictor.access
        for taken in outcomes:
            access(0x400, taken)

    benchmark(run)


def test_core_replay_throughput(benchmark):
    block = synthesize_block(PhaseParams(), 4096, rng=0)
    core = SimulatedCore(MachineConfig(), rng=0)
    result = benchmark(core.run_block, block)
    assert result.cycles > 0


def test_tree_fit_throughput(benchmark, bench_dataset):
    model = benchmark.pedantic(
        lambda: M5Prime(min_instances=25).fit(bench_dataset),
        rounds=1,
        iterations=1,
    )
    assert model.n_leaves >= 1


def test_tree_predict_throughput(benchmark, bench_dataset):
    model = M5Prime(min_instances=25).fit(bench_dataset)
    predictions = benchmark(model.predict, bench_dataset.X)
    assert predictions.shape[0] == bench_dataset.n_instances

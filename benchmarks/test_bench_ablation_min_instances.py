"""A2 — ablation: minimum leaf population sweep (the paper's 430 rule)."""

from conftest import run_artifact


def test_min_instances_ablation(benchmark, config):
    run_artifact(benchmark, "A2", config)

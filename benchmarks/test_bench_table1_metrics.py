"""T1 — regenerate Table I and verify full counter coverage."""

from conftest import run_artifact


def test_table1_metric_catalogue(benchmark, config):
    report = run_artifact(benchmark, "T1", config)
    assert "CPI" in report.body
    assert "ILD_STALL" in report.body

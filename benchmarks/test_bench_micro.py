"""Micro-benchmarks of the hot paths the parallel layer accelerates.

Unlike the artifact benchmarks (which each time one whole experiment),
these isolate the four operations ``repro bench`` tracks — tree fit,
prediction, cross validation and suite simulation — so the CI
regression gate catches a slow-down in any one of them even when the
experiment-level numbers hide it.
"""

import functools

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.core.tree.splitting import find_best_split
from repro.evaluation import cross_validate
from repro.workloads import simulate_suite


@pytest.fixture(scope="module")
def factory(config):
    return functools.partial(M5Prime, min_instances=config.min_instances)


@pytest.fixture(scope="module")
def fitted(factory, bench_dataset):
    return factory().fit(bench_dataset)


def test_micro_fit(benchmark, factory, bench_dataset):
    benchmark(lambda: factory().fit(bench_dataset))


def test_micro_predict(benchmark, fitted, bench_dataset):
    benchmark(lambda: fitted.predict(bench_dataset.X))


def test_micro_cross_validate(benchmark, factory, bench_dataset, config):
    benchmark.pedantic(
        lambda: cross_validate(
            factory, bench_dataset, n_folds=config.n_folds, rng=config.seed
        ),
        rounds=1,
        iterations=1,
    )


def test_micro_find_best_split(benchmark, bench_dataset):
    X, y = bench_dataset.X, bench_dataset.y
    benchmark(lambda: find_best_split(X, y, min_leaf=25))


def test_micro_suite_simulate(benchmark):
    result = benchmark.pedantic(
        lambda: simulate_suite(
            sections_per_workload=8, instructions_per_section=512, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    assert np.isfinite(result.dataset.y).all()

"""R5 — the motivating claim: uniform fixed penalties mis-state performance."""

from conftest import run_artifact


def test_naive_fixed_penalty_gap(benchmark, config):
    report = run_artifact(benchmark, "R5", config)
    ratio = float(report.measured["error ratio naive/tree"].rstrip("x"))
    assert ratio >= 2.0

"""E2 — extension: recover phase boundaries from counters (Sherwood [7])."""

from conftest import run_artifact


def test_phase_tracking(benchmark, config):
    run_artifact(benchmark, "E2", config)

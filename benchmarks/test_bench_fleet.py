"""Fleet benchmarks: router round-trip latency and the loadtest SLO.

Two measurements keep the fleet honest:

* the cost of the router hop — one ``/predict`` through the fleet vs
  straight to a single replica stays benchmarked, so the reverse-proxy
  overhead shows up in the regression gate instead of silently eating
  the latency budget;
* a short :func:`repro.serve.loadtest.run_loadtest` run scored against
  the checked-in thresholds (``benchmarks/loadtest_slo.json``) — the
  same gate the serve-chaos CI job applies at full scale.
"""

import functools
import http.client
import json
import os

import pytest

from repro.core.tree import M5Prime
from repro.serve.fleet import FleetConfig, ServingFleet
from repro.serve.loadtest import run_loadtest
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer

SLO_PATH = os.path.join(os.path.dirname(__file__), "loadtest_slo.json")


@pytest.fixture(scope="module")
def slo():
    with open(SLO_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)["slo"]


@pytest.fixture(scope="module")
def fleet_registry(tmp_path_factory, config, bench_dataset):
    directory = tmp_path_factory.mktemp("bench-fleet-registry")
    registry = ModelRegistry(directory)
    model = M5Prime(min_instances=config.min_instances).fit(bench_dataset)
    registry.publish("cpi-tree", model, aliases=["prod"])
    return registry


@pytest.fixture(scope="module")
def fleet(fleet_registry):
    serving = ServingFleet(FleetConfig(
        model="cpi-tree@prod", workers=2, port=0,
        registry_dir=str(fleet_registry.directory),
        drain_timeout_s=2.0, startup_timeout_s=60.0,
    )).start()
    serving.serve_in_background()
    yield serving
    serving.shutdown()


@pytest.fixture(scope="module")
def single(fleet_registry):
    server = ModelServer(
        registry=fleet_registry, default_model="cpi-tree@prod", port=0
    )
    server.start()
    server.serve_in_background()
    yield server
    server.shutdown(drain_timeout=2.0)


def one_predict(port, body):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("POST", "/predict", body=body,
                     headers={"Content-Type": "application/json",
                              "Connection": "close"})
        response = conn.getresponse()
        payload = response.read()
        assert response.status == 200, payload
        return payload
    finally:
        conn.close()


@pytest.fixture(scope="module")
def body(bench_dataset):
    return json.dumps(
        {"section": bench_dataset.X[0].tolist()}
    ).encode("utf-8")


def test_fleet_predict_roundtrip(benchmark, fleet, body):
    """One request through the router (proxy hop included)."""
    benchmark(functools.partial(one_predict, fleet.bound_port, body))


def test_single_replica_predict_roundtrip(benchmark, single, body):
    """The same request straight to one replica (the baseline)."""
    benchmark(functools.partial(one_predict, single.bound_port, body))


def test_fleet_loadtest_meets_slo(fleet, bench_dataset, slo):
    """A short healthy-fleet run must clear the checked-in SLO gate."""
    result = run_loadtest(
        host="127.0.0.1", port=fleet.bound_port,
        sections=bench_dataset.X[:16].tolist(),
        rps=100.0, duration_s=2.0, concurrency=8, seed=0,
    )
    assert result.failed <= slo["max_failed"]
    assert result.resets <= slo["max_resets"]
    assert result.success_rate >= slo["min_success_rate"]
    if slo["sheds_require_retry_after"]:
        assert result.shed_with_retry_after == result.shed
    assert result.slo_ok(slo["min_success_rate"])

#!/usr/bin/env python
"""Gate benchmark regressions against a checked-in baseline.

Compares a fresh benchmark JSON against ``benchmarks/baseline.json`` and
exits non-zero when any benchmark's mean time regressed beyond the
tolerance (default 30 %).  Both pytest-benchmark documents
(``{"benchmarks": [{"name", "stats": {"mean"}}]}``) and the
``repro-bench/1`` schema (``{"benchmarks": [{"name", "mean_s"}]}``) are
accepted on either side.

Usage::

    python benchmarks/compare.py bench.json benchmarks/baseline.json
    python benchmarks/compare.py bench.json baseline.json --tolerance 0.5
    python benchmarks/compare.py bench.json baseline.json --update

``--update`` rewrites the baseline from the current run (use after an
intentional performance change) instead of comparing.

Latency-history mode tracks the chaos loadtest instead of pytest
benchmarks: ``--loadtest loadtest.json`` appends a compact record of
the run (tail latencies, throughput, SLO verdict) to
``benchmarks/loadtest_history.jsonl`` and *warns* — without failing —
when p99 regressed beyond the tolerance against the previous entry.
Tail latency on shared CI runners is too noisy to gate on, but a
drifting p99 should be visible in the log, not silent::

    python benchmarks/compare.py --loadtest loadtest.json \
        --history benchmarks/loadtest_history.jsonl

Stdlib-only on purpose: CI can run it before any project install.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
from typing import Dict, Optional


def load_means(path: str) -> Dict[str, float]:
    """``{benchmark name: mean seconds}`` from either supported schema."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise SystemExit(f"{path}: no 'benchmarks' list (not a benchmark JSON?)")
    means: Dict[str, float] = {}
    for entry in benchmarks:
        name = entry.get("name")
        if name is None:
            raise SystemExit(f"{path}: benchmark entry without a name")
        if "mean_s" in entry:  # repro-bench/1
            means[name] = float(entry["mean_s"])
        elif "stats" in entry:  # pytest-benchmark
            means[name] = float(entry["stats"]["mean"])
        else:
            raise SystemExit(f"{path}: {name!r} has neither mean_s nor stats.mean")
    return means


def write_baseline(path: str, means: Dict[str, float]) -> None:
    document = {
        "schema": "repro-bench/1",
        "benchmarks": [
            {"name": name, "mean_s": mean} for name, mean in sorted(means.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")


def compare(current: Dict[str, float], baseline: Dict[str, float],
            tolerance: float) -> int:
    regressions = []
    width = max((len(n) for n in current), default=10)
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"  {name:<{width}}  {mean * 1000:9.1f}ms  (new, no baseline)")
            continue
        ratio = mean / base if base > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + tolerance:
            marker = "  REGRESSION"
            regressions.append((name, base, mean, ratio))
        print(f"  {name:<{width}}  {mean * 1000:9.1f}ms  "
              f"baseline {base * 1000:9.1f}ms  x{ratio:.2f}{marker}")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:<{width}}  MISSING from current run")
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{tolerance:.0%} over baseline:")
        for name, base, mean, ratio in regressions:
            print(f"  {name}: {base * 1000:.1f}ms -> {mean * 1000:.1f}ms "
                  f"(x{ratio:.2f})")
        return 1
    print(f"\nno regression beyond {tolerance:.0%} tolerance "
          f"({len(current)} benchmark(s) checked)")
    return 0


def load_loadtest(path: str) -> Dict[str, object]:
    """A compact history record from one ``repro loadtest`` JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    result = document.get("result")
    if not isinstance(result, dict):
        raise SystemExit(f"{path}: no 'result' object (not a loadtest JSON?)")
    latency = result.get("latency_ms") or {}
    record: Dict[str, object] = {
        "ts": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "sha": os.environ.get("GITHUB_SHA", ""),
        "requests": result.get("requests"),
        "success_rate": result.get("success_rate"),
        "achieved_rps": result.get("achieved_rps"),
        "slo_met": document.get("slo_met"),
    }
    for quantile in ("p50", "p90", "p99", "max"):
        record[quantile] = latency.get(quantile)
    return record


def loadtest_history(current_path: str, history_path: str,
                     tolerance: float) -> int:
    """Append a loadtest record to the history; warn on p99 regression.

    Always returns 0: the SLO gate (`repro loadtest` itself) owns
    pass/fail, and CI-runner tail latency is too noisy for a hard gate —
    this keeps the trend on the record and makes drift loud.
    """
    record = load_loadtest(current_path)
    previous: Optional[Dict[str, object]] = None
    if os.path.exists(history_path):
        with open(history_path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if lines:
            previous = json.loads(lines[-1])
    p99 = record.get("p99")
    prior_p99 = (previous or {}).get("p99")
    if isinstance(p99, (int, float)) and isinstance(prior_p99, (int, float)) \
            and prior_p99 > 0:
        ratio = p99 / prior_p99
        print(f"  loadtest p99 {p99:.1f}ms  previous {prior_p99:.1f}ms  "
              f"x{ratio:.2f}")
        if ratio > 1.0 + tolerance:
            print(f"WARNING: loadtest p99 regressed x{ratio:.2f} "
                  f"(beyond {tolerance:.0%}) over the previous entry")
    else:
        print(f"  loadtest p99 {p99}ms  (no previous entry to compare)")
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended to {history_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="?", help="fresh benchmark JSON")
    parser.add_argument("baseline", nargs="?", help="checked-in baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed mean-time growth (default 0.30 = 30%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--loadtest", metavar="JSON",
                        help="loadtest JSON to append to the latency history")
    parser.add_argument("--history", metavar="JSONL",
                        default="benchmarks/loadtest_history.jsonl",
                        help="latency history file (loadtest mode)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")
    if args.loadtest is not None:
        return loadtest_history(args.loadtest, args.history, args.tolerance)
    if args.current is None or args.baseline is None:
        parser.error("current and baseline JSONs are required "
                     "(or use --loadtest)")
    current = load_means(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"wrote {args.baseline} ({len(current)} benchmark(s))")
        return 0
    baseline = load_means(args.baseline)
    return compare(current, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())

"""F3 — regenerate the predicted-vs-actual CPI scatter (paper Figure 3)."""

from conftest import run_artifact


def test_figure3_predicted_vs_actual(benchmark, config):
    report = run_artifact(benchmark, "F3", config)
    assert float(report.measured["pooled correlation"]) >= 0.95

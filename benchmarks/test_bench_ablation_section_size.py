"""A4 — ablation: equal-instruction section size."""

from conftest import run_artifact


def test_section_size_ablation(benchmark, config):
    run_artifact(benchmark, "A4", config)

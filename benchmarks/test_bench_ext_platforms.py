"""E1 — extension: compare machine variants (the paper's Section I pitch)."""

from conftest import run_artifact


def test_platform_comparison(benchmark, config):
    run_artifact(benchmark, "E1", config)

"""Forest-serving benchmarks: arena throughput and refined accuracy.

The acceptance bar for the compiled forest arena is a >= 8x speedup
over interpreting every member tree separately on a 10k-row batch,
with bit-identical outputs; the refinement pass must additionally keep
the suite-corpus training MAE at or below the single-tree M5' bar.
Both sides stay measured so the regression gate catches the arena
drifting back toward interpreted cost.
"""

import functools

import numpy as np
import pytest

from repro.baselines.bagging import BaggedM5
from repro.core.tree import M5Prime
from repro.core.tree.node import route

ROWS = 10_000
N_TREES = 10


@pytest.fixture(scope="module")
def forest(config, bench_dataset):
    model = BaggedM5(
        n_estimators=N_TREES, min_instances=config.min_instances,
        seed=config.seed,
    ).fit(bench_dataset)
    model.compiled_  # compile the arena outside every timed region
    return model


@pytest.fixture(scope="module")
def single_tree(config, bench_dataset):
    return M5Prime(min_instances=config.min_instances).fit(bench_dataset)


@pytest.fixture(scope="module")
def batch(bench_dataset):
    X = bench_dataset.X
    repeats = -(-ROWS // X.shape[0])
    return np.tile(X, (repeats, 1))[:ROWS]


def interpreted_member(member, X):
    root = member.root_
    return np.array(
        [route(root, x).model.predict_one(x) for x in X], dtype=np.float64
    )


def interpreted_forest(forest, X):
    return np.vstack(
        [interpreted_member(member, X) for member in forest]
    ).mean(axis=0)


def test_forest_predict_compiled_10k(benchmark, forest, batch):
    predictions = benchmark(
        functools.partial(forest.compiled_.predict, batch)
    )
    assert predictions.shape == (ROWS,)


def test_forest_predict_interpreted_10k(benchmark, forest, batch):
    predictions = benchmark.pedantic(
        functools.partial(interpreted_forest, forest, batch),
        rounds=3, iterations=1,
    )
    assert predictions.shape == (ROWS,)


def test_forest_compiled_speedup(forest, batch):
    """The ISSUE acceptance bar: arena >= 8x interpreted on 10k rows."""
    import time

    def best_of(fn, rounds=3):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    compiled_s = best_of(lambda: forest.compiled_.predict(batch))
    interpreted_s = best_of(lambda: interpreted_forest(forest, batch))
    speedup = interpreted_s / compiled_s
    print(f"\nforest compiled {compiled_s * 1000:.2f}ms, "
          f"interpreted {interpreted_s * 1000:.2f}ms, x{speedup:.1f}")
    assert np.array_equal(
        forest.compiled_.predict(batch), interpreted_forest(forest, batch)
    )
    assert speedup >= 8.0, (
        f"forest compiled speedup x{speedup:.1f} below the 8x bar"
    )


def test_refined_forest_suite_mae(forest, single_tree, bench_dataset):
    """Refined-forest training MAE must not exceed the single-tree bar."""
    from repro.serve.refine import RefinedForest

    refinement = RefinedForest(forest).fit(bench_dataset)
    tree_mae = float(np.mean(np.abs(
        single_tree.predict(bench_dataset.X) - bench_dataset.y
    )))
    refined_mae = refinement.refined_.train_mae
    print(f"\nrefined forest MAE {refined_mae:.5f} vs "
          f"single-tree MAE {tree_mae:.5f}")
    assert refined_mae <= tree_mae, (
        f"refined forest MAE {refined_mae:.5f} exceeds the "
        f"single-tree bar {tree_mae:.5f}"
    )

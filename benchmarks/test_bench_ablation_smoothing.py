"""A3 — ablation: M5 smoothing on/off."""

from conftest import run_artifact


def test_smoothing_ablation(benchmark, config):
    run_artifact(benchmark, "A3", config)

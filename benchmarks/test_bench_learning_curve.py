"""A5 — learning curve: accuracy vs training-set size (methodology extra)."""

from repro.core.tree import M5Prime
from repro.evaluation import learning_curve


def test_learning_curve(benchmark, config, bench_dataset):
    def run():
        return learning_curve(
            lambda: M5Prime(min_instances=max(8, config.min_instances // 2)),
            bench_dataset,
            rng=config.seed,
        )

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(curve.to_table())
    benchmark.extra_info["curve"] = curve.to_table()
    # More data must not hurt: the full-pool point is at least as good as
    # the smallest-pool point (loose band for sampling noise).
    assert curve.points[-1].result.rae <= curve.points[0].result.rae * 1.10

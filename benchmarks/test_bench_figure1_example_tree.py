"""F1 — regenerate the Figure 1 example tree on Y = f(X1..X4)."""

from conftest import run_artifact


def test_figure1_example_tree(benchmark, config):
    report = run_artifact(benchmark, "F1", config)
    assert report.measured["root split"] == "X1"

"""Fast-engine benchmarks: sweep throughput, the >=50x gate, MAE parity.

The fast engine's reason to exist is design-space sweeps: predicting a
suite's sections without replaying traces.  These benchmarks keep the
claim measured on a 25-workload sweep and assert two acceptance bars:

* the fast engine is at least 50x faster than the trace simulator on
  the same sweep (calibration is loaded outside the timed region — it
  is fitted once and amortized across every sweep point by contract);
* an M5' tree fitted on the fast-engine dataset cross-validates within
  10% of the MAE of a tree fitted on the trace dataset, so the fast
  path is good enough to *train on*, not just to screen with.
"""

import functools
import time

import pytest

from repro.conformance import corpus_profiles
from repro.core.tree import M5Prime
from repro.evaluation import cross_validate
from repro.experiments import suite_dataset
from repro.experiments.data import artifact_cache
from repro.fastsim import fast_suite, get_calibration
from repro.workloads import simulate_suite, spec_like_suite

SWEEP_WORKLOADS = 25
SWEEP_SECTIONS = 24
SWEEP_INSTRUCTIONS = 2048
SPEEDUP_BAR = 50.0
MAE_PARITY = 1.10


@pytest.fixture(scope="module")
def calibration(config):
    return get_calibration(artifact_cache(), seed=config.seed)


@pytest.fixture(scope="module")
def sweep():
    """25 sweep workloads: the suite plus isolated corpus phases."""
    profiles = list(spec_like_suite()) + list(corpus_profiles())
    assert len(profiles) >= SWEEP_WORKLOADS
    return profiles[:SWEEP_WORKLOADS]


def _fast_sweep(sweep, config, calibration):
    return fast_suite(
        sweep,
        sections_per_workload=SWEEP_SECTIONS,
        instructions_per_section=SWEEP_INSTRUCTIONS,
        seed=config.seed,
        calibration=calibration,
    )


def _trace_sweep(sweep, config):
    return simulate_suite(
        sweep,
        sections_per_workload=SWEEP_SECTIONS,
        instructions_per_section=SWEEP_INSTRUCTIONS,
        seed=config.seed,
    )


def test_simulate_suite_fast(benchmark, sweep, config, calibration):
    result = benchmark(
        functools.partial(_fast_sweep, sweep, config, calibration)
    )
    assert result.dataset.n_instances == SWEEP_WORKLOADS * SWEEP_SECTIONS


def test_fastsim_speedup_gate(sweep, config, calibration):
    """The ISSUE acceptance bar: fast >= 50x trace on the 25-workload sweep."""

    def best_of(fn, rounds):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    fast_s = best_of(lambda: _fast_sweep(sweep, config, calibration), rounds=3)
    trace_s = best_of(lambda: _trace_sweep(sweep, config), rounds=2)
    speedup = trace_s / fast_s
    print(f"\nfast {fast_s * 1000:.2f}ms, trace {trace_s * 1000:.1f}ms, "
          f"x{speedup:.0f}")
    assert speedup >= SPEEDUP_BAR, (
        f"fast-engine speedup x{speedup:.1f} below the x{SPEEDUP_BAR:.0f} bar"
    )


def test_fastsim_mae_parity(config, bench_dataset):
    """Trees fitted on fast datasets must cross-validate near trace MAE."""
    fast_dataset = suite_dataset(config, engine="fast")
    assert fast_dataset.n_instances == bench_dataset.n_instances
    factory = functools.partial(M5Prime, min_instances=config.min_instances)
    trace_mae = cross_validate(
        factory, bench_dataset, n_folds=config.n_folds, rng=config.seed
    ).mean.mae
    fast_mae = cross_validate(
        factory, fast_dataset, n_folds=config.n_folds, rng=config.seed
    ).mean.mae
    print(f"\ntrace MAE {trace_mae:.4f}, fast MAE {fast_mae:.4f}, "
          f"ratio {fast_mae / trace_mae:.3f}")
    assert fast_mae <= MAE_PARITY * trace_mae, (
        f"fast-dataset MAE {fast_mae:.4f} exceeds {MAE_PARITY:.2f}x the "
        f"trace-dataset MAE {trace_mae:.4f}"
    )

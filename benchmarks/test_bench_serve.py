"""Serving-layer benchmarks: predict throughput, compiled vs interpreted.

The acceptance bar for the compiled evaluator is a >= 10x speedup over
the per-row interpreted walk on a 10k-row batch; these benchmarks keep
both sides measured so the regression gate catches the compiled path
drifting back toward interpreted cost (and the speedup assertion fails
the suite outright if the bar is ever lost).
"""

import functools

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.core.tree.node import route

ROWS = 10_000


@pytest.fixture(scope="module")
def fitted(config, bench_dataset):
    model = M5Prime(min_instances=config.min_instances).fit(bench_dataset)
    model.compiled_  # compile outside every timed region
    return model


@pytest.fixture(scope="module")
def batch(bench_dataset):
    X = bench_dataset.X
    repeats = -(-ROWS // X.shape[0])
    return np.tile(X, (repeats, 1))[:ROWS]


def interpreted_predict(model, X):
    root = model.root_
    return np.array(
        [route(root, x).model.predict_one(x) for x in X], dtype=np.float64
    )


def test_serve_predict_compiled_10k(benchmark, fitted, batch):
    predictions = benchmark(functools.partial(fitted.compiled_.predict, batch))
    assert predictions.shape == (ROWS,)


def test_serve_predict_interpreted_10k(benchmark, fitted, batch):
    predictions = benchmark.pedantic(
        functools.partial(interpreted_predict, fitted, batch),
        rounds=3, iterations=1,
    )
    assert predictions.shape == (ROWS,)


def test_serve_compiled_speedup(fitted, batch):
    """The ISSUE acceptance bar: compiled >= 10x interpreted on 10k rows."""
    import time

    def best_of(fn, rounds=3):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    compiled_s = best_of(lambda: fitted.compiled_.predict(batch))
    interpreted_s = best_of(lambda: interpreted_predict(fitted, batch))
    speedup = interpreted_s / compiled_s
    print(f"\ncompiled {compiled_s * 1000:.2f}ms, "
          f"interpreted {interpreted_s * 1000:.2f}ms, x{speedup:.1f}")
    assert np.array_equal(
        fitted.compiled_.predict(batch), interpreted_predict(fitted, batch)
    )
    assert speedup >= 10.0, f"compiled speedup x{speedup:.1f} below the 10x bar"

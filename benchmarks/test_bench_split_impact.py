"""R4 — split-variable impact estimation (the paper's LdBlSta example)."""

from conftest import run_artifact


def test_split_variable_impacts(benchmark, config):
    report = run_artifact(benchmark, "R4", config)
    assert int(report.measured["splits analyzed"]) >= 1

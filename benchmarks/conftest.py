"""Benchmark fixtures.

Each benchmark module regenerates one paper artifact (table, figure or
quoted result).  The preset is selectable via ``REPRO_BENCH_PRESET``
(``quick`` by default; set ``paper`` for the full 430-min-instances
regime, which simulates ~15k sections once and caches them on disk).

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the paper-vs-measured report each benchmark prints; the
same text is attached to ``benchmark.extra_info`` for the JSON output.
"""

import os

import pytest

from repro.experiments import ExperimentConfig, run_experiment


def bench_config() -> ExperimentConfig:
    preset = os.environ.get("REPRO_BENCH_PRESET", "quick")
    return ExperimentConfig.by_name(preset)


@pytest.fixture(scope="session")
def config():
    return bench_config()


@pytest.fixture(scope="session")
def bench_dataset(config):
    """The suite dataset, simulated once per session (disk-cached)."""
    from repro.experiments import suite_dataset

    return suite_dataset(config)


def run_artifact(benchmark, experiment_id, config):
    """Benchmark one experiment, print and attach its report."""
    report = benchmark.pedantic(
        run_experiment, args=(experiment_id, config), rounds=1, iterations=1
    )
    print()
    print(report.render())
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["measured"] = report.measured
    benchmark.extra_info["checks"] = report.checks
    assert report.all_checks_pass, (
        f"{experiment_id} shape checks failed: "
        + ", ".join(k for k, v in report.checks.items() if not v)
    )
    return report

"""E3 — extension: leave-one-workload-out generalization."""

from conftest import run_artifact


def test_leave_one_workload_out(benchmark, config):
    run_artifact(benchmark, "E3", config)

"""A1 — ablation: post-pruning on/off (paper Section IV-B)."""

from conftest import run_artifact


def test_pruning_ablation(benchmark, config):
    run_artifact(benchmark, "A1", config)

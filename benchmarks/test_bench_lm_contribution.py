"""R3 — the LM8/LM11 worked examples: per-event contribution arithmetic."""

from conftest import run_artifact


def test_leaf_model_contribution_examples(benchmark, config):
    run_artifact(benchmark, "R3", config)

"""F2 — regenerate the performance-analysis tree (paper Figure 2).

Shape targets: L2M at the root, cache/TLB/branch families near the top,
a constant-like high-CPI class capturing cactusADM-like sections (the
paper's LM18), mcf-like sections concentrated in an L2M+DTLB class
(LM17), and LCP-limited sections detectable (LM10).
"""

from conftest import run_artifact


def test_figure2_performance_tree(benchmark, config):
    report = run_artifact(benchmark, "F2", config)
    assert report.measured["root split"] == "L2M"

"""R2 — the method comparison (paper: ANN C=0.99, SVM C=0.98, M5' C=0.98).

The shape to hold: black-box ANN/SVM land within a whisker of M5', the
piecewise-constant CART tree and the single global linear model trail
it, and the traditional fixed-penalty model is far worse than anything
learned.
"""

from conftest import run_artifact


def test_method_comparison(benchmark, config):
    report = run_artifact(benchmark, "R2", config)
    assert "M5P model tree" in report.measured

"""R1 — the headline 10-fold CV accuracy (paper: C=0.98, MAE=0.05, RAE=7.83%)."""

from conftest import run_artifact


def test_cross_validated_accuracy(benchmark, config):
    report = run_artifact(benchmark, "R1", config)
    correlation = float(report.measured["C (mean over folds)"])
    assert correlation > 0.95

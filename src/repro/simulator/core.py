"""The simulated core: replays instruction blocks through all components.

:class:`SimulatedCore` owns the caches, TLBs, branch predictor and store
buffer, replays an :class:`~repro.simulator.isa.InstructionBlock` through
them in program order, hands the resulting event flags to the
cycle-accounting pipeline, and emits raw PMU counts with the exact
architectural event names of Table I.

Component state persists across blocks (warm caches), mirroring
continuous collection on real hardware; call :meth:`reset` between
unrelated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro._util import RandomState, check_random_state
from repro.counters import events as ev
from repro.simulator.branch import GsharePredictor
from repro.simulator.cache import SetAssociativeCache
from repro.simulator.config import MachineConfig
from repro.simulator.isa import (
    InstructionBlock,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_STORE,
)
from repro.simulator.memdep import (
    BLOCK_OVERLAP,
    BLOCK_STA,
    BLOCK_STD,
    StoreBuffer,
)
from repro.simulator.pipeline import CycleAccounting, CycleBreakdown, SectionEvents
from repro.simulator.tlb import TranslationBuffer, TwoLevelDTLB

#: Wrong-path instructions executed per branch mispredict before the flush,
#: used to model the speculative component of the DTLB_MISSES events
#: (which, unlike MEM_LOAD_RETIRED.DTLB_MISS, count speculative activity).
WRONG_PATH_DEPTH = 6


@dataclass
class BlockResult:
    """Everything the core produces for one replayed block."""

    counts: Dict[str, float]
    cycles: float
    breakdown: CycleBreakdown
    events: SectionEvents

    @property
    def cpi(self) -> float:
        return self.cycles / self.counts[ev.INST_RETIRED_ANY.name]


class SimulatedCore:
    """A Core 2 Duo-like core with PMU-style event collection."""

    def __init__(self, config: Optional[MachineConfig] = None, rng: RandomState = None) -> None:
        self.config = config or MachineConfig()
        self.rng = check_random_state(rng)
        self.l1i = SetAssociativeCache(self.config.l1i)
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.dtlb = TwoLevelDTLB(self.config.dtlb0, self.config.dtlb)
        self.itlb = TranslationBuffer(self.config.itlb)
        self.predictor = GsharePredictor(self.config.branch_history_bits)
        self.store_buffer = StoreBuffer(self.config.store_buffer_window)
        self.accounting = CycleAccounting(self.config)

    def statistics(self):
        """Hit/miss statistics of every component since construction/reset."""
        from repro.simulator.stats import collect_stats

        return collect_stats(self)

    def reset(self) -> None:
        """Cold-start all micro-architectural state."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.dtlb.flush()
        self.itlb.flush()
        self.predictor.reset()
        self.store_buffer.clear()

    # ------------------------------------------------------------------
    def run_block(self, block: InstructionBlock) -> BlockResult:
        """Replay one block and return counts, cycles and event detail."""
        n = len(block)
        line_bytes = self.config.l1d.line_bytes

        l1dm = np.zeros(n, dtype=bool)
        l2m = np.zeros(n, dtype=bool)
        store_l1m = np.zeros(n, dtype=bool)
        store_l2m = np.zeros(n, dtype=bool)
        l1im = np.zeros(n, dtype=bool)
        l2im = np.zeros(n, dtype=bool)
        itlbm = np.zeros(n, dtype=bool)
        dtlb0_ld = np.zeros(n, dtype=bool)
        dtlb_walk_ld = np.zeros(n, dtype=bool)
        dtlb_walk_st = np.zeros(n, dtype=bool)
        mispred = np.zeros(n, dtype=bool)
        ldbl_sta = np.zeros(n, dtype=bool)
        ldbl_std = np.zeros(n, dtype=bool)
        ldbl_ov = np.zeros(n, dtype=bool)

        misal = block.misaligned_mask()
        split = block.split_mask(line_bytes)
        is_load = block.kind == KIND_LOAD
        is_store = block.kind == KIND_STORE
        is_branch = block.kind == KIND_BRANCH
        split_ld = split & is_load
        split_st = split & is_store

        # Local bindings keep the hot loop free of attribute lookups.
        kinds = block.kind
        pcs = block.pc
        addrs = block.addr
        sizes = block.size
        takens = block.taken
        stas = block.sta
        stds = block.std
        splits = split
        l1i_access = self.l1i.access
        l1d_access = self.l1d.access
        l2_access = self.l2.access
        l1i_fill = self.l1i.fill
        l1d_fill = self.l1d.fill
        l2_fill = self.l2.fill
        itlb_access = self.itlb.access
        dtlb_access = self.dtlb.access
        predict = self.predictor.access
        sb_check = self.store_buffer.check_load
        sb_push = self.store_buffer.push_store
        sb_advance = self.store_buffer.advance
        prefetch = self.config.prefetch_next_line
        # Stream-detector state for the data prefetcher: when consecutive
        # demand misses hit adjacent lines (an ascending sweep), the
        # prefetcher runs ahead several lines, like Core 2's DPL.
        last_miss_line = -(1 << 60)
        stream_depth = 8
        line_shift = line_bytes.bit_length() - 1

        for i in range(n):
            pc = int(pcs[i])
            if not itlb_access(pc):
                itlbm[i] = True
            if not l1i_access(pc):
                l1im[i] = True
                if not l2_access(pc):
                    l2im[i] = True
                if prefetch:
                    # Sequential front-end prefetch: the next line follows
                    # the demand miss into both cache levels.
                    l1i_fill(pc + line_bytes)
                    l2_fill(pc + line_bytes)
            kind = kinds[i]
            if kind == KIND_LOAD:
                addr = int(addrs[i])
                size = int(sizes[i])
                blocked = sb_check(addr, size)
                if blocked == BLOCK_STA:
                    ldbl_sta[i] = True
                elif blocked == BLOCK_STD:
                    ldbl_std[i] = True
                elif blocked == BLOCK_OVERLAP:
                    ldbl_ov[i] = True
                l0_miss, walk = dtlb_access(addr)
                if l0_miss:
                    dtlb0_ld[i] = True
                    if walk:
                        dtlb_walk_ld[i] = True
                if not l1d_access(addr):
                    l1dm[i] = True
                    if not l2_access(addr):
                        l2m[i] = True
                    if prefetch:
                        # Streamer: adjacent lines follow a demand miss, and
                        # a detected ascending sweep is run ahead of (this
                        # is what hides strided workloads on Core 2).
                        miss_line = addr >> line_shift
                        depth = (
                            stream_depth
                            if 0 < miss_line - last_miss_line <= 2
                            else 1
                        )
                        last_miss_line = miss_line
                        for ahead in range(1, depth + 1):
                            l1d_fill(addr + ahead * line_bytes)
                            l2_fill(addr + ahead * line_bytes)
                if splits[i]:
                    second = addr + size - 1
                    if not l1d_access(second):
                        l2_access(second)
            elif kind == KIND_STORE:
                addr = int(addrs[i])
                size = int(sizes[i])
                sb_push(addr, size, bool(stas[i]), bool(stds[i]))
                l0_miss, walk = dtlb_access(addr)
                if l0_miss and walk:
                    dtlb_walk_st[i] = True
                if not l1d_access(addr):
                    store_l1m[i] = True
                    if not l2_access(addr):
                        store_l2m[i] = True
                    if prefetch:
                        miss_line = addr >> line_shift
                        depth = (
                            stream_depth
                            if 0 < miss_line - last_miss_line <= 2
                            else 1
                        )
                        last_miss_line = miss_line
                        for ahead in range(1, depth + 1):
                            l1d_fill(addr + ahead * line_bytes)
                            l2_fill(addr + ahead * line_bytes)
                if splits[i]:
                    second = addr + size - 1
                    if not l1d_access(second):
                        l2_access(second)
            else:
                sb_advance(1)
                if kind == KIND_BRANCH and not predict(pc, bool(takens[i])):
                    mispred[i] = True

        events = SectionEvents(
            is_load=is_load,
            is_store=is_store,
            is_branch=is_branch,
            l1dm=l1dm,
            l2m=l2m,
            store_l1m=store_l1m,
            store_l2m=store_l2m,
            l1im=l1im,
            l2im=l2im,
            itlbm=itlbm,
            dtlb0_ld=dtlb0_ld,
            dtlb_walk_ld=dtlb_walk_ld,
            dtlb_walk_st=dtlb_walk_st,
            mispred=mispred,
            ldbl_sta=ldbl_sta,
            ldbl_std=ldbl_std,
            ldbl_ov=ldbl_ov,
            misal=misal,
            split_ld=split_ld,
            split_st=split_st,
            lcp=block.lcp,
            ilp=block.ilp,
            dependent_miss_fraction=block.dependent_miss_fraction,
        )
        breakdown = self.accounting.account(events)
        cycles = breakdown.total
        noise_sd = self.config.measurement_noise_sd
        if noise_sd > 0:
            cycles *= max(0.5, 1.0 + self.rng.normal(0.0, noise_sd))

        counts = self._assemble_counts(block, events, cycles)
        return BlockResult(counts=counts, cycles=cycles, breakdown=breakdown, events=events)

    # ------------------------------------------------------------------
    def _assemble_counts(
        self, block: InstructionBlock, events: SectionEvents, cycles: float
    ) -> Dict[str, float]:
        """Translate event flags into raw PMU counter values."""
        n = len(block)
        n_loads = int(np.count_nonzero(events.is_load))
        n_branches = int(np.count_nonzero(events.is_branch))
        n_mispred = int(np.count_nonzero(events.mispred))
        retired_walk_ld = int(np.count_nonzero(events.dtlb_walk_ld))
        walk_st = int(np.count_nonzero(events.dtlb_walk_st))

        # DTLB_MISSES.* count speculative activity as well; model the
        # wrong-path component from the mispredict count, the load mix and
        # the retired walk rate.
        load_fraction = n_loads / n
        walk_rate = retired_walk_ld / n_loads if n_loads else 0.0
        speculative_walks = n_mispred * WRONG_PATH_DEPTH * load_fraction * walk_rate

        return {
            ev.CPU_CLK_UNHALTED_CORE.name: float(cycles),
            ev.INST_RETIRED_ANY.name: float(n),
            ev.INST_RETIRED_LOADS.name: float(n_loads),
            ev.INST_RETIRED_STORES.name: float(np.count_nonzero(events.is_store)),
            ev.BR_INST_RETIRED_ANY.name: float(n_branches),
            ev.BR_INST_RETIRED_MISPRED.name: float(n_mispred),
            ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name: float(np.count_nonzero(events.l1dm)),
            ev.L1I_MISSES.name: float(np.count_nonzero(events.l1im)),
            ev.MEM_LOAD_RETIRED_L2_LINE_MISS.name: float(np.count_nonzero(events.l2m)),
            ev.DTLB_MISSES_L0_MISS_LD.name: float(np.count_nonzero(events.dtlb0_ld)),
            ev.DTLB_MISSES_MISS_LD.name: float(retired_walk_ld + speculative_walks),
            ev.MEM_LOAD_RETIRED_DTLB_MISS.name: float(retired_walk_ld),
            ev.DTLB_MISSES_ANY.name: float(
                retired_walk_ld + walk_st + speculative_walks
            ),
            ev.ITLB_MISS_RETIRED.name: float(np.count_nonzero(events.itlbm)),
            ev.LOAD_BLOCK_STA.name: float(np.count_nonzero(events.ldbl_sta)),
            ev.LOAD_BLOCK_STD.name: float(np.count_nonzero(events.ldbl_std)),
            ev.LOAD_BLOCK_OVERLAP_STORE.name: float(np.count_nonzero(events.ldbl_ov)),
            ev.MISALIGN_MEM_REF.name: float(np.count_nonzero(events.misal)),
            ev.L1D_SPLIT_LOADS.name: float(np.count_nonzero(events.split_ld)),
            ev.L1D_SPLIT_STORES.name: float(np.count_nonzero(events.split_st)),
            ev.ILD_STALL.name: float(np.count_nonzero(events.lcp)),
        }

    # ------------------------------------------------------------------
    def run_blocks(self, blocks: Iterable[InstructionBlock]) -> List[BlockResult]:
        """Replay several blocks back to back (state carries over)."""
        return [self.run_block(block) for block in blocks]

"""Counter bank: the simulated PMU register file.

Accumulates raw event counts with the exact architectural names from
:mod:`repro.counters.events`, and produces snapshot dicts compatible with
:func:`repro.counters.derive.sections_to_dataset`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.counters.events import ALL_EVENTS
from repro.errors import DataError


class CounterBank:
    """A named bank of monotonically increasing event counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {event.name: 0.0 for event in ALL_EVENTS}

    def add(self, event_name: str, amount: float = 1.0) -> None:
        """Increment one counter (the event must be a known PMU event)."""
        if event_name not in self._counts:
            raise DataError(f"unknown event {event_name!r}")
        if amount < 0:
            raise DataError("counters are monotonic; amount must be non-negative")
        self._counts[event_name] += amount

    def add_many(self, amounts: Mapping[str, float]) -> None:
        """Increment several counters at once."""
        for name, amount in amounts.items():
            self.add(name, amount)

    def value(self, event_name: str) -> float:
        if event_name not in self._counts:
            raise DataError(f"unknown event {event_name!r}")
        return self._counts[event_name]

    def snapshot(self) -> Dict[str, float]:
        """A copy of all current counts."""
        return dict(self._counts)

    def delta_since(self, previous: Mapping[str, float]) -> Dict[str, float]:
        """Counts accumulated since a prior :meth:`snapshot`."""
        return {name: self._counts[name] - previous.get(name, 0.0) for name in self._counts}

    def reset(self) -> None:
        for name in self._counts:
            self._counts[name] = 0.0

    def __getitem__(self, event_name: str) -> float:
        return self.value(event_name)

    def __iter__(self) -> Iterable[str]:
        return iter(self._counts)

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self._counts.items() if v}
        return f"CounterBank({nonzero!r})"

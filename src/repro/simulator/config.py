"""Machine configuration: a Core 2 Duo-class default.

Cache geometry follows the paper's test machine (32 KB split L1 caches,
4 MB shared unified L2) and the Intel optimization manual it cites; the
DTLB is sized so it maps roughly a quarter of the L2 — the capacity
relationship the paper uses to explain why DTLB-miss splits appear on the
no-L2-miss side of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

KIB = 1024
MIB = 1024 * KIB


def _power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _power_of_two(self.line_bytes):
            raise ConfigError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.associativity <= 0:
            raise ConfigError("associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigError(
                "size_bytes must be a multiple of line_bytes * associativity"
            )
        if not _power_of_two(self.n_sets):
            raise ConfigError("number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of one translation buffer level."""

    entries: int
    associativity: int = 0  # 0 means fully associative
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError("entries must be positive")
        if not _power_of_two(self.page_bytes):
            raise ConfigError("page_bytes must be a power of two")
        if self.associativity < 0:
            raise ConfigError("associativity must be non-negative")
        if self.associativity:
            if self.entries % self.associativity != 0:
                raise ConfigError("entries must be a multiple of associativity")
            if not _power_of_two(self.entries // self.associativity):
                raise ConfigError("number of TLB sets must be a power of two")


@dataclass(frozen=True)
class LatencyConfig:
    """Cycle costs of micro-architectural events (Core 2-class values).

    These are *architectural* penalties before any overlap; the pipeline
    model decides how much of each is actually exposed.
    """

    l1_hit: int = 3
    l2_hit: int = 14
    memory: int = 165
    l1i_refill: int = 8
    ifetch_memory: int = 120
    itlb_walk: int = 30
    dtlb0_miss: int = 2
    dtlb_walk: int = 26
    branch_mispredict: int = 15
    load_block_sta: int = 5
    load_block_std: int = 6
    load_block_overlap: int = 6
    misaligned: int = 2
    split_access: int = 9
    lcp_stall: int = 6

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigError(f"latency {name} must be non-negative")


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description for :class:`repro.simulator.SimulatedCore`."""

    frequency_ghz: float = 2.4
    issue_width: int = 4
    rob_size: int = 96
    mshr_count: int = 8
    store_buffer_window: int = 32
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KIB, 8))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KIB, 8))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(4 * MIB, 16))
    dtlb0: TLBConfig = field(default_factory=lambda: TLBConfig(16, 0))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(256, 4))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(128, 4))
    branch_history_bits: int = 12
    prefetch_next_line: bool = True
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    measurement_noise_sd: float = 0.005

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")
        if self.rob_size <= 0:
            raise ConfigError("rob_size must be positive")
        if self.mshr_count <= 0:
            raise ConfigError("mshr_count must be positive")
        if self.store_buffer_window <= 0:
            raise ConfigError("store_buffer_window must be positive")
        if not 1 <= self.branch_history_bits <= 24:
            raise ConfigError("branch_history_bits must lie in [1, 24]")
        if self.measurement_noise_sd < 0:
            raise ConfigError("measurement_noise_sd must be non-negative")
        if self.l1d.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1D and L2 must share a line size")

    @classmethod
    def core2duo(cls) -> "MachineConfig":
        """The paper's test machine (default construction, spelled out)."""
        return cls()

    @classmethod
    def tiny(cls) -> "MachineConfig":
        """A deliberately small machine for fast unit tests.

        Caches and TLBs are shrunk so miss behaviour appears within a few
        hundred instructions instead of millions.
        """
        return cls(
            l1i=CacheConfig(2 * KIB, 2),
            l1d=CacheConfig(2 * KIB, 2),
            l2=CacheConfig(16 * KIB, 4),
            dtlb0=TLBConfig(4, 0),
            dtlb=TLBConfig(16, 2),
            itlb=TLBConfig(8, 2),
            rob_size=32,
            mshr_count=4,
            store_buffer_window=16,
            branch_history_bits=8,
        )

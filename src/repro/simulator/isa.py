"""Instruction block representation.

The simulator is trace-driven: workload generators produce
:class:`InstructionBlock` objects — column-oriented batches of decoded
instructions — and the core replays them through its component models.
Column orientation (parallel numpy arrays) keeps generation vectorized
and the replay loop free of per-instruction object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

#: Instruction kind codes stored in :attr:`InstructionBlock.kind`.
KIND_LOAD = 0
KIND_STORE = 1
KIND_BRANCH = 2
KIND_OTHER = 3

#: Code addresses live in a distinct region so instruction lines share L2
#: capacity with data lines without aliasing data addresses.
CODE_REGION_BASE = 1 << 40


@dataclass
class InstructionBlock:
    """A batch of decoded instructions in structure-of-arrays form.

    Attributes:
        kind: Per-instruction kind code (``KIND_LOAD`` .. ``KIND_OTHER``).
        pc: Instruction addresses (already offset into the code region).
        addr: Effective data address for loads/stores (0 otherwise).
        size: Access size in bytes for loads/stores (0 otherwise).
        taken: Actual branch outcome for branches (False otherwise).
        lcp: True where the instruction carries a length-changing prefix.
        sta: For stores: address generation is late (can block loads).
        std: For stores: data is late (can block forwarding).
        ilp: Scalar in [0, 1] — available instruction-level parallelism of
            this block; the pipeline model uses it to hide short penalties.
        dependent_miss_fraction: Scalar in [0, 1] — fraction of long-latency
            misses that are serially dependent (pointer chasing), limiting
            memory-level parallelism.
    """

    kind: np.ndarray
    pc: np.ndarray
    addr: np.ndarray
    size: np.ndarray
    taken: np.ndarray
    lcp: np.ndarray
    sta: np.ndarray
    std: np.ndarray
    ilp: float = 0.5
    dependent_miss_fraction: float = 0.0

    def __post_init__(self) -> None:
        self.kind = np.ascontiguousarray(self.kind, dtype=np.uint8)
        self.pc = np.ascontiguousarray(self.pc, dtype=np.int64)
        self.addr = np.ascontiguousarray(self.addr, dtype=np.int64)
        self.size = np.ascontiguousarray(self.size, dtype=np.int64)
        self.taken = np.ascontiguousarray(self.taken, dtype=bool)
        self.lcp = np.ascontiguousarray(self.lcp, dtype=bool)
        self.sta = np.ascontiguousarray(self.sta, dtype=bool)
        self.std = np.ascontiguousarray(self.std, dtype=bool)
        n = self.kind.shape[0]
        columns = (self.pc, self.addr, self.size, self.taken, self.lcp, self.sta, self.std)
        if any(col.shape[0] != n for col in columns):
            raise DataError("all instruction block columns must share a length")
        if n == 0:
            raise DataError("instruction block must contain at least one instruction")
        if self.kind.size and self.kind.max() > KIND_OTHER:
            raise DataError("unknown instruction kind code")
        if not 0.0 <= self.ilp <= 1.0:
            raise DataError(f"ilp must lie in [0, 1], got {self.ilp}")
        if not 0.0 <= self.dependent_miss_fraction <= 1.0:
            raise DataError(
                "dependent_miss_fraction must lie in [0, 1], got "
                f"{self.dependent_miss_fraction}"
            )
        memory = (self.kind == KIND_LOAD) | (self.kind == KIND_STORE)
        if np.any(self.size[memory] <= 0):
            raise DataError("memory instructions must have a positive access size")

    def __len__(self) -> int:
        return int(self.kind.shape[0])

    @property
    def n_loads(self) -> int:
        return int(np.count_nonzero(self.kind == KIND_LOAD))

    @property
    def n_stores(self) -> int:
        return int(np.count_nonzero(self.kind == KIND_STORE))

    @property
    def n_branches(self) -> int:
        return int(np.count_nonzero(self.kind == KIND_BRANCH))

    def misaligned_mask(self) -> np.ndarray:
        """Memory accesses whose address is not size-aligned."""
        memory = (self.kind == KIND_LOAD) | (self.kind == KIND_STORE)
        safe_size = np.where(self.size > 0, self.size, 1)
        return memory & ((self.addr % safe_size) != 0)

    def split_mask(self, line_bytes: int) -> np.ndarray:
        """Memory accesses that straddle a cache-line boundary."""
        memory = (self.kind == KIND_LOAD) | (self.kind == KIND_STORE)
        first_line = self.addr // line_bytes
        last_line = (self.addr + np.maximum(self.size, 1) - 1) // line_bytes
        return memory & (first_line != last_line)

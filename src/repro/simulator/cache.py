"""Set-associative cache model with true LRU replacement.

State is a dict per set; Python dicts preserve insertion order, so the
first key is always the least-recently-used line and a hit re-inserts its
line at the MRU end.  This gives exact LRU at O(1) per access, which the
hot replay loop in :mod:`repro.simulator.core` depends on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulator.config import CacheConfig


class SetAssociativeCache:
    """An LRU set-associative cache tracking hits and misses."""

    __slots__ = ("config", "_sets", "_set_mask", "_line_shift", "_assoc", "hits", "misses")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._assoc = config.associativity
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.n_sets - 1
        self._sets: List[Dict[int, None]] = [dict() for _ in range(config.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; return True on a hit.

        A miss allocates the line (evicting LRU if the set is full); this
        models both demand fills and write-allocate stores.
        """
        line = addr >> self._line_shift
        lines = self._sets[line & self._set_mask]
        if line in lines:
            del lines[line]
            lines[line] = None
            self.hits += 1
            return True
        if len(lines) >= self._assoc:
            del lines[next(iter(lines))]
        lines[line] = None
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        """Insert the line containing ``addr`` without touching statistics.

        Used for prefetch fills: a prefetch is not a demand access, so it
        must not count as a hit or miss, but it does allocate (and may
        evict) exactly like one.
        """
        line = addr >> self._line_shift
        lines = self._sets[line & self._set_mask]
        if line in lines:
            del lines[line]
            lines[line] = None
            return
        if len(lines) >= self._assoc:
            del lines[next(iter(lines))]
        lines[line] = None

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        line = addr >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def flush(self) -> None:
        """Invalidate every line (statistics are preserved)."""
        for lines in self._sets:
            lines.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(lines) for lines in self._sets)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"SetAssociativeCache(size={cfg.size_bytes}, assoc={cfg.associativity}, "
            f"line={cfg.line_bytes}, hits={self.hits}, misses={self.misses})"
        )

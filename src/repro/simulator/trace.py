"""Human-readable event traces for simulator debugging.

`render_trace` turns one replayed block's event flags into a compact
per-instruction listing — what a debugging architect reads when a
counter looks wrong.  Only instructions that fired at least one event
are shown by default, keeping the listing proportional to activity.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import DataError
from repro.simulator.isa import (
    InstructionBlock,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
)
from repro.simulator.pipeline import SectionEvents

_KIND_NAMES = {KIND_LOAD: "LD", KIND_STORE: "ST", KIND_BRANCH: "BR", KIND_OTHER: "OP"}

#: (flag attribute on SectionEvents, short label in the listing)
_EVENT_LABELS: Tuple[Tuple[str, str], ...] = (
    ("l1dm", "L1Dm"),
    ("l2m", "L2m"),
    ("store_l1m", "stL1m"),
    ("store_l2m", "stL2m"),
    ("l1im", "L1Im"),
    ("l2im", "L2Im"),
    ("itlbm", "iTLBm"),
    ("dtlb0_ld", "dTLB0"),
    ("dtlb_walk_ld", "walk"),
    ("dtlb_walk_st", "stWalk"),
    ("mispred", "MISP"),
    ("ldbl_sta", "blkSTA"),
    ("ldbl_std", "blkSTD"),
    ("ldbl_ov", "blkOV"),
    ("misal", "misal"),
    ("split_ld", "splitL"),
    ("split_st", "splitS"),
    ("lcp", "LCP"),
)


def event_labels(events: SectionEvents, index: int) -> List[str]:
    """Short labels of every event instruction ``index`` fired."""
    labels = []
    for attribute, label in _EVENT_LABELS:
        if bool(getattr(events, attribute)[index]):
            labels.append(label)
    return labels


def render_trace(
    block: InstructionBlock,
    events: SectionEvents,
    limit: int = 64,
    only_events: bool = True,
    start: int = 0,
) -> str:
    """Render a per-instruction event listing.

    Args:
        block: The replayed instruction block.
        events: The event flags :meth:`SimulatedCore.run_block` returned
            for it.
        limit: Maximum lines emitted.
        only_events: Skip instructions that fired nothing.
        start: First instruction index to consider.
    """
    if len(block) != len(events):
        raise DataError("block and events disagree on length")
    if limit < 1:
        raise DataError("limit must be at least 1")
    if not 0 <= start < len(block):
        raise DataError(f"start {start} out of range for {len(block)}")

    lines: List[str] = []
    shown = 0
    skipped = 0
    for index in range(start, len(block)):
        labels = event_labels(events, index)
        if only_events and not labels:
            skipped += 1
            continue
        kind = _KIND_NAMES[int(block.kind[index])]
        location = f"pc=0x{int(block.pc[index]):x}"
        if kind in ("LD", "ST"):
            location += f" addr=0x{int(block.addr[index]):x}/{int(block.size[index])}"
        elif kind == "BR":
            location += " taken" if bool(block.taken[index]) else " not-taken"
        event_text = " ".join(labels) if labels else "-"
        lines.append(f"{index:>6} {kind} {location:<42} {event_text}")
        shown += 1
        if shown >= limit:
            remaining = len(block) - index - 1
            if remaining > 0:
                lines.append(f"... ({remaining} more instructions)")
            break
    if only_events and skipped and shown < limit:
        lines.append(f"({skipped} event-free instructions hidden)")
    if not lines:
        lines.append("(no instructions matched)")
    return "\n".join(lines)


def event_totals(events: SectionEvents) -> dict:
    """Count of each event class in one section (label -> count)."""
    return {
        label: int(np.count_nonzero(getattr(events, attribute)))
        for attribute, label in _EVENT_LABELS
    }

"""Component statistics summary for a simulated core.

A performance engineer's first question after a run is "what were the
hit rates?"; this module condenses every component's counters into one
structured, renderable summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.core import SimulatedCore


@dataclass(frozen=True)
class ComponentStats:
    """Accesses and misses of one hardware structure."""

    name: str
    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def describe(self) -> str:
        return (
            f"{self.name:<16} {self.accesses:>12} accesses  "
            f"{self.misses:>10} misses  ({100 * self.miss_rate:6.2f}%)"
        )


@dataclass(frozen=True)
class CoreStats:
    """All component statistics of a core, frozen at collection time."""

    components: Dict[str, ComponentStats]

    def __getitem__(self, name: str) -> ComponentStats:
        return self.components[name]

    def describe(self) -> str:
        lines = [stats.describe() for stats in self.components.values()]
        return "\n".join(lines)


def collect_stats(core: "SimulatedCore") -> CoreStats:
    """Snapshot every component's counters of ``core``."""
    components = {
        "L1I": ComponentStats("L1I", core.l1i.accesses, core.l1i.misses),
        "L1D": ComponentStats("L1D", core.l1d.accesses, core.l1d.misses),
        "L2": ComponentStats("L2", core.l2.accesses, core.l2.misses),
        "DTLB-L0": ComponentStats(
            "DTLB-L0", core.dtlb.level0.accesses, core.dtlb.level0.misses
        ),
        "DTLB-L1": ComponentStats(
            "DTLB-L1", core.dtlb.level1.accesses, core.dtlb.level1.misses
        ),
        "ITLB": ComponentStats("ITLB", core.itlb.accesses, core.itlb.misses),
        "branch": ComponentStats(
            "branch", core.predictor.accesses, core.predictor.incorrect
        ),
    }
    return CoreStats(components=components)

"""Store buffer and load-block detection.

Core 2 forwards store data to dependent loads through the store buffer.
Forwarding fails — blocking the load — in three counted situations the
paper's Table I tracks:

* ``LOAD_BLOCK.STA``: an older store's *address* is not yet known, so the
  load cannot disambiguate.
* ``LOAD_BLOCK.STD``: the address matches but the store's *data* is not
  ready.
* ``LOAD_BLOCK.OVERLAP_STORE``: the store only partially covers the load,
  so forwarding is architecturally impossible.

This model keeps a sliding window of recent stores indexed by 8-byte
granule, so a load resolves its blocking status in O(1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Store-to-load conflicts are detected at this granularity, mirroring the
#: partial-address matching real store buffers perform.
GRANULE_SHIFT = 3

#: Outcome codes returned by :meth:`StoreBuffer.check_load`.
NO_BLOCK = 0
BLOCK_STA = 1
BLOCK_STD = 2
BLOCK_OVERLAP = 3

_StoreRecord = Tuple[int, int, int, bool, bool]  # (seq, addr, size, sta, std)


class StoreBuffer:
    """Sliding-window store buffer for load-block classification."""

    __slots__ = ("window", "_granules", "_fifo", "_seq")

    def __init__(self, window: int = 32) -> None:
        self.window = int(window)
        self._granules: Dict[int, _StoreRecord] = {}
        self._fifo: Deque[Tuple[int, int]] = deque()  # (granule, seq)
        self._seq = 0

    def _expire(self) -> None:
        horizon = self._seq - self.window
        fifo = self._fifo
        granules = self._granules
        while fifo and fifo[0][1] < horizon:
            granule, seq = fifo.popleft()
            record = granules.get(granule)
            if record is not None and record[0] == seq:
                del granules[granule]

    def push_store(self, addr: int, size: int, sta: bool, std: bool) -> None:
        """Record a store; newer stores shadow older ones per granule."""
        self._seq += 1
        self._expire()
        record = (self._seq, addr, size, sta, std)
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        for granule in range(first, last + 1):
            self._granules[granule] = record
            self._fifo.append((granule, self._seq))

    def check_load(self, addr: int, size: int) -> int:
        """Classify a load against in-flight stores; advances time.

        Returns one of ``NO_BLOCK``, ``BLOCK_STA``, ``BLOCK_STD``,
        ``BLOCK_OVERLAP``.
        """
        self._seq += 1
        self._expire()
        record = self._find(addr, size)
        if record is None:
            return NO_BLOCK
        _, store_addr, store_size, sta, std = record
        if sta:
            return BLOCK_STA
        covered = store_addr <= addr and store_addr + store_size >= addr + size
        if not covered:
            return BLOCK_OVERLAP
        if std:
            return BLOCK_STD
        return NO_BLOCK

    def _find(self, addr: int, size: int) -> Optional[_StoreRecord]:
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        newest: Optional[_StoreRecord] = None
        for granule in range(first, last + 1):
            record = self._granules.get(granule)
            if record is not None and (newest is None or record[0] > newest[0]):
                newest = record
        return newest

    def advance(self, instructions: int = 1) -> None:
        """Advance time for non-memory instructions (ages the window)."""
        self._seq += instructions
        self._expire()

    def clear(self) -> None:
        self._granules.clear()
        self._fifo.clear()

    @property
    def occupancy(self) -> int:
        """Distinct granules currently tracked (post-expiry)."""
        self._expire()
        return len(self._granules)

"""Translation lookaside buffer models.

Core 2 translates data addresses through a small level-0 micro-TLB backed
by a larger last-level DTLB; instruction fetch has its own ITLB.  The
paper's Table I tracks misses at both DTLB levels, so the two-level
structure here is load-bearing: it is what makes ``DtlbL0LdM`` and
``DtlbLdM`` distinct, correlated-but-not-identical attributes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simulator.config import TLBConfig


class TranslationBuffer:
    """A single TLB level (set-associative or fully associative), LRU."""

    __slots__ = ("config", "_sets", "_set_mask", "_page_shift", "_assoc", "hits", "misses")

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._page_shift = config.page_bytes.bit_length() - 1
        if config.associativity == 0:
            n_sets = 1
            self._assoc = config.entries
        else:
            n_sets = config.entries // config.associativity
            self._assoc = config.associativity
        self._set_mask = n_sets - 1
        self._sets: List[Dict[int, None]] = [dict() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate ``addr``; return True on a hit, filling on a miss."""
        page = addr >> self._page_shift
        entries = self._sets[page & self._set_mask]
        if page in entries:
            del entries[page]
            entries[page] = None
            self.hits += 1
            return True
        if len(entries) >= self._assoc:
            del entries[next(iter(entries))]
        entries[page] = None
        self.misses += 1
        return False

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"TranslationBuffer(entries={cfg.entries}, assoc={cfg.associativity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class TwoLevelDTLB:
    """Level-0 micro-TLB backed by the last-level DTLB.

    ``access`` returns ``(l0_miss, walk)``: whether the level-0 lookup
    missed, and whether the last level also missed (forcing a page walk).
    The last level is only probed when level 0 misses, matching the
    hardware's filtered event counts.
    """

    __slots__ = ("level0", "level1")

    def __init__(self, level0_config: TLBConfig, level1_config: TLBConfig) -> None:
        self.level0 = TranslationBuffer(level0_config)
        self.level1 = TranslationBuffer(level1_config)

    def access(self, addr: int) -> Tuple[bool, bool]:
        if self.level0.access(addr):
            return False, False
        walk = not self.level1.access(addr)
        return True, walk

    def flush(self) -> None:
        self.level0.flush()
        self.level1.flush()

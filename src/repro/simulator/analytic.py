"""Closed-form expectations for the component models.

For the synthetic access patterns of :mod:`repro.workloads.stream`, the
steady-state miss rates of an LRU cache or TLB have simple closed forms:
a hot set that fits a level always hits; uniform traffic over a region
larger than a level hits with probability ``capacity / region`` (any
resident subset is as good as any other under uniform re-reference);
streaming traffic misses once per line, minus what the stream prefetcher
hides.

These expressions serve two purposes:

* **cross-validation** — `tests/test_analytic_validation.py` runs the
  trace-driven simulator against these expectations and fails if the
  machinery drifts (a physics regression net independent of the learner
  stack);
* **planning** — estimating a profile's event rates before paying for a
  simulation (`expected_profile_rates`).

They are *expectations*, not the simulator: conflict misses, warmup,
prefetch interactions and cross-phase pollution make real rates deviate
by design.  The validation bands are accordingly loose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simulator.config import MachineConfig
from repro.workloads.phases import PhaseParams
from repro.workloads.stream import _STREAM_STRIDE as _GENERATOR_STREAM_STRIDE

#: Stride of streaming accesses (checked against repro.workloads.stream
#: at import time, so the closed forms can never silently drift from the
#: generator they model).
STREAM_STRIDE = 16

if STREAM_STRIDE != _GENERATOR_STREAM_STRIDE:  # pragma: no cover
    raise AssertionError(
        "analytic STREAM_STRIDE "
        f"({STREAM_STRIDE}) disagrees with repro.workloads.stream "
        f"({_GENERATOR_STREAM_STRIDE}); the closed forms model a stride the "
        "generator no longer produces"
    )

#: Fraction of a detected ascending stream's line misses the run-ahead
#: prefetcher hides (two misses start the stream, then ~8 lines are
#: covered per re-detection; empirically ~0.75-0.9 of stream misses).
STREAM_PREFETCH_COVERAGE = 0.8


def uniform_hit_probability(capacity_bytes: int, region_bytes: int) -> float:
    """Steady-state hit probability of uniform traffic over a region.

    Under uniform random re-reference, whatever ``capacity`` worth of the
    region is resident is hit with probability ``capacity / region``;
    a region that fits is always resident.
    """
    if region_bytes <= 0:
        return 1.0
    return min(1.0, capacity_bytes / region_bytes)


def expected_data_miss_rates(
    params: PhaseParams, config: MachineConfig
) -> Dict[str, float]:
    """Expected per-memory-access miss probabilities for the data side.

    Returns probabilities for ``l1d`` and ``l2`` (per access, demand
    misses after prefetch coverage) under the phase's mix of hot,
    streaming and uniform-cold traffic.
    """
    line = config.l1d.line_bytes
    hot = params.hot_fraction
    cold = 1.0 - hot
    streaming = cold * params.stride_fraction
    jumping = cold * (1.0 - params.stride_fraction)

    # Hot set: hits whichever levels it fits in.
    hot_l1_miss = 0.0 if params.hot_set_bytes <= config.l1d.size_bytes else (
        1.0 - uniform_hit_probability(config.l1d.size_bytes, params.hot_set_bytes)
    )
    hot_l2_miss = 0.0 if params.hot_set_bytes <= config.l2.size_bytes else (
        1.0 - uniform_hit_probability(config.l2.size_bytes, params.hot_set_bytes)
    )

    # Streaming: one compulsory miss per line (STREAM_STRIDE bytes per
    # access, line/STRIDE accesses per line), mostly prefetched away.
    accesses_per_line = max(line // STREAM_STRIDE, 1)
    stream_miss = (1.0 / accesses_per_line) * (
        1.0 - (STREAM_PREFETCH_COVERAGE if config.prefetch_next_line else 0.0)
    )

    # Uniform cold jumps over the full footprint.
    jump_l1_miss = 1.0 - uniform_hit_probability(
        config.l1d.size_bytes, params.data_footprint
    )
    jump_l2_miss = 1.0 - uniform_hit_probability(
        config.l2.size_bytes, params.data_footprint
    )

    l1d = hot * hot_l1_miss + streaming * stream_miss + jumping * jump_l1_miss
    # An L2 miss requires missing L1 first; for our patterns the L2 miss
    # probability is bounded by the L1 one per traffic class.
    l2 = (
        hot * hot_l2_miss
        + streaming * stream_miss
        + jumping * jump_l1_miss * jump_l2_miss / max(jump_l1_miss, 1e-12)
        if jumping > 0
        else hot * hot_l2_miss + streaming * stream_miss
    )
    return {"l1d": float(l1d), "l2": float(min(l2, l1d))}


def expected_dtlb_walk_rate(params: PhaseParams, config: MachineConfig) -> float:
    """Expected page-walk probability per data access."""
    reach = config.dtlb.entries * config.dtlb.page_bytes
    hot = params.hot_fraction
    cold = 1.0 - hot
    hot_walk = 0.0 if params.hot_set_bytes <= reach else (
        1.0 - uniform_hit_probability(reach, params.hot_set_bytes)
    )
    # Streaming reuses each page for page/STRIDE accesses.
    accesses_per_page = max(config.dtlb.page_bytes // STREAM_STRIDE, 1)
    stream_walk = (1.0 / accesses_per_page) * (
        1.0 - uniform_hit_probability(reach, params.data_footprint)
    )
    jump_walk = 1.0 - uniform_hit_probability(reach, params.data_footprint)
    return float(
        hot * hot_walk
        + cold * params.stride_fraction * stream_walk
        + cold * (1.0 - params.stride_fraction) * jump_walk
    )


def expected_branch_mispredict_rate(params: PhaseParams) -> float:
    """Expected mispredicts per branch for a trained gshare.

    Hard (50/50) branches mispredict half the time; biased branches
    mispredict roughly at their minority rate once trained.
    """
    biased_miss = min(params.branch_bias, 1.0 - params.branch_bias)
    return float(
        params.hard_branch_fraction * 0.5
        + (1.0 - params.hard_branch_fraction) * biased_miss
    )


@dataclass(frozen=True)
class ExpectedRates:
    """Per-instruction expected event rates for one phase."""

    l1dm: float
    l2m: float
    dtlb_walk: float
    mispredict: float
    lcp: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "L1DM": self.l1dm,
            "L2M": self.l2m,
            "DtlbLdM": self.dtlb_walk,
            "BrMisPr": self.mispredict,
            "LCP": self.lcp,
        }


def expected_profile_rates(
    params: PhaseParams, config: MachineConfig
) -> ExpectedRates:
    """Expected per-instruction metric rates for a phase (loads side)."""
    data = expected_data_miss_rates(params, config)
    loads = params.load_fraction
    return ExpectedRates(
        l1dm=loads * data["l1d"],
        l2m=loads * data["l2"],
        dtlb_walk=loads * expected_dtlb_walk_rate(params, config),
        mispredict=params.branch_fraction
        * expected_branch_mispredict_rate(params),
        lcp=params.lcp_fraction,
    )

"""Cycle-accounting pipeline model with penalty overlap.

The paper's central observation is that event penalties on an
out-of-order machine are *not additive*: independent work proceeds under
a load miss, L2 misses overlap each other (memory-level parallelism), and
short penalties disappear entirely in the shadow of long ones.  This
module turns per-instruction event flags into cycles using exactly those
mechanisms:

* every long-latency miss is discounted by the memory-level parallelism
  observed in a ROB-sized window around it, damped by the block's
  dependent-miss (pointer-chasing) fraction;
* short penalties are scaled by ``1 - hide * ilp`` for the block's
  instruction-level parallelism; and
* any penalty occurring in the shadow of an outstanding L2 miss is
  further discounted, because the machine was stalled anyway.

The result is a ground-truth CPI whose relationship to the Table I
counters is piecewise and interaction-heavy — the regime in which naive
fixed-penalty accounting fails and model trees are claimed to work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

import numpy as np

from repro.errors import ConfigError, DataError
from repro.simulator.config import MachineConfig


@dataclass
class SectionEvents:
    """Per-instruction event flags for one section, plus block scalars.

    All arrays share the block length; boolean unless noted.  Produced by
    :meth:`repro.simulator.core.SimulatedCore.run_block`.
    """

    is_load: np.ndarray
    is_store: np.ndarray
    is_branch: np.ndarray
    l1dm: np.ndarray            # retired loads missing L1D (includes L2 misses)
    l2m: np.ndarray             # retired loads missing L2
    store_l1m: np.ndarray       # stores missing L1D
    store_l2m: np.ndarray       # stores missing L2
    l1im: np.ndarray            # instruction fetches missing L1I
    l2im: np.ndarray            # instruction fetches missing L2 as well
    itlbm: np.ndarray           # ITLB misses
    dtlb0_ld: np.ndarray        # loads missing the level-0 DTLB
    dtlb_walk_ld: np.ndarray    # loads forcing a page walk
    dtlb_walk_st: np.ndarray    # stores forcing a page walk
    mispred: np.ndarray         # mispredicted branches
    ldbl_sta: np.ndarray
    ldbl_std: np.ndarray
    ldbl_ov: np.ndarray
    misal: np.ndarray           # misaligned memory references
    split_ld: np.ndarray        # line-split loads
    split_st: np.ndarray        # line-split stores
    lcp: np.ndarray             # length-changing-prefix stalls
    ilp: float = 0.5
    dependent_miss_fraction: float = 0.0

    def __post_init__(self) -> None:
        arrays = [
            getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("ilp", "dependent_miss_fraction")
        ]
        n = arrays[0].shape[0]
        if n == 0:
            raise DataError("section must contain at least one instruction")
        for arr in arrays:
            if arr.shape[0] != n:
                raise DataError("all event arrays must share the block length")
        if not 0.0 <= self.ilp <= 1.0:
            raise DataError("ilp must lie in [0, 1]")
        if not 0.0 <= self.dependent_miss_fraction <= 1.0:
            raise DataError("dependent_miss_fraction must lie in [0, 1]")

    def __len__(self) -> int:
        return int(self.is_load.shape[0])


@dataclass(frozen=True)
class OverlapModel:
    """Tunable coefficients of the overlap machinery.

    Attributes:
        ilp_hide_ooo: Max fraction of an out-of-order-hideable short
            penalty removed at ilp = 1 (execution-side penalties).
        ilp_hide_frontend: Same for front-end penalties, which the decode
            queue absorbs less effectively.
        shadow_discount: Multiplier applied to short penalties landing in
            the shadow of an outstanding L2 miss.
        walk_shadow_discount: Same for page walks, which overlap memory
            stalls only partially.
        store_miss_exposure: Fraction of a store's memory latency exposed
            (write buffers hide most of it).
        mispredict_shadow_discount: Multiplier for branch-flush penalties
            inside an L2-miss shadow.
        frontend_data_overlap: Fraction of the *smaller* of the front-end
            memory stall and the data memory stall hidden under the
            larger.  When instruction fetch starves the machine, data
            misses resolve in its shadow (and vice versa) — this is what
            makes a fetch-bound phase's CPI saturate into the paper's
            constant-valued LM18 class.
    """

    ilp_hide_ooo: float = 0.75
    ilp_hide_frontend: float = 0.45
    shadow_discount: float = 0.30
    walk_shadow_discount: float = 0.25
    store_miss_exposure: float = 0.15
    mispredict_shadow_discount: float = 0.35
    frontend_data_overlap: float = 0.75

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{f.name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class IssueCosts:
    """Base issue cost per instruction kind (cycles per instruction).

    ``1 / issue_width`` is the floor; memory and branch instructions add
    port-pressure terms on top.
    """

    load_extra: float = 0.05
    store_extra: float = 0.08
    branch_extra: float = 0.02

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"{f.name} must be non-negative")


@dataclass
class CycleBreakdown:
    """Cycles attributed to each penalty category for one section."""

    base: float = 0.0
    load_l2_miss: float = 0.0
    store_l2_miss: float = 0.0
    load_l1_miss: float = 0.0
    store_l1_miss: float = 0.0
    ifetch: float = 0.0
    itlb: float = 0.0
    dtlb: float = 0.0
    branch: float = 0.0
    load_block: float = 0.0
    alignment: float = 0.0
    lcp: float = 0.0

    @property
    def total(self) -> float:
        return float(sum(getattr(self, f.name) for f in fields(self)))

    def as_dict(self) -> Dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}


class CycleAccounting:
    """Computes cycles for a section from its event flags."""

    def __init__(
        self,
        config: MachineConfig,
        overlap: OverlapModel = OverlapModel(),
        issue_costs: IssueCosts = IssueCosts(),
    ) -> None:
        self.config = config
        self.overlap = overlap
        self.issue_costs = issue_costs

    # ------------------------------------------------------------------
    def account(self, events: SectionEvents) -> CycleBreakdown:
        """Attribute cycles to penalty categories for one section."""
        n = len(events)
        lat = self.config.latency
        ov = self.overlap
        breakdown = CycleBreakdown()

        # --- base issue cost from the instruction mix -----------------
        f_load = np.count_nonzero(events.is_load) / n
        f_store = np.count_nonzero(events.is_store) / n
        f_branch = np.count_nonzero(events.is_branch) / n
        base_cpi = (
            1.0 / self.config.issue_width
            + self.issue_costs.load_extra * f_load
            + self.issue_costs.store_extra * f_store
            + self.issue_costs.branch_extra * f_branch
        )
        breakdown.base = base_cpi * n

        # --- memory-level parallelism around long misses ---------------
        long_miss = (
            events.l2m.astype(np.float64)
            + events.store_l2m.astype(np.float64)
            + events.l2im.astype(np.float64)
        )
        window = np.ones(min(self.config.rob_size, n))
        local_misses = np.convolve(long_miss, window, mode="same")
        raw_mlp = np.clip(local_misses, 1.0, float(self.config.mshr_count))
        serial = events.dependent_miss_fraction
        mlp = 1.0 + (raw_mlp - 1.0) * (1.0 - serial)
        in_shadow = local_misses > 0.0

        # --- long-latency data misses ----------------------------------
        breakdown.load_l2_miss = float(
            np.sum(events.l2m / mlp) * lat.memory
        )
        breakdown.store_l2_miss = float(
            np.sum(events.store_l2m / mlp) * lat.memory * ov.store_miss_exposure
        )

        # --- short execution-side penalties ----------------------------
        ooo_factor = 1.0 - ov.ilp_hide_ooo * events.ilp
        shadow_scale = np.where(in_shadow, ov.shadow_discount, 1.0)

        l1_only = events.l1dm & ~events.l2m
        l1_penalty = lat.l2_hit - lat.l1_hit
        breakdown.load_l1_miss = float(
            np.sum(l1_only * shadow_scale) * l1_penalty * ooo_factor
        )
        st_l1_only = events.store_l1m & ~events.store_l2m
        breakdown.store_l1_miss = float(
            np.sum(st_l1_only * shadow_scale)
            * l1_penalty
            * ooo_factor
            * ov.store_miss_exposure
        )

        walk_scale = np.where(in_shadow, ov.walk_shadow_discount, 1.0)
        dtlb_cycles = (
            np.sum(events.dtlb0_ld * shadow_scale) * lat.dtlb0_miss * ooo_factor
            + np.sum(events.dtlb_walk_ld * walk_scale) * lat.dtlb_walk
            + np.sum(events.dtlb_walk_st * walk_scale) * lat.dtlb_walk
            * ov.store_miss_exposure
        )
        breakdown.dtlb = float(dtlb_cycles)

        block_cycles = (
            np.sum(events.ldbl_sta * shadow_scale) * lat.load_block_sta
            + np.sum(events.ldbl_std * shadow_scale) * lat.load_block_std
            + np.sum(events.ldbl_ov * shadow_scale) * lat.load_block_overlap
        )
        breakdown.load_block = float(block_cycles * ooo_factor)

        align_cycles = (
            np.sum(events.misal * shadow_scale) * lat.misaligned
            + np.sum(events.split_ld * shadow_scale) * lat.split_access
            + np.sum(events.split_st * shadow_scale)
            * lat.split_access
            * ov.store_miss_exposure
        )
        breakdown.alignment = float(align_cycles * ooo_factor)

        # --- branch mispredictions --------------------------------------
        mispredict_scale = np.where(in_shadow, ov.mispredict_shadow_discount, 1.0)
        breakdown.branch = float(
            np.sum(events.mispred * mispredict_scale) * lat.branch_mispredict
        )

        # --- front-end penalties ----------------------------------------
        fe_factor = 1.0 - ov.ilp_hide_frontend * events.ilp
        l1i_only = events.l1im & ~events.l2im
        fetch_memory_cycles = np.count_nonzero(events.l2im) * lat.ifetch_memory
        breakdown.ifetch = float(
            np.sum(l1i_only * shadow_scale) * lat.l1i_refill * fe_factor
            # An instruction fetch that misses L2 starves the front end
            # for a full memory access; nothing downstream can hide it.
            + fetch_memory_cycles
        )

        # Front-end starvation and data memory stalls overlap: while the
        # fetch unit waits on memory, outstanding data misses resolve
        # underneath (and vice versa), so the smaller of the two is
        # mostly hidden.  This is the saturation that turns fetch-bound
        # phases into the paper's constant-CPI class (LM18).
        data_memory_cycles = breakdown.load_l2_miss + breakdown.store_l2_miss
        if fetch_memory_cycles > 0 and data_memory_cycles > 0:
            hidden = ov.frontend_data_overlap * min(
                fetch_memory_cycles, data_memory_cycles
            )
            scale = 1.0 - hidden / (fetch_memory_cycles + data_memory_cycles)
            breakdown.load_l2_miss *= scale
            breakdown.store_l2_miss *= scale
            breakdown.ifetch -= hidden * (
                fetch_memory_cycles / (fetch_memory_cycles + data_memory_cycles)
            )
        breakdown.itlb = float(np.count_nonzero(events.itlbm) * lat.itlb_walk)
        breakdown.lcp = float(np.sum(events.lcp * shadow_scale) * lat.lcp_stall * fe_factor)

        return breakdown

    def cycles(self, events: SectionEvents) -> float:
        """Total cycles for the section."""
        return self.account(events).total

    def cpi(self, events: SectionEvents) -> float:
        """Cycles per instruction for the section."""
        return self.cycles(events) / len(events)

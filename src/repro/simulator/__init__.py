"""Trace-driven Core 2 Duo-like processor model.

The paper collects PMU counters on a physical 2.4 GHz Intel Core 2 Duo.
Without that hardware, this package provides the substitute: component
models for the caches, TLBs, branch predictor and memory-dependence
machinery of a Core 2-class machine, driven by synthetic instruction
blocks, plus a cycle-accounting pipeline model in which event penalties
*overlap and interact* — reproducing the phenomenon (non-additive
penalties) that motivates the paper's model-tree approach.
"""

from repro.simulator.config import CacheConfig, LatencyConfig, MachineConfig, TLBConfig
from repro.simulator.isa import (
    InstructionBlock,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
)
from repro.simulator.cache import SetAssociativeCache
from repro.simulator.tlb import TranslationBuffer, TwoLevelDTLB
from repro.simulator.branch import GsharePredictor
from repro.simulator.memdep import StoreBuffer
from repro.simulator.counterbank import CounterBank
from repro.simulator.pipeline import CycleAccounting, CycleBreakdown, SectionEvents
from repro.simulator.core import SimulatedCore
from repro.simulator.stats import ComponentStats, CoreStats, collect_stats
from repro.simulator.trace import event_totals, render_trace

__all__ = [
    "CacheConfig",
    "ComponentStats",
    "CoreStats",
    "CounterBank",
    "CycleAccounting",
    "CycleBreakdown",
    "collect_stats",
    "event_totals",
    "GsharePredictor",
    "InstructionBlock",
    "KIND_BRANCH",
    "KIND_LOAD",
    "KIND_OTHER",
    "KIND_STORE",
    "LatencyConfig",
    "MachineConfig",
    "SectionEvents",
    "SetAssociativeCache",
    "SimulatedCore",
    "render_trace",
    "StoreBuffer",
    "TLBConfig",
    "TranslationBuffer",
    "TwoLevelDTLB",
]

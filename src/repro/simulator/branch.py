"""Gshare branch direction predictor.

A global-history predictor with 2-bit saturating counters, the standard
stand-in for the (undisclosed) Core 2 direction predictor.  Biased
branches train quickly; pattern-free branches mispredict near 50 % —
which is exactly the knob the workload generator turns to produce the
``BrMisPr`` spectrum the paper's tree splits on.
"""

from __future__ import annotations

from repro.errors import ConfigError


class GsharePredictor:
    """Gshare: table of 2-bit counters indexed by PC xor global history."""

    __slots__ = ("history_bits", "_mask", "_table", "_history", "correct", "incorrect")

    def __init__(self, history_bits: int = 12) -> None:
        if not 1 <= history_bits <= 24:
            raise ConfigError(f"history_bits must lie in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        # Counters start weakly taken (2 on the 0..3 scale).
        self._table = bytearray([2]) * (1 << history_bits)
        self._history = 0
        self.correct = 0
        self.incorrect = 0

    def access(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, learn ``taken``, return correctness."""
        index = ((pc >> 2) ^ self._history) & self._mask
        counter = self._table[index]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask
        if predicted == taken:
            self.correct += 1
            return True
        self.incorrect += 1
        return False

    def reset(self) -> None:
        """Clear learned state and statistics."""
        self._table = bytearray([2]) * (1 << self.history_bits)
        self._history = 0
        self.correct = 0
        self.incorrect = 0

    @property
    def accesses(self) -> int:
        return self.correct + self.incorrect

    @property
    def mispredict_rate(self) -> float:
        total = self.accesses
        return self.incorrect / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"GsharePredictor(history_bits={self.history_bits}, "
            f"mispredict_rate={self.mispredict_rate:.3f})"
        )

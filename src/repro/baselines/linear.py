"""Global linear regression (optionally ridge-regularized).

The single-model alternative the paper argues is insufficient: one line
for all phases cannot express interactions or class structure, but it is
the natural accuracy floor for the comparison experiment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import format_float
from repro.baselines.base import RegressorBase, Standardizer
from repro.errors import ConfigError, NotFittedError


class LinearRegressionBaseline(RegressorBase):
    """Ordinary least squares on standardized attributes.

    Args:
        ridge: L2 penalty on (standardized) slopes; 0 gives plain OLS.
    """

    def __init__(self, ridge: float = 0.0) -> None:
        super().__init__()
        if ridge < 0:
            raise ConfigError(f"ridge must be non-negative, got {ridge}")
        self.ridge = float(ridge)
        self.coefficients_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._scaler = Standardizer()
        Z = self._scaler.fit_transform(X)
        n, p = Z.shape
        design = np.column_stack([Z, np.ones(n)])
        if self.ridge > 0:
            penalty = self.ridge * np.eye(p + 1)
            penalty[-1, -1] = 0.0  # never penalize the intercept
            gram = design.T @ design + penalty
            solution = np.linalg.solve(gram, design.T @ y)
        else:
            solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        z_coefficients = solution[:-1]
        z_intercept = float(solution[-1])
        # Back-transform to original attribute units for interpretability.
        scale = self._scaler.scale_
        mean = self._scaler.mean_
        self.coefficients_ = z_coefficients / scale
        self.intercept_ = z_intercept - float(np.sum(z_coefficients * mean / scale))

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coefficients_ + self.intercept_

    def describe(self, digits: int = 4) -> str:
        """The fitted equation in original units."""
        if self.coefficients_ is None:
            raise NotFittedError("fit the model before describing it")
        parts = [format_float(self.intercept_, digits)]
        for name, coefficient in zip(self.attributes_, self.coefficients_):
            sign = "-" if coefficient < 0 else "+"
            parts.append(f"{sign} {format_float(abs(coefficient), digits)} * {name}")
        return f"{self.target_name_} = " + " ".join(parts)

"""Bagged model trees: an accuracy-oriented ensemble extension.

Bagging M5 trees (Breiman-style bootstrap aggregation) was the standard
way to trade the single tree's interpretability for accuracy in the
WEKA era.  It slots into the comparison as the "what if we didn't need
to read the model" upper bound that still uses the paper's learner.

Members are independent once their bootstrap draws are fixed, so the
ensemble pre-spawns one seed per member and can fit them in parallel
(``n_jobs``) with results identical to a serial fit.

**Ordering contract.** ``estimators_[i]`` is always the member fitted
from the ``i``-th spawned child seed, regardless of ``n_jobs`` or the
executor backend: ``_fit`` ships each member's index through the task
and asserts the returned sequence is ``0..n_estimators-1`` in order.
Downstream arena compilation (:func:`repro.serve.forest.compile_forest`)
concatenates members in this order, so compiled-forest node and
leaf-column offsets are deterministic across serial and parallel fits.

Prediction routes through the cached compiled arena
(:attr:`compiled_`), bit-identical to the historical member-by-member
``np.vstack(...).mean(axis=0)`` walk; when a refinement pass
(:class:`repro.serve.refine.RefinedForest`) has attached
:attr:`refined_`, the per-leaf re-weighted predictor is served instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

import numpy as np

from repro._util import RandomState
from repro.baselines.base import RegressorBase
from repro.core.tree import M5Prime
from repro.errors import ConfigError, NotFittedError
from repro.parallel import parallel_map, spawn_seeds

if TYPE_CHECKING:
    from repro.serve.forest import CompiledForest
    from repro.serve.refine import RefinedWeights


class _MemberTask:
    """Fit one bootstrap member (picklable for process pools).

    Takes ``(index, seed)`` and returns ``(index, member)`` so the
    ensemble can assert the ordering contract even if an executor
    backend ever stopped preserving input order.
    """

    def __init__(
        self, X: np.ndarray, y: np.ndarray, attributes, min_instances: int,
        sample_size: int,
    ) -> None:
        self.X = X
        self.y = y
        self.attributes = attributes
        self.min_instances = min_instances
        self.sample_size = sample_size

    def __call__(
        self, item: Tuple[int, np.random.SeedSequence]
    ) -> Tuple[int, M5Prime]:
        index, seed = item
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, self.X.shape[0], self.sample_size)
        member = M5Prime(min_instances=self.min_instances)
        member.fit(self.X[rows], self.y[rows], attribute_names=self.attributes)
        return index, member


class BaggedM5(RegressorBase):
    """Bootstrap-aggregated M5' trees (prediction = member mean).

    Args:
        n_estimators: Ensemble size.
        min_instances: Passed to each member tree.
        sample_fraction: Bootstrap sample size relative to the training
            set (sampling is with replacement).
        seed: Seed for the bootstrap draws.  Each member's draw comes
            from its own pre-spawned child seed, so the fitted ensemble
            does not depend on ``n_jobs``.
        n_jobs: Member-level parallelism — ``1`` serial, ``N`` workers,
            ``-1`` all cores, ``None`` defers to ``REPRO_JOBS``.

    The fitted ensemble is a sequence: ``len(forest)``, ``forest[i]``
    and iteration expose the members in the documented ``estimators_``
    order (see the module docstring for the ordering contract).
    """

    def __init__(
        self,
        n_estimators: int = 10,
        min_instances: int = 25,
        sample_fraction: float = 1.0,
        seed: RandomState = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ConfigError("n_estimators must be at least 1")
        if not 0.0 < sample_fraction <= 1.0:
            raise ConfigError("sample_fraction must lie in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.min_instances = int(min_instances)
        self.sample_fraction = float(sample_fraction)
        self.seed = seed
        self.n_jobs = n_jobs
        self.estimators_: List[M5Prime] = []
        self.feature_ranges_: Optional[Tuple[Tuple[float, float], ...]] = None
        self.refined_: Optional["RefinedWeights"] = None
        self._compiled_cache: Optional[Tuple[tuple, "CompiledForest"]] = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n = X.shape[0]
        sample_size = max(2, int(round(n * self.sample_fraction)))
        seeds = spawn_seeds(self.seed, self.n_estimators)
        task = _MemberTask(
            X, y, self.attributes_, self.min_instances, sample_size
        )
        pairs = parallel_map(task, list(enumerate(seeds)), n_jobs=self.n_jobs)
        returned = [index for index, _ in pairs]
        # The ordering contract arena offsets depend on: member i comes
        # from spawned seed i, whatever the executor did.
        assert returned == list(range(self.n_estimators)), (
            f"member ordering violated: {returned}"
        )
        self.estimators_ = [member for _, member in pairs]
        # Ranges of the *full* training matrix (members only saw their
        # bootstrap draws) — this is what drift monitoring keys on.
        self.feature_ranges_ = tuple(
            (float(np.min(column)), float(np.max(column))) for column in X.T
        )
        self.refined_ = None
        self._compiled_cache = None

    # -- sequence protocol over fitted members -------------------------
    def __len__(self) -> int:
        return len(self.estimators_)

    def __getitem__(self, index: int) -> M5Prime:
        return self.estimators_[index]

    def __iter__(self) -> Iterator[M5Prime]:
        return iter(self.estimators_)

    # ------------------------------------------------------------------
    @property
    def smoothing(self) -> bool:
        """Whether members smooth (uniform across the ensemble)."""
        if not self.estimators_:
            return False
        return bool(self.estimators_[0].smoothing)

    @property
    def smoothing_k(self) -> float:
        if not self.estimators_:
            raise NotFittedError("ensemble has no fitted members")
        return self.estimators_[0].smoothing_k

    @property
    def n_leaves(self) -> int:
        """Total leaf count across members (= arena leaf columns)."""
        return int(sum(member.n_leaves for member in self.estimators_))

    @property
    def compiled_(self) -> "CompiledForest":
        """The ensemble's compiled arena, cached per fitted state."""
        from repro.serve.forest import compile_forest

        if not self.estimators_:
            raise NotFittedError("cannot compile an unfitted ensemble")
        key = tuple(id(member.root_) for member in self.estimators_)
        if self._compiled_cache is None or self._compiled_cache[0] != key:
            self._compiled_cache = (key, compile_forest(self))
        return self._compiled_cache[1]

    def _predict(self, X: np.ndarray) -> np.ndarray:
        smoothing_k = self.smoothing_k if self.smoothing else None
        compiled = self.compiled_
        if self.refined_ is not None:
            from repro.serve.refine import refined_predict

            return refined_predict(
                compiled, self.refined_, X, smoothing_k=smoothing_k
            )
        return compiled.predict(X, smoothing_k=smoothing_k)

    @property
    def mean_leaves_(self) -> float:
        """Average leaf count across members (ensemble complexity)."""
        if not self.estimators_:
            return 0.0
        return float(np.mean([member.n_leaves for member in self.estimators_]))

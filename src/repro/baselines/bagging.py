"""Bagged model trees: an accuracy-oriented ensemble extension.

Bagging M5 trees (Breiman-style bootstrap aggregation) was the standard
way to trade the single tree's interpretability for accuracy in the
WEKA era.  It slots into the comparison as the "what if we didn't need
to read the model" upper bound that still uses the paper's learner.

Members are independent once their bootstrap draws are fixed, so the
ensemble pre-spawns one seed per member and can fit them in parallel
(``n_jobs``) with results identical to a serial fit.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro._util import RandomState
from repro.baselines.base import RegressorBase
from repro.core.tree import M5Prime
from repro.errors import ConfigError
from repro.parallel import parallel_map, spawn_seeds


class _MemberTask:
    """Fit one bootstrap member (picklable for process pools)."""

    def __init__(
        self, X: np.ndarray, y: np.ndarray, attributes, min_instances: int,
        sample_size: int,
    ) -> None:
        self.X = X
        self.y = y
        self.attributes = attributes
        self.min_instances = min_instances
        self.sample_size = sample_size

    def __call__(self, seed: np.random.SeedSequence) -> M5Prime:
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, self.X.shape[0], self.sample_size)
        member = M5Prime(min_instances=self.min_instances)
        member.fit(self.X[rows], self.y[rows], attribute_names=self.attributes)
        return member


class BaggedM5(RegressorBase):
    """Bootstrap-aggregated M5' trees (prediction = member mean).

    Args:
        n_estimators: Ensemble size.
        min_instances: Passed to each member tree.
        sample_fraction: Bootstrap sample size relative to the training
            set (sampling is with replacement).
        seed: Seed for the bootstrap draws.  Each member's draw comes
            from its own pre-spawned child seed, so the fitted ensemble
            does not depend on ``n_jobs``.
        n_jobs: Member-level parallelism — ``1`` serial, ``N`` workers,
            ``-1`` all cores, ``None`` defers to ``REPRO_JOBS``.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        min_instances: int = 25,
        sample_fraction: float = 1.0,
        seed: RandomState = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ConfigError("n_estimators must be at least 1")
        if not 0.0 < sample_fraction <= 1.0:
            raise ConfigError("sample_fraction must lie in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.min_instances = int(min_instances)
        self.sample_fraction = float(sample_fraction)
        self.seed = seed
        self.n_jobs = n_jobs
        self.estimators_: List[M5Prime] = []

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n = X.shape[0]
        sample_size = max(2, int(round(n * self.sample_fraction)))
        seeds = spawn_seeds(self.seed, self.n_estimators)
        task = _MemberTask(
            X, y, self.attributes_, self.min_instances, sample_size
        )
        self.estimators_ = parallel_map(task, seeds, n_jobs=self.n_jobs)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        stacked = np.vstack([member.predict(X) for member in self.estimators_])
        return stacked.mean(axis=0)

    @property
    def mean_leaves_(self) -> float:
        """Average leaf count across members (ensemble complexity)."""
        if not self.estimators_:
            return 0.0
        return float(np.mean([member.n_leaves for member in self.estimators_]))

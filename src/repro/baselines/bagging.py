"""Bagged model trees: an accuracy-oriented ensemble extension.

Bagging M5 trees (Breiman-style bootstrap aggregation) was the standard
way to trade the single tree's interpretability for accuracy in the
WEKA era.  It slots into the comparison as the "what if we didn't need
to read the model" upper bound that still uses the paper's learner.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._util import RandomState, check_random_state
from repro.baselines.base import RegressorBase
from repro.core.tree import M5Prime
from repro.errors import ConfigError


class BaggedM5(RegressorBase):
    """Bootstrap-aggregated M5' trees (prediction = member mean).

    Args:
        n_estimators: Ensemble size.
        min_instances: Passed to each member tree.
        sample_fraction: Bootstrap sample size relative to the training
            set (sampling is with replacement).
        seed: Seed for the bootstrap draws.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        min_instances: int = 25,
        sample_fraction: float = 1.0,
        seed: RandomState = 0,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ConfigError("n_estimators must be at least 1")
        if not 0.0 < sample_fraction <= 1.0:
            raise ConfigError("sample_fraction must lie in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.min_instances = int(min_instances)
        self.sample_fraction = float(sample_fraction)
        self.seed = seed
        self.estimators_: List[M5Prime] = []

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.seed)
        n = X.shape[0]
        sample_size = max(2, int(round(n * self.sample_fraction)))
        self.estimators_ = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, sample_size)
            member = M5Prime(min_instances=self.min_instances)
            member.fit(X[rows], y[rows], attribute_names=self.attributes_)
            self.estimators_.append(member)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        stacked = np.vstack([member.predict(X) for member in self.estimators_])
        return stacked.mean(axis=0)

    @property
    def mean_leaves_(self) -> float:
        """Average leaf count across members (ensemble complexity)."""
        if not self.estimators_:
            return 0.0
        return float(np.mean([member.n_leaves for member in self.estimators_]))

"""Common estimator plumbing for the baseline learners."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro._util import as_float_matrix
from repro.datasets.dataset import Dataset
from repro.datasets.unpack import unpack_training_data
from repro.errors import DataError, NotFittedError


class RegressorBase:
    """Base class: input normalization, fitted-state checks, validation.

    Subclasses implement ``_fit(X, y)`` and ``_predict(X)``; everything
    else (Dataset/array duality, width checks, ``fitted_`` flag) lives
    here so the estimators share one contract with :class:`M5Prime`.
    """

    def __init__(self) -> None:
        self.attributes_: Tuple[str, ...] = ()
        self.target_name_: str = "Y"
        self.fitted_ = False

    # ------------------------------------------------------------------
    def fit(
        self,
        data: Union[Dataset, np.ndarray, Sequence],
        y: Optional[Sequence] = None,
        attribute_names: Optional[Sequence[str]] = None,
    ) -> "RegressorBase":
        X, targets, names, target_name = unpack_training_data(
            data, y, attribute_names
        )
        if X.shape[0] == 0:
            raise DataError("cannot fit on zero instances")
        self.attributes_ = names
        self.target_name_ = target_name
        self._fit(X, targets)
        self.fitted_ = True
        return self

    def predict(self, X: Union[np.ndarray, Sequence]) -> np.ndarray:
        if not self.fitted_:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")
        X = as_float_matrix(X)
        if X.shape[1] != len(self.attributes_):
            raise DataError(
                f"X has {X.shape[1]} columns but the model was trained "
                f"on {len(self.attributes_)}"
            )
        return np.asarray(self._predict(X), dtype=np.float64)

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Standardizer:
    """Column-wise z-scoring with degenerate-column protection."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale <= 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("Standardizer must be fitted before transform")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

"""The traditional fixed-penalty CPI model.

The approach the paper's introduction argues against: "assigning a
uniform estimated penalty to each event ... does not accurately identify
and quantify performance limiters."  CPI is modeled as a base cost plus
each event rate times its *architectural* penalty — no overlap, no
interaction, no phases.  Only the base CPI is fitted (as the mean
residual), which is the charitable reading of first-order analysis.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.baselines.base import RegressorBase
from repro.errors import DataError
from repro.simulator.config import LatencyConfig


def default_penalty_table(latency: Optional[LatencyConfig] = None) -> Dict[str, float]:
    """Architectural per-event penalties, in cycles, per Table I metric.

    These are the documented (optimization-manual-style) costs a
    first-order analysis would assign; metrics that describe the mix
    rather than stall events carry no penalty.
    """
    lat = latency or LatencyConfig()
    return {
        "L1DM": float(lat.l2_hit - lat.l1_hit),
        "L1IM": float(lat.l1i_refill),
        "L2M": float(lat.memory),
        "DtlbL0LdM": float(lat.dtlb0_miss),
        "DtlbLdM": float(lat.dtlb_walk),
        "DtlbLdReM": 0.0,   # duplicate view of DtlbLdM; costed once
        "Dtlb": 0.0,        # superset of DtlbLdM; costed once
        "ItlbM": float(lat.itlb_walk),
        "BrMisPr": float(lat.branch_mispredict),
        "LdBlSta": float(lat.load_block_sta),
        "LdBlStd": float(lat.load_block_std),
        "LdBlOvSt": float(lat.load_block_overlap),
        "MisalRef": float(lat.misaligned),
        "L1DSpLd": float(lat.split_access),
        "L1DSpSt": float(lat.split_access),
        "LCP": float(lat.lcp_stall),
        "InstLd": 0.0,
        "InstSt": 0.0,
        "BrPred": 0.0,
        "InstOther": 0.0,
    }


class NaiveFixedPenaltyModel(RegressorBase):
    """CPI = fitted base + sum(penalty_e * rate_e), penalties fixed.

    Args:
        penalties: Metric name -> cycles.  Attributes absent from the
            table cost nothing.  Defaults to the Core 2-class
            architectural penalties of :func:`default_penalty_table`.
        base_cpi: Fix the base CPI instead of fitting it.
    """

    def __init__(
        self,
        penalties: Optional[Mapping[str, float]] = None,
        base_cpi: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.penalties = dict(penalties) if penalties is not None else None
        self.base_cpi = base_cpi

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        table = self.penalties if self.penalties is not None else default_penalty_table()
        unknown = set(table) - set(self.attributes_)
        if self.penalties is not None and unknown:
            raise DataError(
                f"penalty table names unknown attributes: {sorted(unknown)}"
            )
        self._weights = np.array(
            [table.get(name, 0.0) for name in self.attributes_], dtype=np.float64
        )
        event_cycles = X @ self._weights
        if self.base_cpi is not None:
            self._base = float(self.base_cpi)
        else:
            self._base = float(np.mean(y - event_cycles))

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return self._base + X @ self._weights

    @property
    def fitted_base_cpi(self) -> float:
        """The base (event-free) CPI the model settled on."""
        return self._base

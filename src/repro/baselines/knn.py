"""k-nearest-neighbour regression.

A non-parametric comparator from the paper's companion study [23]:
accurate when the section space is densely sampled, but entirely
uninterpretable — it names no events and fits no coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RegressorBase, Standardizer
from repro.errors import ConfigError

#: Rows of the query matrix processed per distance block, bounding memory.
_CHUNK = 256


class KNNRegressor(RegressorBase):
    """Mean of the ``k`` nearest training targets (Euclidean, z-scored).

    Args:
        k: Neighbourhood size.
        weighted: Inverse-distance weighting instead of the plain mean.
    """

    def __init__(self, k: int = 5, weighted: bool = False) -> None:
        super().__init__()
        if k < 1:
            raise ConfigError(f"k must be at least 1, got {k}")
        self.k = int(k)
        self.weighted = bool(weighted)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._scaler = Standardizer()
        self._train_X = self._scaler.fit_transform(X)
        self._train_y = y.copy()
        self._effective_k = min(self.k, X.shape[0])

    def _predict(self, X: np.ndarray) -> np.ndarray:
        Z = self._scaler.transform(X)
        predictions = np.empty(Z.shape[0])
        for start in range(0, Z.shape[0], _CHUNK):
            block = Z[start:start + _CHUNK]
            # Squared Euclidean distances, block against all training rows.
            distances = (
                np.sum(block**2, axis=1)[:, None]
                - 2.0 * block @ self._train_X.T
                + np.sum(self._train_X**2, axis=1)[None, :]
            )
            nearest = np.argpartition(distances, self._effective_k - 1, axis=1)[
                :, : self._effective_k
            ]
            neighbour_targets = self._train_y[nearest]
            if self.weighted:
                neighbour_distances = np.take_along_axis(distances, nearest, axis=1)
                weights = 1.0 / (np.sqrt(np.maximum(neighbour_distances, 0.0)) + 1e-9)
                predictions[start:start + _CHUNK] = np.sum(
                    weights * neighbour_targets, axis=1
                ) / np.sum(weights, axis=1)
            else:
                predictions[start:start + _CHUNK] = neighbour_targets.mean(axis=1)
        return predictions

"""CART-style regression tree: constant predictions at the leaves.

The classical comparator the paper cites ([6], Breiman et al.): same SDR
growth as M5' but a piecewise-*constant* fit, which is exactly what the
paper claims "would not meet the purpose" of quantifying per-event
impacts — and measurably trails M5' in accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import RegressorBase
from repro.core.tree.linear import adjusted_error
from repro.core.tree.node import LeafNode, Node, SplitNode, assign_leaf_ids, route
from repro.core.tree.splitting import find_best_split
from repro.errors import ConfigError, NotFittedError


class RegressionTree(RegressorBase):
    """Binary regression tree with mean-valued leaves.

    Args:
        min_instances: Minimum population per leaf.
        sd_fraction: Stop splitting when node spread falls below this
            fraction of global spread.
        prune: Bottom-up pruning with the same pessimistic error measure
            as M5' (a constant model estimates one parameter).
    """

    def __init__(
        self,
        min_instances: int = 4,
        sd_fraction: float = 0.05,
        prune: bool = True,
    ) -> None:
        super().__init__()
        if min_instances < 1:
            raise ConfigError(f"min_instances must be at least 1, got {min_instances}")
        if not 0.0 <= sd_fraction < 1.0:
            raise ConfigError(f"sd_fraction must lie in [0, 1), got {sd_fraction}")
        self.min_instances = int(min_instances)
        self.sd_fraction = float(sd_fraction)
        self.prune = bool(prune)
        self.root_: Optional[Node] = None

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._global_sd = float(np.std(y))
        root = self._grow(X, y)
        if self.prune:
            root = self._prune(root)[0]
        assign_leaf_ids(root)
        self.root_ = root

    def _grow(self, X: np.ndarray, y: np.ndarray) -> Node:
        n = y.shape[0]
        sd = float(np.std(y))
        mean = float(np.mean(y))
        split = None
        if n >= 2 * self.min_instances and sd > self.sd_fraction * self._global_sd:
            split = find_best_split(X, y, min_leaf=self.min_instances)
        if split is None:
            return LeafNode(n, sd, mean)
        go_left = X[:, split.attribute_index] <= split.threshold
        return SplitNode(
            n_instances=n,
            sd=sd,
            mean=mean,
            attribute_index=split.attribute_index,
            attribute_name=self.attributes_[split.attribute_index],
            threshold=split.threshold,
            left=self._grow(X[go_left], y[go_left]),
            right=self._grow(X[~go_left], y[~go_left]),
        )

    def _prune(self, node: Node):
        """Collapse subtrees whose constant model is no worse."""
        # For a constant leaf, the training absolute error around the mean
        # approximates sd * sqrt(2/pi) under normality; we use the sd
        # directly as the error proxy, corrected for one parameter.
        node_error = adjusted_error(node.sd, node.n_instances, 1)
        if node.is_leaf:
            node.estimated_error = node_error
            return node, node_error
        assert isinstance(node, SplitNode)
        node.left, left_error = self._prune(node.left)
        node.right, right_error = self._prune(node.right)
        n_left = node.left.n_instances
        n_right = node.right.n_instances
        subtree_error = (n_left * left_error + n_right * right_error) / (
            n_left + n_right
        )
        if node_error <= subtree_error:
            leaf = LeafNode(node.n_instances, node.sd, node.mean)
            leaf.estimated_error = node_error
            return leaf, node_error
        node.estimated_error = subtree_error
        return node, subtree_error

    # ------------------------------------------------------------------
    def _predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root_ is not None
        return np.array([route(self.root_, x).mean for x in X])

    @property
    def n_leaves(self) -> int:
        if self.root_ is None:
            raise NotFittedError("fit the tree before inspecting it")
        return self.root_.n_leaves()

    @property
    def depth(self) -> int:
        if self.root_ is None:
            raise NotFittedError("fit the tree before inspecting it")
        return self.root_.depth()

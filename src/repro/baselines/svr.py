"""Epsilon-insensitive support vector regression (RBF kernel).

The SVM comparator ([19], [25] in the paper).  The dual is solved by
coordinate descent in the ``beta = alpha - alpha*`` parameterization;
absorbing the bias into the kernel (adding a constant component) removes
the equality constraint, leaving per-coordinate box constraints with a
closed-form soft-threshold update — simple, dependency-free and robust.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro._util import RandomState, check_random_state
from repro.baselines.base import RegressorBase, Standardizer
from repro.errors import ConfigError


class EpsilonSVR(RegressorBase):
    """RBF-kernel epsilon-SVR via dual coordinate descent.

    Args:
        C: Box constraint (regularization inverse).
        epsilon: Insensitive-tube half-width, in target units.
        gamma: RBF width; ``"scale"`` uses 1 / (p * var) like common
            libraries, or pass a float.
        max_sweeps: Full coordinate sweeps over the training set.
        tol: Stop when the largest coordinate change in a sweep is below
            this threshold.
        max_train: Training instances actually used; larger sets are
            subsampled (kernel methods are quadratic in n).
        seed: Seed for the subsample and sweep order.
    """

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.02,
        gamma: Union[str, float] = "scale",
        max_sweeps: int = 60,
        tol: float = 1e-4,
        max_train: int = 2000,
        seed: RandomState = 0,
    ) -> None:
        super().__init__()
        if C <= 0:
            raise ConfigError(f"C must be positive, got {C}")
        if epsilon < 0:
            raise ConfigError(f"epsilon must be non-negative, got {epsilon}")
        if isinstance(gamma, str) and gamma != "scale":
            raise ConfigError("gamma must be a positive float or 'scale'")
        if not isinstance(gamma, str) and gamma <= 0:
            raise ConfigError("gamma must be a positive float or 'scale'")
        if max_sweeps < 1:
            raise ConfigError("max_sweeps must be at least 1")
        if max_train < 2:
            raise ConfigError("max_train must be at least 2")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.max_sweeps = int(max_sweeps)
        self.tol = float(tol)
        self.max_train = int(max_train)
        self.seed = seed

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.seed)
        if X.shape[0] > self.max_train:
            chosen = rng.choice(X.shape[0], self.max_train, replace=False)
            X = X[chosen]
            y = y[chosen]

        self._scaler = Standardizer()
        Z = self._scaler.fit_transform(X)
        self._y_mean = float(np.mean(y))
        residual_targets = y - self._y_mean

        if self.gamma == "scale":
            variance = float(Z.var())
            self._gamma_value = 1.0 / (Z.shape[1] * variance) if variance > 0 else 1.0
        else:
            self._gamma_value = float(self.gamma)

        self._support = Z
        kernel = self._kernel(Z, Z)
        self._beta = self._solve(kernel, residual_targets, rng)

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        distances = (
            np.sum(A**2, axis=1)[:, None]
            - 2.0 * A @ B.T
            + np.sum(B**2, axis=1)[None, :]
        )
        # +1 absorbs the bias term into the kernel.
        return np.exp(-self._gamma_value * np.maximum(distances, 0.0)) + 1.0

    def _solve(
        self, kernel: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Coordinate descent on 0.5 b'Kb - b'y + eps * |b|_1, b in [-C, C]."""
        n = y.shape[0]
        beta = np.zeros(n)
        prediction = np.zeros(n)  # K @ beta, maintained incrementally
        diagonal = np.maximum(kernel.diagonal(), 1e-12)
        for _ in range(self.max_sweeps):
            largest_change = 0.0
            for i in rng.permutation(n):
                gradient_base = prediction[i] - diagonal[i] * beta[i] - y[i]
                # Unconstrained minimizer with L1 soft-thresholding.
                candidate = -gradient_base
                if candidate > self.epsilon:
                    new_beta = (candidate - self.epsilon) / diagonal[i]
                elif candidate < -self.epsilon:
                    new_beta = (candidate + self.epsilon) / diagonal[i]
                else:
                    new_beta = 0.0
                new_beta = float(np.clip(new_beta, -self.C, self.C))
                change = new_beta - beta[i]
                if change != 0.0:
                    prediction += change * kernel[:, i]
                    beta[i] = new_beta
                    largest_change = max(largest_change, abs(change))
            if largest_change < self.tol:
                break
        return beta

    # ------------------------------------------------------------------
    def _predict(self, X: np.ndarray) -> np.ndarray:
        Z = self._scaler.transform(X)
        kernel = self._kernel(Z, self._support)
        return kernel @ self._beta + self._y_mean

    @property
    def n_support_(self) -> int:
        """Number of support vectors (non-zero dual coefficients)."""
        return int(np.count_nonzero(np.abs(self._beta) > 1e-9))

"""Comparison learners and the naive fixed-penalty model.

The paper validates M5' against other regression techniques (its
companion study [23]: linear regression, regression trees, k-NN,
artificial neural networks, support vector machines) and argues against
the "traditional approach of assigning a uniform estimated penalty to
each event".  All of them are implemented here from scratch.
"""

from repro.baselines.base import RegressorBase
from repro.baselines.bagging import BaggedM5
from repro.baselines.linear import LinearRegressionBaseline
from repro.baselines.regression_tree import RegressionTree
from repro.baselines.knn import KNNRegressor
from repro.baselines.mlp import MLPRegressor
from repro.baselines.svr import EpsilonSVR
from repro.baselines.naive import NaiveFixedPenaltyModel, default_penalty_table

__all__ = [
    "BaggedM5",
    "EpsilonSVR",
    "KNNRegressor",
    "LinearRegressionBaseline",
    "MLPRegressor",
    "NaiveFixedPenaltyModel",
    "RegressionTree",
    "RegressorBase",
    "default_penalty_table",
]

"""A small feed-forward neural network trained with Adam.

The "artificial neural network" comparator ([18] in the paper): slightly
better raw accuracy than the model tree on this data (the paper reports
C = 0.99 vs 0.98) at the cost of total opacity.  Implemented directly on
numpy: dense layers, tanh or ReLU activations, mini-batch Adam, inputs
and targets z-scored internally.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro._util import RandomState, check_random_state
from repro.baselines.base import RegressorBase, Standardizer
from repro.errors import ConfigError

_ACTIVATIONS = ("tanh", "relu")


class MLPRegressor(RegressorBase):
    """Multi-layer perceptron regressor.

    Args:
        hidden: Units per hidden layer.
        activation: ``"tanh"`` or ``"relu"``.
        epochs: Full passes over the training data.
        batch_size: Mini-batch size.
        learning_rate: Adam step size.
        l2: Weight decay coefficient.
        seed: Seed for weight init and shuffling.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (32, 16),
        activation: str = "tanh",
        epochs: int = 200,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        l2: float = 1e-5,
        seed: RandomState = 0,
    ) -> None:
        super().__init__()
        if not hidden or any(h < 1 for h in hidden):
            raise ConfigError("hidden must be a non-empty sequence of positive ints")
        if activation not in _ACTIVATIONS:
            raise ConfigError(f"activation must be one of {_ACTIVATIONS}")
        if epochs < 1 or batch_size < 1:
            raise ConfigError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if l2 < 0:
            raise ConfigError("l2 must be non-negative")
        self.hidden = tuple(int(h) for h in hidden)
        self.activation = activation
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.seed = seed

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.seed)
        self._x_scaler = Standardizer()
        Z = self._x_scaler.fit_transform(X)
        self._y_mean = float(np.mean(y))
        y_scale = float(np.std(y))
        self._y_scale = y_scale if y_scale > 1e-12 else 1.0
        targets = (y - self._y_mean) / self._y_scale

        sizes = [Z.shape[1], *self.hidden, 1]
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        self._train(Z, targets, rng)

    def _train(self, Z: np.ndarray, targets: np.ndarray, rng: np.random.Generator) -> None:
        n = Z.shape[0]
        moments = [
            (np.zeros_like(w), np.zeros_like(w)) for w in self._weights
        ]
        bias_moments = [
            (np.zeros_like(b), np.zeros_like(b)) for b in self._biases
        ]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                step += 1
                grads_w, grads_b = self._gradients(Z[batch], targets[batch])
                for layer, (gw, gb) in enumerate(zip(grads_w, grads_b)):
                    gw = gw + self.l2 * self._weights[layer]
                    m, v = moments[layer]
                    m[:] = beta1 * m + (1 - beta1) * gw
                    v[:] = beta2 * v + (1 - beta2) * gw * gw
                    m_hat = m / (1 - beta1**step)
                    v_hat = v / (1 - beta2**step)
                    self._weights[layer] -= (
                        self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                    )
                    mb, vb = bias_moments[layer]
                    mb[:] = beta1 * mb + (1 - beta1) * gb
                    vb[:] = beta2 * vb + (1 - beta2) * gb * gb
                    mb_hat = mb / (1 - beta1**step)
                    vb_hat = vb / (1 - beta2**step)
                    self._biases[layer] -= (
                        self.learning_rate * mb_hat / (np.sqrt(vb_hat) + eps)
                    )

    # ------------------------------------------------------------------
    def _activate(self, pre: np.ndarray) -> np.ndarray:
        if self.activation == "tanh":
            return np.tanh(pre)
        return np.maximum(pre, 0.0)

    def _activate_grad(self, pre: np.ndarray, post: np.ndarray) -> np.ndarray:
        if self.activation == "tanh":
            return 1.0 - post**2
        return (pre > 0).astype(np.float64)

    def _forward(self, Z: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        activations = [Z]
        pre_activations = []
        current = Z
        last = len(self._weights) - 1
        for layer, (w, b) in enumerate(zip(self._weights, self._biases)):
            pre = current @ w + b
            pre_activations.append(pre)
            current = pre if layer == last else self._activate(pre)
            activations.append(current)
        return pre_activations, activations

    def _gradients(self, Z: np.ndarray, targets: np.ndarray):
        pre, acts = self._forward(Z)
        batch = Z.shape[0]
        delta = (acts[-1].ravel() - targets).reshape(-1, 1) * (2.0 / batch)
        grads_w = [np.zeros_like(w) for w in self._weights]
        grads_b = [np.zeros_like(b) for b in self._biases]
        for layer in range(len(self._weights) - 1, -1, -1):
            grads_w[layer] = acts[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self._weights[layer].T) * self._activate_grad(
                    pre[layer - 1], acts[layer]
                )
        return grads_w, grads_b

    def _predict(self, X: np.ndarray) -> np.ndarray:
        Z = self._x_scaler.transform(X)
        _, acts = self._forward(Z)
        return acts[-1].ravel() * self._y_scale + self._y_mean

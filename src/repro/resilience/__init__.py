"""Fault-tolerant execution: retries, timeouts, checkpoints, chaos.

One crashed worker or truncated cache file must never throw away a
whole collection or evaluation run.  This package provides the four
pieces that guarantee it:

* :mod:`repro.resilience.retry` — per-unit retries with exponential
  backoff and seeded jitter, per-task timeouts, and the three failure
  policies (``fail_fast``, ``collect_errors``, ``min_success_fraction``);
* :mod:`repro.resilience.checkpoint` — checksummed per-unit
  checkpoints so killed runs resume bit-identically;
* :mod:`repro.resilience.policy` — :class:`RunPolicy`, the single
  argument the execution paths take;
* :mod:`repro.resilience.breaker` — a circuit breaker that converts
  persistent failure into fail-fast degraded mode (the serving fleet's
  supervision loop uses it next to :class:`RetryPolicy` backoff);
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS``) that makes all of the above testable.

The invariant every piece preserves: resumed, retried, and fault-ridden
runs that complete are **bit-identical** to clean ones, because unit
randomness is pre-spawned per unit and faults only decide *whether* a
unit fails, never *what* it computes.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import (
    CheckpointStore,
    dataset_fingerprint,
    jsonable,
)
from repro.resilience.faults import (
    FAULTS_ENV,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    maybe_inject,
    reset_faults,
)
from repro.resilience.policy import RunPolicy
from repro.resilience.retry import (
    COLLECT_ERRORS,
    FAIL_FAST,
    MIN_SUCCESS,
    POLICY_KINDS,
    FailPolicy,
    RetryPolicy,
    TaskFailure,
    resilient_map,
    run_with_timeout,
    split_failures,
)

__all__ = [
    "COLLECT_ERRORS",
    "CheckpointStore",
    "CircuitBreaker",
    "FAIL_FAST",
    "FAULTS_ENV",
    "FailPolicy",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "MIN_SUCCESS",
    "POLICY_KINDS",
    "RetryPolicy",
    "RunPolicy",
    "TaskFailure",
    "active_plan",
    "dataset_fingerprint",
    "jsonable",
    "maybe_inject",
    "reset_faults",
    "resilient_map",
    "run_with_timeout",
    "split_failures",
]

"""Deterministic fault injection for chaos testing the execution stack.

Real counter-collection pipelines fail in mundane ways — a simulation
worker dies, a cache file is truncated, a checkpoint half-written.  The
retry, failure-policy, and checkpoint machinery in this package exists
to survive exactly those failures, and this module makes them happen on
demand so every policy is testable.

Activation is purely environmental.  ``REPRO_FAULTS`` holds a spec like::

    REPRO_FAULTS="sim:0.2,cache_read:0.1,seed=7"

meaning: raise :class:`~repro.errors.FaultInjected` at the ``sim`` site
with probability 0.2 per call and at ``cache_read`` with probability
0.1, with all decisions derived from seed 7.  When the variable is
unset or empty, :func:`maybe_inject` is a no-op; production behavior is
byte-for-byte unaffected.

Decisions are *deterministic*: whether occurrence ``n`` of a
``(site, key)`` pair fails is a pure function of
``(seed, site, key, n)``.  Two consequences worth spelling out:

* Retries can succeed.  Each retry of the same unit is a new
  occurrence, so a 20%-rate fault clears with probability 0.8 on the
  next attempt — exactly how flaky hardware counters behave.
* Faults never perturb *results*.  An injected failure decides whether
  a unit fails, never what it computes; every unit's randomness comes
  from its own pre-spawned seed, so a run that completes under faults
  is bit-identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError, FaultInjected

#: Environment variable holding the active fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Sites instrumented with :func:`maybe_inject`, and what failing there
#: simulates.  Specs naming any other site are rejected up front so a
#: typo cannot silently inject nothing.
KNOWN_SITES: Mapping[str, str] = {
    "sim": "a workload simulation task crashes mid-section",
    "fold": "a cross-validation fold's fit-and-predict dies",
    "cache_read": "an artifact-cache entry is unreadable",
    "cache_write": "an artifact-cache write fails before completing",
    "checkpoint_read": "a checkpoint file is unreadable",
    "checkpoint_write": "a checkpoint write fails before completing",
    "worker_crash": "a serving worker process dies mid-request",
    "slow_handler": "a serving request handler stalls past its deadline",
    "registry_read": "a registry manifest read fails",
}


def _unit_interval(seed: int, site: str, key: str, occurrence: int) -> float:
    """A deterministic draw in [0, 1) for one injection decision."""
    text = f"{seed}|{site}|{key}|{occurrence}"
    digest = hashlib.sha256(text.encode()).hexdigest()
    return int(digest[:16], 16) / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """A parsed ``REPRO_FAULTS`` value: per-site rates plus the seed."""

    rates: Mapping[str, float]
    seed: int = 0

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse the ``site:rate,...,seed=N`` grammar.

        Raises :class:`~repro.errors.ConfigError` on unknown sites,
        rates outside [0, 1], or malformed tokens.
        """
        rates: Dict[str, float] = {}
        seed = 0
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[len("seed="):])
                except ValueError:
                    raise ConfigError(
                        f"fault spec seed must be an integer, got {token!r}"
                    ) from None
                continue
            site, sep, rate_text = token.partition(":")
            site = site.strip()
            if not sep:
                raise ConfigError(
                    f"malformed fault token {token!r}; expected site:rate"
                )
            if site not in KNOWN_SITES:
                raise ConfigError(
                    f"unknown fault site {site!r}; known sites: "
                    + ", ".join(sorted(KNOWN_SITES))
                )
            try:
                rate = float(rate_text)
            except ValueError:
                raise ConfigError(
                    f"fault rate for {site!r} must be a number, got "
                    f"{rate_text!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {site!r} must lie in [0, 1], got {rate}"
                )
            rates[site] = rate
        if not rates:
            raise ConfigError(
                "fault spec names no sites; expected e.g. 'sim:0.2,seed=7'"
            )
        return FaultSpec(rates=dict(rates), seed=seed)

    def describe(self) -> str:
        """Human-readable rendering (the ``repro faults`` output)."""
        lines = [f"fault injection active (seed {self.seed})"]
        for site in sorted(self.rates):
            lines.append(
                f"  {site:<17} {100 * self.rates[site]:5.1f}%  "
                f"{KNOWN_SITES[site]}"
            )
        return "\n".join(lines)


@dataclass
class FaultPlan:
    """A spec plus per-``(site, key)`` occurrence counters.

    The counters make retries meaningful: each call for the same unit
    is a distinct occurrence with an independent (but deterministic)
    decision.  Counters are process-local; they track how often *this*
    process asked, which is deterministic for any fixed call pattern.
    """

    spec: FaultSpec
    _counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def should_fail(self, site: str, key: str) -> bool:
        """Decide (and record) one occurrence at ``site`` for ``key``."""
        rate = self.spec.rates.get(site, 0.0)
        with self._lock:
            occurrence = self._counts.get((site, key), 0)
            self._counts[(site, key)] = occurrence + 1
        if rate <= 0.0:
            return False
        return _unit_interval(self.spec.seed, site, key, occurrence) < rate

    def occurrence(self, site: str, key: str) -> int:
        """How many decisions have been made for ``(site, key)`` so far."""
        with self._lock:
            return self._counts.get((site, key), 0)

    def inject(self, site: str, key: str) -> None:
        """Raise :class:`FaultInjected` when this occurrence should fail."""
        if self.should_fail(site, key):
            raise FaultInjected(site, key, self.occurrence(site, key))


_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_TEXT: Optional[str] = None
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The plan for the current ``REPRO_FAULTS`` value, or ``None``.

    The plan (with its occurrence counters) is cached per environment
    value, so repeated calls within one process share counters; any
    change to the variable builds a fresh plan.
    """
    global _ACTIVE, _ACTIVE_TEXT
    text = os.environ.get(FAULTS_ENV, "").strip()
    with _ACTIVE_LOCK:
        if text == (_ACTIVE_TEXT or ""):
            return _ACTIVE
        _ACTIVE = FaultPlan(FaultSpec.parse(text)) if text else None
        _ACTIVE_TEXT = text
        return _ACTIVE


def reset_faults() -> None:
    """Drop the cached plan (and its counters); mainly for tests."""
    global _ACTIVE, _ACTIVE_TEXT
    with _ACTIVE_LOCK:
        _ACTIVE = None
        _ACTIVE_TEXT = None


def maybe_inject(site: str, key: str) -> None:
    """Raise :class:`FaultInjected` if the active plan says so.

    This is the single hook production code places at a failure site.
    With no active plan (the normal case) it is a cheap no-op.
    """
    plan = active_plan()
    if plan is not None:
        plan.inject(site, key)

"""Retries, per-task timeouts, and pluggable failure policies.

The execution layer's unit of work is one element of a map — a fold, a
workload simulation, an ensemble member.  This module wraps each unit
so that a transient failure (an injected fault, a flaky measurement, a
timeout) is retried with exponential backoff, and a unit that keeps
failing is either re-raised, recorded, or tolerated up to a success
floor, depending on the failure policy:

* ``fail_fast`` (default) — the first exhausted unit aborts the run, as
  an unwrapped loop would;
* ``collect_errors`` — failed units come back as structured
  :class:`TaskFailure` records in their map slots; the caller decides
  what a partial result is worth;
* ``min_success_fraction`` — like ``collect_errors`` but the run aborts
  unless at least the given fraction of units succeeded.

Backoff jitter is *seeded*: the delay before retry ``n`` of unit ``k``
is a pure function of ``(policy.seed, k, n)``, so two identical runs
sleep identically.  Nothing here touches task *results* — a run that
completes is bit-identical to one that never saw a failure.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, TypeVar, Union

from repro.errors import ConfigError, RetryExhaustedError, TaskTimeoutError

T = TypeVar("T")
R = TypeVar("R")

#: Failure-policy kinds, in the order the CLI documents them.
FAIL_FAST = "fail_fast"
COLLECT_ERRORS = "collect_errors"
MIN_SUCCESS = "min_success_fraction"
POLICY_KINDS = (FAIL_FAST, COLLECT_ERRORS, MIN_SUCCESS)

#: Patchable sleep hook so tests can observe backoff without waiting.
_sleep = time.sleep


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failing unit is retried.

    Attributes:
        max_attempts: Total tries per unit (1 disables retrying).
        base_delay: Seconds before the first retry; each further retry
            doubles it.
        max_delay: Ceiling on the undithered delay.
        jitter: Fractional dither added on top of the exponential delay
            (0.1 means up to +10%), drawn deterministically from
            ``seed`` and the unit key so identical runs sleep
            identically.
        seed: Root of the jitter derivation.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"jitter must lie in [0, 1], got {self.jitter!r}"
            )

    def delay_for(self, attempt: int, key: str) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based) of ``key``."""
        raw = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        text = f"{self.seed}|{key}|{attempt}"
        digest = hashlib.sha256(text.encode()).hexdigest()
        unit = int(digest[:16], 16) / float(1 << 64)
        return raw * (1.0 + self.jitter * unit)


@dataclass(frozen=True)
class TaskFailure:
    """One unit's terminal failure, recorded instead of raised.

    Occupies the failed unit's slot in the map result under the
    ``collect_errors`` and ``min_success_fraction`` policies.  Carries
    only strings (not the exception object) so it crosses process
    boundaries and serializes into the JSON report envelope unchanged.
    """

    key: str
    index: int
    error_type: str
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "unit": self.key,
            "index": self.index,
            "error": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    def render(self) -> str:
        return (
            f"{self.key}: failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


@dataclass(frozen=True)
class FailPolicy:
    """What a finished map does about units that exhausted their retries."""

    kind: str = FAIL_FAST
    min_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ConfigError(
                f"failure policy must be one of {POLICY_KINDS}, got "
                f"{self.kind!r}"
            )
        if not 0.0 <= self.min_fraction <= 1.0:
            raise ConfigError(
                f"min_fraction must lie in [0, 1], got {self.min_fraction!r}"
            )

    @staticmethod
    def parse(spec: str) -> "FailPolicy":
        """Parse a CLI spec: ``fail_fast`` | ``collect_errors`` |
        ``min_success:FRACTION`` (``min_success_fraction:`` also accepted).
        """
        text = spec.strip()
        if text in (FAIL_FAST, COLLECT_ERRORS):
            return FailPolicy(kind=text)
        name, sep, fraction_text = text.partition(":")
        if name in ("min_success", MIN_SUCCESS):
            if not sep:
                return FailPolicy(kind=MIN_SUCCESS, min_fraction=0.5)
            try:
                fraction = float(fraction_text)
            except ValueError:
                raise ConfigError(
                    f"min_success fraction must be a number, got "
                    f"{fraction_text!r}"
                ) from None
            return FailPolicy(kind=MIN_SUCCESS, min_fraction=fraction)
        raise ConfigError(
            f"unknown failure policy {spec!r}; expected fail_fast, "
            "collect_errors, or min_success:FRACTION"
        )

    @property
    def captures(self) -> bool:
        """Whether exhausted units are recorded rather than raised."""
        return self.kind != FAIL_FAST

    def apply(self, outcomes: Sequence[Any]) -> List[Any]:
        """Enforce the policy over a finished map's outcomes.

        Returns the outcomes (failures in place) or raises
        :class:`RetryExhaustedError` when the policy cannot accept them.
        """
        failures = [o for o in outcomes if isinstance(o, TaskFailure)]
        if not failures:
            return list(outcomes)
        if self.kind == FAIL_FAST:
            raise RetryExhaustedError(failures[0].render())
        if self.kind == MIN_SUCCESS and outcomes:
            fraction = 1.0 - len(failures) / len(outcomes)
            if fraction < self.min_fraction:
                names = ", ".join(f.key for f in failures[:8])
                extra = len(failures) - 8
                if extra > 0:
                    names += f" (+{extra} more)"
                raise RetryExhaustedError(
                    f"only {100 * fraction:.0f}% of {len(outcomes)} units "
                    f"succeeded (policy requires "
                    f"{100 * self.min_fraction:.0f}%); failed: {names}"
                )
        return list(outcomes)


def run_with_timeout(
    fn: Callable[[T], R], item: T, timeout: Optional[float], key: str
) -> R:
    """Run ``fn(item)``, raising :class:`TaskTimeoutError` past ``timeout``.

    The task runs on a daemon thread so the caller can give up on it;
    an abandoned task keeps running until it finishes on its own (there
    is no portable way to kill it), which is acceptable for the pure
    compute tasks this package maps.  ``timeout=None`` calls directly.
    """
    if timeout is None:
        return fn(item)
    if timeout <= 0:
        raise ConfigError(f"task timeout must be positive, got {timeout!r}")
    outcome: dict = {}
    done = threading.Event()

    def target() -> None:
        try:
            outcome["value"] = fn(item)
        except BaseException as error:  # noqa: BLE001 - relayed to caller
            outcome["error"] = error
        finally:
            done.set()

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    if not done.wait(timeout):
        raise TaskTimeoutError(
            f"task {key!r} exceeded its {timeout:g}s timeout"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


class ResilientTask:
    """Picklable per-unit wrapper: timeout, retries, terminal handling.

    Called with ``(key, index, item)``; returns ``fn(item)`` or — when
    the policy captures — a :class:`TaskFailure` after the retry budget
    is spent.  Lives at module level so process pools can pickle it.
    """

    def __init__(
        self,
        fn: Callable[[T], R],
        retry: RetryPolicy,
        timeout: Optional[float],
        capture: bool,
    ) -> None:
        self.fn = fn
        self.retry = retry
        self.timeout = timeout
        self.capture = capture

    def __call__(self, job: tuple) -> Union[R, TaskFailure]:
        key, index, item = job
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return run_with_timeout(self.fn, item, self.timeout, key)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                last_error = error
                if attempt < self.retry.max_attempts:
                    _sleep(self.retry.delay_for(attempt, key))
        assert last_error is not None
        if self.capture:
            return TaskFailure(
                key=key,
                index=index,
                error_type=type(last_error).__name__,
                message=str(last_error),
                attempts=self.retry.max_attempts,
            )
        raise RetryExhaustedError(
            f"{key} failed after {self.retry.max_attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        ) from last_error


def resilient_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = None,
    executor: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    fail_policy: Optional[FailPolicy] = None,
    task_timeout: Optional[float] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[Union[R, TaskFailure]]:
    """:func:`repro.parallel.parallel_map` with failure handling.

    Every unit is retried per ``retry`` (default
    :class:`RetryPolicy()`), bounded by ``task_timeout`` seconds, and
    judged by ``fail_policy`` once the map finishes.  Results keep
    input order; under capturing policies a failed unit's slot holds
    its :class:`TaskFailure`.

    ``keys`` names the units for failure records, jitter derivation and
    fault-injection identity; it defaults to ``task-<index>``.
    """
    from repro.parallel.executor import parallel_map

    items = list(items)
    policy = fail_policy if fail_policy is not None else FailPolicy()
    retry_policy = retry if retry is not None else RetryPolicy()
    if keys is None:
        keys = [f"task-{index}" for index in range(len(items))]
    elif len(keys) != len(items):
        raise ConfigError(
            f"got {len(keys)} keys for {len(items)} items"
        )
    task = ResilientTask(fn, retry_policy, task_timeout, policy.captures)
    jobs = [
        (key, index, item)
        for index, (key, item) in enumerate(zip(keys, items))
    ]
    outcomes = parallel_map(task, jobs, n_jobs=n_jobs, executor=executor)
    return policy.apply(outcomes)


def split_failures(outcomes: Sequence[Any]) -> tuple:
    """Partition map outcomes into ``(successes, failures)``.

    ``successes`` is a list of ``(index, result)`` pairs in input
    order; ``failures`` the :class:`TaskFailure` records.
    """
    successes = []
    failures: List[TaskFailure] = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, TaskFailure):
            failures.append(outcome)
        else:
            successes.append((index, outcome))
    return successes, failures

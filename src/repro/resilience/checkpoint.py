"""Checkpoint/resume for the long-running execution paths.

A suite simulation or cross-validation run is a map of independent
units (workloads, folds) whose randomness is fully resolved before any
unit runs.  That makes per-unit checkpointing safe: a unit's result is
identical whether it was computed in the original run or a resumed one,
so a run killed mid-way and restarted with ``--resume`` reproduces the
uninterrupted result bit for bit.

Layout (under ``<default_cache_dir>/checkpoints`` or an explicit
directory)::

    checkpoints/
        <run-key>/
            <unit>.json              one completed unit's payload
            <unit>.json.quarantined  a corrupt checkpoint, kept for autopsy

Every checkpoint embeds a SHA-256 checksum of its canonical payload
JSON.  A truncated, tampered, or unparsable checkpoint is *quarantined*
(renamed aside) and treated as missing — the unit is simply recomputed,
never trusted, never fatal.

Payloads survive a JSON round trip exactly: Python floats serialize via
``repr`` and parse back to the identical double, so checkpointed
predictions and counter values are bit-identical to freshly computed
ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import CheckpointError, FaultInjected
from repro.resilience.faults import maybe_inject

#: Format marker written into every checkpoint file.
CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

_SAFE_SEGMENT = re.compile(r"[^A-Za-z0-9._-]")


def _safe_segment(name: str) -> str:
    """A filesystem-safe rendition of one run-key/unit segment."""
    cleaned = _SAFE_SEGMENT.sub("_", name)
    if not cleaned or cleaned in (".", ".."):
        raise CheckpointError(f"unusable checkpoint name {name!r}")
    return cleaned


def jsonable(value: Any) -> Any:
    """Recursively convert numpy containers/scalars for JSON storage."""
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def _canonical(payload: Any) -> str:
    """The canonical JSON text a checkpoint's checksum covers."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dataset_fingerprint(dataset: Any) -> str:
    """A short content digest of a dataset, for run-key derivation.

    Two runs resume each other only when they operate on the same data;
    hashing the actual matrix (not the file path) makes that exact.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.X).tobytes())
    digest.update(np.ascontiguousarray(dataset.y).tobytes())
    digest.update("|".join(dataset.attributes).encode())
    digest.update(str(dataset.target_name).encode())
    return digest.hexdigest()[:16]


class CheckpointStore:
    """Per-unit durable results for one or more named runs.

    Args:
        directory: Store root; defaults to
            ``<default_cache_dir>/checkpoints`` so checkpoints live
            beside the artifact cache and honor ``REPRO_CACHE_DIR``.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        if directory is None:
            from repro.experiments.config import default_cache_dir

            directory = default_cache_dir() / "checkpoints"
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def run_dir(self, run_key: str) -> Path:
        parts = [_safe_segment(p) for p in str(run_key).split("/") if p]
        if not parts:
            raise CheckpointError("run key must not be empty")
        return self.directory.joinpath(*parts)

    def unit_path(self, run_key: str, unit: str) -> Path:
        return self.run_dir(run_key) / f"{_safe_segment(unit)}.json"

    # ------------------------------------------------------------------
    # Round trip
    # ------------------------------------------------------------------
    def store(self, run_key: str, unit: str, payload: Any) -> Path:
        """Atomically persist one unit's result.

        The payload must be JSON-serializable after
        :func:`jsonable` conversion; anything else is a caller bug and
        raises :class:`~repro.errors.CheckpointError`.
        """
        maybe_inject("checkpoint_write", f"{run_key}/{unit}")
        clean = jsonable(payload)
        try:
            body = _canonical(clean)
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint payload for {unit!r} is not serializable: "
                f"{error}"
            ) from error
        document = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "unit": unit,
            "checksum": hashlib.sha256(body.encode()).hexdigest(),
            "payload": clean,
        }
        path = self.unit_path(run_key, unit)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(tmp, path)
        return path

    def load(self, run_key: str, unit: str) -> Optional[Any]:
        """One unit's payload, or ``None`` when absent or untrustworthy.

        A missing file is a plain miss.  A corrupt one — unparsable,
        wrong format, failed checksum — is quarantined with a warning
        and reported as a miss, so the unit is recomputed rather than
        poisoning the run.
        """
        path = self.unit_path(run_key, unit)
        if not path.exists():
            return None
        try:
            maybe_inject("checkpoint_read", f"{run_key}/{unit}")
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if document.get("format") != CHECKPOINT_FORMAT:
                raise ValueError("not a repro checkpoint")
            payload = document["payload"]
            expected = document["checksum"]
        except FaultInjected:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        if hashlib.sha256(_canonical(payload).encode()).hexdigest() != expected:
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        quarantined = path.with_suffix(path.suffix + ".quarantined")
        try:
            os.replace(path, quarantined)
        except OSError:
            path.unlink(missing_ok=True)
        warnings.warn(
            f"quarantined corrupt checkpoint {path.name}; the unit will "
            "be recomputed",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Inspection and maintenance
    # ------------------------------------------------------------------
    def completed_units(self, run_key: str) -> List[str]:
        """Unit names with a (present, unquarantined) checkpoint file."""
        run_dir = self.run_dir(run_key)
        if not run_dir.is_dir():
            return []
        return sorted(
            p.stem for p in run_dir.iterdir()
            if p.is_file() and p.suffix == ".json"
        )

    def runs(self) -> Dict[str, int]:
        """Run key -> number of completed units, for ``repro cache info``."""
        if not self.directory.is_dir():
            return {}
        found: Dict[str, int] = {}
        for run_dir in sorted(self.directory.rglob("*")):
            if not run_dir.is_dir():
                continue
            units = [
                p for p in run_dir.iterdir()
                if p.is_file() and p.suffix == ".json"
            ]
            if units:
                key = str(run_dir.relative_to(self.directory))
                found[key] = len(units)
        return found

    def clear(self, run_key: Optional[str] = None) -> int:
        """Delete checkpoints (for one run, or all); returns files removed.

        Quarantined copies are removed along with live checkpoints.
        """
        if run_key is not None:
            roots = [self.run_dir(run_key)]
        elif self.directory.is_dir():
            roots = [self.directory]
        else:
            return 0
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*"), reverse=True):
                if path.is_file():
                    path.unlink(missing_ok=True)
                    removed += 1
                elif path.is_dir():
                    try:
                        path.rmdir()
                    except OSError:
                        pass
        return removed

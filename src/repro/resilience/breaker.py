"""A circuit breaker for repeatedly-failing dependencies.

Retries with backoff (:class:`~repro.resilience.retry.RetryPolicy`)
handle *transient* failures; a breaker handles *persistent* ones.  When
the same operation — restarting a crashed serving worker, reaching a
flaky backend — keeps failing, continuing to hammer it wastes the very
resources degraded mode is trying to protect.  The breaker trips after
a run of consecutive failures and converts "keep trying" into "fail
fast" until a cooldown elapses.

States follow the canonical pattern:

* **closed** — normal operation; every attempt is allowed.  Failures
  increment a consecutive-failure count; a success resets it.
* **open** — tripped; :meth:`allow` refuses every attempt until
  ``cooldown_s`` has elapsed since the trip.
* **half-open** — the cooldown elapsed; one probe attempt is allowed.
  Its success (``half_open_successes`` consecutive successes, default
  1) closes the breaker; its failure re-opens it and restarts the
  cooldown.

The clock is injectable (``clock=...``) so state transitions are unit
testable without sleeping, in the same spirit as the seeded jitter in
:class:`~repro.resilience.retry.RetryPolicy`.  All methods are
thread-safe: the serving supervisor records outcomes from its health
loop while the router consults :meth:`allow` from handler threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ConfigError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

#: The three breaker states, as ``CircuitBreaker.state`` reports them.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip to fail-fast after ``failure_threshold`` consecutive failures.

    Args:
        failure_threshold: Consecutive :meth:`record_failure` calls (with
            no intervening success) that trip the breaker open.
        cooldown_s: Seconds the breaker stays open before allowing a
            half-open probe.
        half_open_successes: Consecutive successes required in the
            half-open state before the breaker closes again.
        clock: Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        half_open_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ConfigError(f"cooldown_s must be >= 0, got {cooldown_s}")
        if half_open_successes < 1:
            raise ConfigError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.half_open_successes = int(half_open_successes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._half_open_streak = 0
        self._opened_at = 0.0
        self.trips = 0  # total times the breaker opened (monotonic)

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        """Open -> half-open once the cooldown has elapsed (lock held)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._half_open_streak = 0

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether an attempt may proceed right now.

        Closed and half-open allow attempts; open refuses them until the
        cooldown converts it to half-open.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state != OPEN

    def record_success(self) -> None:
        """Count one successful attempt; may close a half-open breaker."""
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._half_open_streak += 1
                if self._half_open_streak >= self.half_open_successes:
                    self._state = CLOSED
                    self._half_open_streak = 0

    def record_failure(self) -> None:
        """Count one failed attempt; may trip (or re-trip) the breaker."""
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._state = OPEN
                self._opened_at = self._clock()
                self._half_open_streak = 0
                self.trips += 1
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def reset(self) -> None:
        """Force-close the breaker and clear every counter."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._half_open_streak = 0

    def describe(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return (
                f"breaker {self._state} "
                f"({self._consecutive_failures}/{self.failure_threshold} "
                f"consecutive failures, {self.trips} trip(s), "
                f"cooldown {self.cooldown_s:g}s)"
            )

"""The one object callers pass to make a long path fault-tolerant.

:class:`RunPolicy` bundles the retry schedule, the failure policy, the
per-task timeout, and (optionally) a checkpoint store plus the run key
that scopes it.  ``cross_validate``, ``simulate_suite``,
``suite_dataset`` and ``compare_estimators`` all accept
``policy=RunPolicy(...)``; passing ``None`` (the default everywhere)
keeps the historical fail-on-first-error behavior byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.retry import FailPolicy, RetryPolicy


@dataclass(frozen=True)
class RunPolicy:
    """Fault-tolerance configuration for one mapped run.

    Attributes:
        retry: Per-unit retry schedule (default: 3 attempts with
            exponential backoff and seeded jitter).
        fail_policy: What to do about units that exhaust their retries.
        task_timeout: Per-unit wall-clock budget in seconds (``None``
            disables timeouts).
        checkpoint: Store for per-unit durable results; ``None``
            disables checkpointing.
        run_key: Namespace for this run's checkpoints.  Needed (by
            execution time) whenever ``checkpoint`` is set; two runs
            share completed units exactly when they share a run key, so
            keys must encode everything that determines unit results
            (the CLI derives them from content fingerprints, and
            ``suite_dataset`` fills a missing key in automatically).
        resume: Reuse completed units already in the store.  When
            false, checkpoints are still *written* (so a later resumed
            run can pick them up) but never read.
    """

    retry: RetryPolicy = RetryPolicy()
    fail_policy: FailPolicy = FailPolicy()
    task_timeout: Optional[float] = None
    checkpoint: Optional[CheckpointStore] = None
    run_key: Optional[str] = None
    resume: bool = False

    def scoped(self, suffix: str) -> "RunPolicy":
        """This policy with its run key narrowed by ``suffix``.

        Used by multi-stage callers (``compare_estimators`` gives each
        method its own checkpoint namespace under the shared run).
        """
        if self.checkpoint is None:
            return self
        return replace(self, run_key=f"{self.require_run_key()}/{suffix}")

    def require_run_key(self) -> str:
        """The run key, or :class:`CheckpointError` when unset."""
        if not self.run_key:
            raise CheckpointError(
                "a RunPolicy with a checkpoint store needs a run_key"
            )
        return self.run_key

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint is not None

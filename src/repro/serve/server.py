"""The model server: batched tree inference behind a JSON HTTP API.

Stdlib-only (``http.server``): the serving stack must run wherever the
training stack runs.  A :class:`ModelServer` owns the registry handle,
a per-model :class:`~repro.serve.batching.BatchQueue` (so concurrent
requests coalesce into one compiled evaluation), a
:class:`~repro.serve.drift.DriftMonitor` per model, and the metrics
registry the ``/metrics`` endpoint renders.

Endpoints (all JSON, envelope schema ``repro-serve/1``):

* ``POST /predict`` — score one section or a batch; returns
  predictions plus the paper's LM class per row.
* ``POST /explain`` — the paper's "what/how much" answers for one
  section: decision path, leaf equation terms, per-event contributions.
* ``GET /models`` — every published registry version.
* ``GET /healthz`` — liveness plus the loaded model set.
* ``GET /metrics`` — Prometheus text format: request counts, latency
  and batch-size histograms, model-cache hits, drift counters.

Error contract: invalid payloads are 400, unknown models/paths 404,
deadline overruns and shed requests 503 (the
:class:`~repro.resilience.RunPolicy` ``task_timeout`` semantics and the
admission-control path), unexpected failures 500 — always as a
``{"schema": ..., "error": ..., "status": ...}`` JSON body, never a
traceback page.  Every 503 carries a ``Retry-After`` header and a
machine-readable ``reason`` (``deadline`` / ``overload`` / ``draining``
/ ``degraded``) so clients can back off instead of piling on; shed
requests are counted by the ``repro_shed_total`` metric.

Lifecycle: ``shutdown(drain_timeout=...)`` drains gracefully — the
listening socket closes first (new requests are refused), in-flight
requests get up to the drain timeout to finish, then batch queues stop.
The CLI wires SIGTERM to this path so an orchestrator's stop is never a
dropped request.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.analysis.contribution import leaf_contributions
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import SplitNode
from repro.errors import (
    DataError,
    OverloadError,
    RegistryError,
    ReproError,
    ServeError,
    TaskTimeoutError,
)
from repro.serve.batching import BatchQueue
from repro.serve.drift import DriftMonitor
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.serve.registry import ModelRegistry
from repro.verify import verify_model

if TYPE_CHECKING:
    from repro.verify.certificate import VerificationCertificate

__all__ = ["ModelServer", "SCHEMA"]

#: Envelope identity on every JSON response; bump on breaking changes.
SCHEMA = "repro-serve/1"


@dataclass
class ServedModel:
    """One loaded model (single tree or compiled forest) and its
    serving machinery."""

    label: str
    model: object
    queue: BatchQueue
    drift: DriftMonitor
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def is_forest(self) -> bool:
        return not isinstance(self.model, M5Prime)


class ModelServer:
    """Everything behind the HTTP surface; usable without HTTP in tests.

    Args:
        registry: Model registry to resolve specs against (defaults to
            the shared on-disk registry).
        default_model: Spec requests use when they name no model.
        host, port: Bind address; port 0 asks the OS for an ephemeral
            port (``bound_port`` reports the outcome).
        max_batch, max_wait_s: Batching knobs (see
            :class:`~repro.serve.batching.BatchQueue`).
        task_timeout: Per-request wall-clock budget in seconds, the
            ``RunPolicy.task_timeout`` semantics; ``None`` disables.
        range_slack: Drift-monitor range slack (COMPAT003's default).
        max_inflight: Admission-control cap on concurrently evaluating
            requests; requests beyond it are shed with 503 +
            ``Retry-After`` instead of queueing unboundedly.  ``None``
            disables shedding.
        retry_after_s: Value (seconds) 503 responses advertise in their
            ``Retry-After`` header.
        reuse_port: Bind with ``SO_REUSEPORT`` so sibling processes can
            share the port (kernel-balanced fleet mode); raises
            :class:`~repro.errors.ServeError` where unsupported.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        default_model: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 8377,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        task_timeout: Optional[float] = None,
        range_slack: float = 0.10,
        max_inflight: Optional[int] = None,
        retry_after_s: float = 1.0,
        reuse_port: bool = False,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1 or None, got {max_inflight}"
            )
        self.registry = registry if registry is not None else ModelRegistry()
        self.default_model = default_model
        self.host = host
        self.port = int(port)
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.task_timeout = task_timeout
        self.range_slack = float(range_slack)
        self.max_inflight = max_inflight
        self.retry_after_s = float(retry_after_s)
        self.reuse_port = bool(reuse_port)
        self._models: Dict[str, ServedModel] = {}
        self._by_digest: Dict[str, ServedModel] = {}
        self._models_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._draining = threading.Event()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_requests_total",
            "HTTP requests served, by endpoint and status.",
            ("endpoint", "status"),
        )
        self._latency = self.metrics.histogram(
            "repro_request_seconds",
            "Request wall-clock seconds, by endpoint.",
            labelnames=("endpoint",),
        )
        self._batch_rows = self.metrics.histogram(
            "repro_batch_rows",
            "Rows per coalesced predictor batch.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._model_cache = self.metrics.counter(
            "repro_model_cache_total",
            "Model resolutions, by outcome (hit = already loaded).",
            ("outcome",),
        )
        self._model_info = self.metrics.gauge(
            "repro_served_model_leaves",
            "Leaf count of each loaded model.",
            ("model",),
        )
        self._shed = self.metrics.counter(
            "repro_shed_total",
            "Requests refused before evaluation, by reason.",
            ("reason",),
        )
        self._inflight_gauge = self.metrics.gauge(
            "repro_inflight_requests",
            "Requests currently being evaluated.",
        )

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    def add_model(
        self,
        label: str,
        model,
        certificate: Optional["VerificationCertificate"] = None,
    ) -> ServedModel:
        """Serve an in-memory fitted model under ``label`` (no registry).

        Accepts a single :class:`~repro.core.tree.m5.M5Prime` or a
        fitted :class:`~repro.baselines.bagging.BaggedM5` forest.
        Without an explicit ``certificate`` the server derives one from
        the static verifier when it can (clean single tree with recorded
        ``feature_ranges_``), so the drift monitor bounds predictions
        even for models loaded outside the registry path.  Forests are
        uncertified, so their drift monitor runs without an output
        bound.
        """
        is_forest = not isinstance(model, M5Prime)
        if is_forest:
            if not getattr(model, "estimators_", ()):
                raise ServeError(f"cannot serve unfitted forest {label!r}")
        elif model.root_ is None:
            raise ServeError(f"cannot serve unfitted model {label!r}")
        compiled = model.compiled_
        if certificate is None and not is_forest:
            try:
                certificate = verify_model(model).certificate
            except ReproError:
                certificate = None
        drift = DriftMonitor(
            model,
            range_slack=self.range_slack,
            output_interval=(
                None if certificate is None else certificate.output
            ),
        )
        smoothing_k = model.smoothing_k if model.smoothing else None

        if is_forest:
            # Through the ensemble's own predict so an attached
            # refinement pass (refined_) is honored.
            def evaluate(X: np.ndarray) -> np.ndarray:
                drift.observe(X)
                predictions = model.predict(X)
                drift.observe_predictions(predictions)
                return predictions
        else:
            def evaluate(X: np.ndarray) -> np.ndarray:
                drift.observe(X)
                predictions = compiled.predict(X, smoothing_k=smoothing_k)
                drift.observe_predictions(predictions)
                return predictions

        queue = BatchQueue(
            evaluate,
            max_batch=self.max_batch,
            max_wait_s=self.max_wait_s,
            observe_batch=lambda n: self._batch_rows.observe(n),
        ).start()
        served = ServedModel(label=label, model=model, queue=queue, drift=drift)
        with self._models_lock:
            self._models[label] = served
        self._model_info.set(label, value=model.n_leaves)
        return served

    def get_model(self, spec: Optional[str] = None) -> ServedModel:
        """The served model for a spec, loading through the registry once."""
        if spec is None:
            spec = self.default_model
        if spec is None:
            with self._models_lock:
                if len(self._models) == 1:
                    return next(iter(self._models.values()))
            raise ServeError(
                "request names no model and the server has no default "
                "(start with --model, or pass \"model\" in the payload)"
            )
        with self._models_lock:
            served = self._models.get(spec)
        if served is not None:
            self._model_cache.inc("hit")
            return served
        model, record = self.registry.resolve(spec)
        with self._models_lock:
            warm = self._by_digest.get(record.blob)
            if warm is not None:
                # The spec is new but its blob is already compiled and
                # serving (an alias flip to a published digest): reuse
                # the warm queue + drift monitor instead of recompiling.
                self._models[spec] = warm
                self._models.setdefault(record.spec, warm)
        if warm is not None:
            self._model_cache.inc("warm")
            return warm
        self._model_cache.inc("miss")
        try:
            certificate = self.registry.load_certificate(record)
        except RegistryError:
            # A damaged certificate should not block serving a model
            # whose blob integrity already checked out; the monitor just
            # loses its prediction bound (and preflight reports it).
            certificate = None
        served = self.add_model(record.spec, model, certificate=certificate)
        with self._models_lock:
            self._by_digest[record.blob] = served
            if spec != record.spec:
                # Remember the alias spelling too (cpi-tree@latest -> @3).
                self._models[spec] = served
        return served

    def loaded_models(self) -> List[str]:
        with self._models_lock:
            return sorted({served.label for served in self._models.values()})

    # ------------------------------------------------------------------
    # Admission control and drain accounting
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def inflight(self) -> int:
        with self._inflight_cv:
            return self._inflight

    def begin_request(self) -> None:
        """Admit one work-bearing request or shed it with 503 semantics.

        Raises:
            OverloadError: The server is draining or already at its
                ``max_inflight`` budget; the HTTP layer turns this into
                a 503 with ``Retry-After`` and bumps ``repro_shed_total``.
        """
        if self._draining.is_set():
            raise OverloadError(
                "server is draining; retry against another replica",
                reason="draining",
                retry_after=self.retry_after_s,
            )
        with self._inflight_cv:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                raise OverloadError(
                    f"server is at its in-flight budget "
                    f"({self.max_inflight}); retry shortly",
                    reason="overload",
                    retry_after=self.retry_after_s,
                )
            self._inflight += 1
            self._inflight_gauge.set(value=self._inflight)

    def end_request(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_gauge.set(value=self._inflight)
            self._inflight_cv.notify_all()

    def count_shed(self, reason: str) -> None:
        self._shed.inc(reason)

    def _wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    # ------------------------------------------------------------------
    # Request handling (transport-independent; the HTTP layer is thin)
    # ------------------------------------------------------------------
    def handle_predict(self, payload: Dict) -> Dict:
        served = self.get_model(_optional_str(payload, "model"))
        X, single = _sections_matrix(payload, served.model)
        predictions = served.queue.submit(X, timeout=self.task_timeout)
        document = {
            "schema": SCHEMA,
            "model": served.label,
            "n": int(X.shape[0]),
            "single": single,
            "predictions": [float(p) for p in predictions],
        }
        if served.is_forest:
            document["n_trees"] = len(served.model.estimators_)
            document["refined"] = served.model.refined_ is not None
        else:
            leaf_ids = served.model.compiled_.leaf_ids(X)
            document["leaf_ids"] = [int(i) for i in leaf_ids]
        return document

    def handle_explain(self, payload: Dict) -> Dict:
        served = self.get_model(_optional_str(payload, "model"))
        if served.is_forest:
            raise ServeError(
                f"{served.label!r} is a forest; /explain is a single-tree "
                "endpoint — inspect forest leaves offline via "
                "RefinedForest.describe_leaf"
            )
        model = served.model
        X, single = _sections_matrix(payload, model)
        if not single:
            raise ServeError(
                "/explain takes one \"section\"; batch explanations are "
                "a /predict + per-section /explain loop"
            )
        x = X[0]
        served.drift.observe(X)
        path = []
        for node in model.decision_path(x):
            if isinstance(node, SplitNode):
                value = float(x[node.attribute_index])
                path.append({
                    "attribute": node.attribute_name,
                    "threshold": node.threshold,
                    "value": value,
                    "branch": "left" if value <= node.threshold else "right",
                })
        leaf = model.leaf_for(x)
        contributions = [
            {
                "event": c.event,
                "coefficient": c.coefficient,
                "value": c.value,
                "cycles": c.cycles,
                "fraction": c.fraction,
                "potential_gain_percent": c.potential_gain_percent,
            }
            for c in leaf_contributions(model, x)
        ]
        return {
            "schema": SCHEMA,
            "model": served.label,
            "leaf": int(leaf.leaf_id),
            "leaf_population": int(leaf.n_instances),
            "prediction": float(model.predict(x.reshape(1, -1))[0]),
            "target": model.target_name_,
            "path": path,
            "contributions": contributions,
        }

    def handle_models(self) -> Dict:
        return {
            "schema": SCHEMA,
            "models": [
                dict(record.to_dict(), name=record.name, spec=record.spec)
                for record in self.registry.records()
            ],
            "loaded": self.loaded_models(),
        }

    def handle_healthz(self) -> Dict:
        return {
            "schema": SCHEMA,
            "status": "draining" if self.draining else "ok",
            "models": self.loaded_models(),
            "inflight": self.inflight,
        }

    def render_metrics(self) -> str:
        text = self.metrics.render()
        with self._models_lock:
            served = sorted(
                {s.label: s for s in self._models.values()}.items()
            )
        for label, model in served:
            text += "\n".join(model.drift.render_metrics(label)) + "\n"
        return text

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def start(self) -> "ModelServer":
        """Bind the listening socket and start the request threads."""
        if self._httpd is not None:
            raise ServeError("server already started")
        handler = _make_handler(self)
        httpd = ThreadingHTTPServer(
            (self.host, self.port), handler, bind_and_activate=False
        )
        httpd.daemon_threads = True
        try:
            if self.reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise ServeError(
                        "SO_REUSEPORT is not available on this platform; "
                        "use the router fleet mode instead"
                    )
                httpd.socket.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
            httpd.server_bind()
            httpd.server_activate()
        except BaseException:
            httpd.server_close()
            raise
        self._httpd = httpd
        return self

    @property
    def bound_port(self) -> int:
        """The actual port (meaningful after ``start`` with port 0)."""
        if self._httpd is None:
            raise ServeError("server is not started")
        return int(self._httpd.server_address[1])

    def serve_forever(self) -> None:
        if self._httpd is None:
            raise ServeError("call start() before serve_forever()")
        self._httpd.serve_forever(poll_interval=0.1)

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, examples)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self, drain_timeout: float = 5.0) -> bool:
        """Graceful stop: stop accepting, drain in-flight, stop queues.

        New requests are refused (shed with 503 ``draining``) the moment
        this is called; requests already admitted get up to
        ``drain_timeout`` seconds to finish before batch queues stop.

        Returns:
            ``True`` when every in-flight request finished within the
            drain budget, ``False`` when the timeout expired first.
        """
        self._draining.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        drained = self._wait_idle(max(0.0, drain_timeout))
        with self._models_lock:
            served = {id(s): s for s in self._models.values()}
            self._models.clear()
            self._by_digest.clear()
        for model in served.values():
            model.queue.stop()
        return drained


# ----------------------------------------------------------------------
# Payload helpers
# ----------------------------------------------------------------------
def _optional_str(payload: Dict, key: str) -> Optional[str]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ServeError(f'"{key}" must be a string')
    return value


def _sections_matrix(payload: Dict, model) -> Tuple[np.ndarray, bool]:
    """The (rows, is_single) request matrix, width-checked for the model."""
    if "section" in payload and "sections" in payload:
        raise ServeError('pass either "section" or "sections", not both')
    if "section" in payload:
        raw, single = [payload["section"]], True
    elif "sections" in payload:
        raw, single = payload["sections"], False
        if not isinstance(raw, list) or not raw:
            raise ServeError('"sections" must be a non-empty array of rows')
    else:
        raise ServeError('payload needs a "section" or "sections" field')
    try:
        X = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ServeError(f"sections are not numeric: {exc}") from None
    if X.ndim != 2:
        raise ServeError(
            f"sections must form a 2-D matrix, got shape {X.shape}"
        )
    expected = len(model.attributes_)
    if X.shape[1] != expected:
        raise ServeError(
            f"section width {X.shape[1]} does not match the model's "
            f"{expected} attributes"
        )
    if not np.all(np.isfinite(X)):
        raise ServeError("sections contain NaN or infinite values")
    return X, single


def _make_handler(app: ModelServer):
    """A request-handler class closed over the server instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/" + SCHEMA.rsplit("/", 1)[-1]
        protocol_version = "HTTP/1.1"

        # Silence the default per-request stderr logging; metrics carry
        # the signal.
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        # -- plumbing ---------------------------------------------------
        def _send_json(
            self, status: int, document: Dict,
            extra_headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(document).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error(
            self, status: int, message: str,
            reason: Optional[str] = None,
            retry_after: Optional[float] = None,
        ) -> None:
            document = {"schema": SCHEMA, "error": message, "status": status}
            headers: Dict[str, str] = {}
            if status == 503:
                # Every 503 — deadline, shed, degraded — tells clients
                # when to come back, in whole seconds as RFC 7231 asks.
                delay = retry_after if retry_after is not None \
                    else app.retry_after_s
                headers["Retry-After"] = str(max(1, math.ceil(delay)))
                document["reason"] = reason or "overload"
                document["retry_after"] = int(headers["Retry-After"])
            elif reason is not None:
                document["reason"] = reason
            self._send_json(status, document, headers)

        def _read_payload(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ServeError("request needs a JSON body")
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(f"invalid JSON body: {exc}") from None
            if not isinstance(payload, dict):
                raise ServeError("JSON body must be an object")
            return payload

        def _finish(self, endpoint: str, started: float, status: int) -> None:
            app._requests.inc(endpoint, str(status))
            app._latency.observe(time.perf_counter() - started, endpoint)

        def _dispatch(self, endpoint: str, fn, admit: bool = False) -> None:
            started = time.perf_counter()
            status = 200
            admitted = False
            if admit:
                try:
                    app.begin_request()
                    admitted = True
                except OverloadError as exc:
                    app.count_shed(exc.reason)
                    status = 503
                    try:
                        self._send_error(
                            status, str(exc), reason=exc.reason,
                            retry_after=exc.retry_after,
                        )
                    except (BrokenPipeError, OSError):
                        status = 499
                    self._finish(endpoint, started, status)
                    return
            try:
                # Release the admission slot as soon as evaluation is
                # done — before the response write.  The slot bounds
                # concurrent *evaluation*; holding it through the send
                # lets a serial client's next request race the release
                # and shed spuriously.
                try:
                    document = fn()
                finally:
                    if admitted:
                        app.end_request()
                        admitted = False
            except TaskTimeoutError as exc:
                status = 503
                app.count_shed("deadline")
                self._send_error(status, str(exc), reason="deadline")
            except OverloadError as exc:
                status = 503
                app.count_shed(exc.reason)
                self._send_error(
                    status, str(exc), reason=exc.reason,
                    retry_after=exc.retry_after,
                )
            except (RegistryError,) as exc:
                status = 404
                self._send_error(status, str(exc))
            except (ServeError, DataError) as exc:
                status = 400
                self._send_error(status, str(exc))
            except ReproError as exc:
                status = 500
                self._send_error(status, str(exc))
            except BrokenPipeError:  # client went away mid-write
                status = 499
            except Exception as exc:  # noqa: BLE001 — no traceback pages
                status = 500
                try:
                    self._send_error(status, f"internal error: {exc!r}")
                except OSError:
                    pass
            else:
                try:
                    self._send_json(status, document)
                except BrokenPipeError:
                    status = 499
            self._finish(endpoint, started, status)

        # -- routes -----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — http.server contract
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._dispatch("/healthz", app.handle_healthz)
            elif path == "/models":
                self._dispatch("/models", app.handle_models)
            elif path == "/metrics":
                started = time.perf_counter()
                body = app.render_metrics().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                self._finish("/metrics", started, 200)
            else:
                started = time.perf_counter()
                self._send_error(404, f"unknown path {path!r}")
                self._finish(path, started, 404)

        def do_POST(self) -> None:  # noqa: N802 — http.server contract
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/predict":
                self._dispatch(
                    "/predict",
                    lambda: app.handle_predict(self._read_payload()),
                    admit=True,
                )
            elif path == "/explain":
                self._dispatch(
                    "/explain",
                    lambda: app.handle_explain(self._read_payload()),
                    admit=True,
                )
            else:
                started = time.perf_counter()
                self._send_error(404, f"unknown path {path!r}")
                self._finish(path, started, 404)

    return Handler

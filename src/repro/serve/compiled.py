"""Compiled tree inference: flat-array evaluation of fitted M5' trees.

``M5Prime.predict`` historically routed one row at a time through the
linked :class:`~repro.core.tree.node.Node` structure — fine for reading
a tree, hopeless for serving it.  :func:`compile_tree` flattens a fitted
tree into contiguous numpy arrays (split feature/threshold per node, a
CSR layout of every node's linear-model terms) and
:class:`CompiledTree` evaluates whole batches vectorized, including the
smoothing path.

Bit-identity is a hard contract, not an aspiration: every floating-point
operation happens in exactly the order the interpreted walk performs it
— routing compares ``x[feature] <= threshold`` with the same operands,
leaf models accumulate ``intercept; += coef * x[index]`` term by term
(term order preserved from the :class:`~repro.core.tree.linear.LinearModel`),
and smoothing blends leaf-to-root with the same ``(n*p + k*q)/(n + k)``
sequence.  The property tests in ``tests/test_serve_compiled.py`` assert
``compiled == interpreted`` to the last bit, across JSON round trips
(Python's shortest-repr float serialization is exact, so a model
published to the registry compiles to the same arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tree.node import LeafNode, Node, SplitNode
from repro.errors import ConfigError, DataError, ReproError

__all__ = ["CompiledTree", "compile_tree"]


@dataclass(frozen=True)
class CompiledTree:
    """A fitted M5' tree flattened to contiguous arrays.

    Nodes are numbered in pre-order (root = 0).  Interior nodes carry a
    split (``feature[i] >= 0``); leaves have ``feature[i] == -1`` and a
    positive ``leaf_id``.  Every node's linear model is stored CSR-style:
    node ``i``'s terms occupy ``term_feature[term_offset[i]:term_offset[i+1]]``
    (paired with ``term_coefficient``), preserving the term order of the
    original :class:`~repro.core.tree.linear.LinearModel`.

    Attributes:
        n_features: Training attribute count routing validates against.
        feature: Split attribute index per node, ``-1`` at leaves.
        threshold: Split threshold per node (NaN at leaves).
        left, right: Child node indices, ``-1`` at leaves.
        parent: Parent node index, ``-1`` at the root.
        leaf_id: The paper's LM numbering at leaves, ``0`` elsewhere.
        n_instances: Training population per node (smoothing weights).
        has_model: Whether the node carries a linear model.
        intercept: Model intercept per node (NaN where ``has_model`` is false).
        term_offset: CSR offsets into the term arrays, length ``n_nodes + 1``.
        term_feature: Attribute index of each model term.
        term_coefficient: Slope of each model term.
        max_depth: Longest root-to-leaf edge count (routing iteration bound).
    """

    n_features: int
    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    leaf_id: np.ndarray
    n_instances: np.ndarray
    has_model: np.ndarray
    intercept: np.ndarray
    term_offset: np.ndarray
    term_feature: np.ndarray
    term_coefficient: np.ndarray
    max_depth: int

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int(np.count_nonzero(self.feature < 0))

    # ------------------------------------------------------------------
    def _check_width(self, X: np.ndarray) -> None:
        if X.ndim != 2:
            raise DataError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[1] != self.n_features:
            raise DataError(
                f"X has {X.shape[1]} columns but the compiled tree expects "
                f"{self.n_features}"
            )

    def route(self, X: np.ndarray) -> np.ndarray:
        """Node index of the leaf each row lands in (vectorized walk).

        One vectorized pass per tree level: rows sitting on an interior
        node compare their split attribute against the threshold
        (``<=`` goes left, exactly the interpreted rule) and step down.
        Rows already at a leaf stay put, so ragged trees terminate
        naturally after ``max_depth`` passes.
        """
        X = np.asarray(X, dtype=np.float64)
        self._check_width(X)
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        for _ in range(self.max_depth):
            at_split = np.flatnonzero(self.feature[nodes] >= 0)
            if at_split.size == 0:
                break
            current = nodes[at_split]
            values = X[at_split, self.feature[current]]
            go_left = values <= self.threshold[current]
            nodes[at_split] = np.where(
                go_left, self.left[current], self.right[current]
            )
        return nodes

    def leaf_ids(self, X: np.ndarray) -> np.ndarray:
        """The LM (class) number per row."""
        return self.leaf_id[self.route(X)]

    # ------------------------------------------------------------------
    def _evaluate_node_model(
        self, node: int, X: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Evaluate one node's linear model over selected rows.

        Accumulates ``intercept; += coef * column`` term by term — the
        same operation sequence as
        :meth:`~repro.core.tree.linear.LinearModel.predict_one`, so the
        result is bit-identical to the scalar walk.
        """
        if not self.has_model[node]:
            raise ReproError(
                f"compiled node {node} carries no linear model"
            )
        result = np.full(rows.shape[0], self.intercept[node])
        start, stop = self.term_offset[node], self.term_offset[node + 1]
        for position in range(start, stop):
            result += (
                self.term_coefficient[position]
                * X[rows, self.term_feature[position]]
            )
        return result

    def predict(
        self, X: np.ndarray, smoothing_k: Optional[float] = None
    ) -> np.ndarray:
        """Batch prediction; pass ``smoothing_k`` for the smoothed path.

        Rows are grouped by destination leaf (every row in a group shares
        one root path), the leaf model is evaluated vectorized over the
        group, and — when smoothing — the prediction is blended with each
        ancestor model walking parent pointers to the root:
        ``p = (n_below * p + k * q) / (n_below + k)``.
        """
        if smoothing_k is not None and smoothing_k < 0:
            raise ConfigError(
                f"smoothing constant k must be non-negative, got {smoothing_k}"
            )
        X = np.asarray(X, dtype=np.float64)
        self._check_width(X)
        predictions = np.empty(X.shape[0])
        if X.shape[0] == 0:
            return predictions
        nodes = self.route(X)
        for leaf in np.unique(nodes):
            rows = np.flatnonzero(nodes == leaf)
            if not self.has_model[leaf]:
                raise ReproError(
                    "prediction requires a model at the leaf"
                    if smoothing_k is None
                    else "smoothing requires a model at the leaf"
                )
            group = self._evaluate_node_model(leaf, X, rows)
            if smoothing_k is not None:
                below = int(leaf)
                ancestor = int(self.parent[below])
                while ancestor >= 0:
                    if not self.has_model[ancestor]:
                        raise ReproError(
                            "smoothing requires a model at every ancestor"
                        )
                    blended = self._evaluate_node_model(ancestor, X, rows)
                    weight = float(self.n_instances[below])
                    group = (weight * group + smoothing_k * blended) / (
                        weight + smoothing_k
                    )
                    below = ancestor
                    ancestor = int(self.parent[below])
            predictions[rows] = group
        return predictions


def compile_tree(root: Node, n_features: int) -> CompiledTree:
    """Flatten a fitted tree into a :class:`CompiledTree`.

    Pre-order numbering matches :meth:`Node.iter_nodes`, so node index
    ``i`` here is the ``i``-th node that traversal yields — handy when
    cross-referencing compiled results against the linked structure.
    """
    if n_features < 0:
        raise ConfigError(f"n_features must be non-negative, got {n_features}")
    ordered: List[Node] = list(root.iter_nodes())
    index_of = {id(node): i for i, node in enumerate(ordered)}
    n_nodes = len(ordered)

    feature = np.full(n_nodes, -1, dtype=np.int64)
    threshold = np.full(n_nodes, np.nan)
    left = np.full(n_nodes, -1, dtype=np.int64)
    right = np.full(n_nodes, -1, dtype=np.int64)
    parent = np.full(n_nodes, -1, dtype=np.int64)
    leaf_id = np.zeros(n_nodes, dtype=np.int64)
    n_instances = np.zeros(n_nodes)
    has_model = np.zeros(n_nodes, dtype=bool)
    intercept = np.full(n_nodes, np.nan)
    term_offset = np.zeros(n_nodes + 1, dtype=np.int64)
    term_features: List[int] = []
    term_coefficients: List[float] = []

    for i, node in enumerate(ordered):
        n_instances[i] = float(node.n_instances)
        if isinstance(node, SplitNode):
            if not 0 <= node.attribute_index < n_features:
                raise DataError(
                    f"split attribute index {node.attribute_index} is out "
                    f"of range for {n_features} features"
                )
            if not np.isfinite(node.threshold):
                raise DataError(
                    f"split on attribute index {node.attribute_index} has "
                    f"non-finite threshold {node.threshold!r}; NaN "
                    "comparisons are false, so every row would silently "
                    "route right"
                )
            feature[i] = node.attribute_index
            threshold[i] = node.threshold
            left[i] = index_of[id(node.left)]
            right[i] = index_of[id(node.right)]
            parent[left[i]] = i
            parent[right[i]] = i
        elif isinstance(node, LeafNode):
            leaf_id[i] = node.leaf_id
        else:  # pragma: no cover - Node subclasses are closed
            raise ReproError(f"unknown node type {type(node).__name__}")
        model = node.model
        if model is not None:
            has_model[i] = True
            intercept[i] = model.intercept
            for term_index, coefficient in zip(model.indices, model.coefficients):
                if not 0 <= term_index < n_features:
                    raise DataError(
                        f"model term index {term_index} is out of range "
                        f"for {n_features} features"
                    )
                term_features.append(int(term_index))
                term_coefficients.append(float(coefficient))
        term_offset[i + 1] = len(term_features)

    return CompiledTree(
        n_features=int(n_features),
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        parent=parent,
        leaf_id=leaf_id,
        n_instances=n_instances,
        has_model=has_model,
        intercept=intercept,
        term_offset=term_offset,
        term_feature=np.asarray(term_features, dtype=np.int64),
        term_coefficient=np.asarray(term_coefficients),
        max_depth=root.depth(),
    )

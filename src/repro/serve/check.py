"""Serving preflight: ``repro serve --check``.

Before a server takes traffic it should prove, offline, that it *can*:
the registry manifest parses, the requested model resolves with its
integrity sidecar intact, the tree compiles, the static verifier
(:mod:`repro.verify`) finds no errors and the stored certificate matches
the recomputed one, and the compiled evaluator reproduces the
interpreted per-row walk bit for bit on a probe batch drawn from the
model's own training ranges.  Each probe is a :class:`CheckResult`; any
failure makes the preflight (and the CLI) exit non-zero, so a deploy
script can gate on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import route
from repro.core.tree.smoothing import smoothed_predict
from repro.errors import ReproError
from repro.serve.drift import DriftMonitor
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.verify import verify_forest, verify_model

__all__ = ["CheckResult", "preflight", "render_preflight"]

#: Rows in the compiled-vs-interpreted probe batch.
PROBE_ROWS = 64


@dataclass(frozen=True)
class CheckResult:
    """One preflight probe's outcome."""

    name: str
    ok: bool
    detail: str

    @property
    def status(self) -> str:
        return "ok" if self.ok else "FAIL"


def _probe_matrix(model, rows: int = PROBE_ROWS) -> np.ndarray:
    """Deterministic probe rows spanning each feature's training range."""
    n_features = len(model.attributes_)
    ranges = model.feature_ranges_
    if ranges is None:
        ranges = tuple((0.0, 1.0) for _ in range(n_features))
    # A low-discrepancy sweep: row i places feature j at a phase-shifted
    # point of its [low, high] interval, so probes hit many leaves
    # without needing a random generator.
    grid = np.empty((rows, n_features), dtype=np.float64)
    for j, (low, high) in enumerate(ranges):
        span = high - low
        phases = (np.arange(rows) * (j + 1) * 0.37) % 1.0
        grid[:, j] = low + phases * (span if span > 0 else 1.0)
    return grid


def _check_parity(model: M5Prime, label: str) -> CheckResult:
    """Compiled evaluator vs interpreted walk, bit-for-bit."""
    X = _probe_matrix(model)
    compiled = model.compiled_
    k = model.smoothing_k if model.smoothing else None
    got = compiled.predict(X, smoothing_k=k)
    for i, x in enumerate(X):
        root = model.root_
        assert root is not None
        if k is None:
            leaf = route(root, x)
            if leaf.model is None:
                return CheckResult(
                    "compiled-parity", False,
                    f"{label}: leaf LM{leaf.leaf_id} has no model"
                )
            want = leaf.model.predict_one(x)
        else:
            want = smoothed_predict(root, x, k=k)
        if got[i] != want:
            return CheckResult(
                "compiled-parity", False,
                f"{label}: row {i} compiled={got[i]!r} interpreted={want!r}"
            )
    leaf_ids = compiled.leaf_ids(X)
    for i, x in enumerate(X):
        assert model.root_ is not None
        if int(leaf_ids[i]) != route(model.root_, x).leaf_id:
            return CheckResult(
                "compiled-parity", False,
                f"{label}: row {i} routed to leaf {int(leaf_ids[i])}, "
                f"interpreted walk disagrees"
            )
    return CheckResult(
        "compiled-parity", True,
        f"{label}: {X.shape[0]} probe rows bit-identical"
        + ("" if k is None else f" (smoothing k={k:g})")
    )


def _check_forest_parity(forest, label: str) -> CheckResult:
    """Forest arena vs per-member interpreted walks, bit-for-bit.

    Checks every member row of ``predict_trees`` against that member's
    own interpreted per-row walk, then the ensemble mean against
    stacking the interpreted member predictions — the exact contract
    CONF008 asserts over the conformance corpus.
    """
    X = _probe_matrix(forest)
    compiled = forest.compiled_
    k = forest.smoothing_k if forest.smoothing else None
    per_tree = compiled.predict_trees(X, smoothing_k=k)
    interpreted = np.empty_like(per_tree)
    for t, member in enumerate(forest.estimators_):
        root = member.root_
        assert root is not None
        for i, x in enumerate(X):
            if k is None:
                leaf = route(root, x)
                if leaf.model is None:
                    return CheckResult(
                        "forest-parity", False,
                        f"{label}: tree[{t}] leaf LM{leaf.leaf_id} has "
                        f"no model"
                    )
                interpreted[t, i] = leaf.model.predict_one(x)
            else:
                interpreted[t, i] = smoothed_predict(root, x, k=k)
        if not np.array_equal(per_tree[t], interpreted[t]):
            row = int(np.flatnonzero(per_tree[t] != interpreted[t])[0])
            return CheckResult(
                "forest-parity", False,
                f"{label}: tree[{t}] row {row} compiled="
                f"{per_tree[t, row]!r} interpreted={interpreted[t, row]!r}"
            )
    mean = compiled.predict(X, smoothing_k=k)
    want = interpreted.mean(axis=0)
    if not np.array_equal(mean, want):
        return CheckResult(
            "forest-parity", False,
            f"{label}: ensemble mean diverges from stacked interpreted "
            f"member predictions"
        )
    return CheckResult(
        "forest-parity", True,
        f"{label}: {compiled.n_trees} trees x {X.shape[0]} probe rows "
        f"bit-identical"
        + ("" if k is None else f" (smoothing k={k:g})")
    )


def _check_forest_verify(forest, record: "ModelRecord") -> CheckResult:
    """Structural + per-member verification; forests are uncertified."""
    result = verify_forest(forest)
    if not result.ok:
        findings = "; ".join(d.render() for d in result.diagnostics[:3])
        return CheckResult(
            "verify", False,
            f"{record.spec}: {result.n_errors} verification error(s): "
            f"{findings}"
        )
    warnings = result.report.n_warnings
    return CheckResult(
        "verify", True,
        f"{record.spec}: verified with {warnings} warning(s); "
        "forests are uncertified (no output bound)"
    )


def _check_verify(
    registry: ModelRegistry, model: M5Prime, record: "ModelRecord"
) -> CheckResult:
    """Static verification of the resolved artifact, plus certificate
    agreement: a stored certificate must match what the verifier
    recomputes from the blob — a mismatch means the artifact or its
    certificate was modified after publish."""
    result = verify_model(model)
    if not result.ok:
        findings = "; ".join(d.render() for d in result.diagnostics[:3])
        return CheckResult(
            "verify", False,
            f"{record.spec}: {result.n_errors} verification error(s): "
            f"{findings}"
        )
    try:
        stored = registry.load_certificate(record)
    except ReproError as exc:
        return CheckResult("verify", False, f"{record.spec}: {exc}")
    if stored is not None and stored != result.certificate:
        return CheckResult(
            "verify", False,
            f"{record.spec}: stored certificate {record.certificate!r} "
            "disagrees with the recomputed one; the blob or certificate "
            "changed after publish — republish the model"
        )
    if result.certificate is not None:
        detail = (
            f"{record.spec}: verified; certified output in "
            f"[{result.certificate.output[0]:g}, "
            f"{result.certificate.output[1]:g}] over "
            f"{len(result.certificate.leaves)} leaves"
            + ("" if stored is not None else " (no stored certificate)")
        )
    else:
        warnings = result.report.n_warnings
        detail = (
            f"{record.spec}: verified with {warnings} warning(s); "
            "no certificate (model records no feature_ranges_)"
        )
    return CheckResult("verify", True, detail)


def preflight(
    registry: ModelRegistry,
    model_spec: Optional[str] = None,
) -> List[CheckResult]:
    """Run every preflight probe; never raises, failures are results.

    Args:
        registry: The registry the server would resolve against.
        model_spec: The spec the server would load at startup; ``None``
            checks every published latest version instead.
    """
    results: List[CheckResult] = []
    try:
        names = registry.names()
    except ReproError as exc:
        results.append(CheckResult("manifest", False, str(exc)))
        return results
    results.append(CheckResult(
        "manifest", True,
        f"{registry.manifest_path}: {len(names)} model name(s)"
    ))
    if model_spec is not None:
        specs = [model_spec]
    else:
        specs = [f"{name}@latest" for name in sorted(names)]
        if not specs:
            results.append(CheckResult(
                "resolve", False,
                "registry is empty; publish a model or pass --model"
            ))
            return results
    for spec in specs:
        try:
            model, record = registry.resolve(spec)
        except ReproError as exc:
            results.append(CheckResult("resolve", False, f"{spec}: {exc}"))
            continue
        results.append(CheckResult(
            "resolve", True,
            f"{spec} -> {record.spec} ({record.n_leaves} leaves, "
            f"{len(record.attributes)} features, integrity verified)"
        ))
        is_forest = not isinstance(model, M5Prime)
        try:
            compiled = model.compiled_
        except ReproError as exc:
            results.append(CheckResult(
                "compile", False, f"{record.spec}: {exc}"
            ))
            continue
        trees = f"{compiled.n_trees} trees, " if is_forest else ""
        results.append(CheckResult(
            "compile", True,
            f"{record.spec}: {trees}{compiled.feature.shape[0]} nodes, "
            f"max depth {compiled.max_depth}"
        ))
        if is_forest:
            results.append(_check_forest_verify(model, record))
            results.append(_check_forest_parity(model, record.spec))
        else:
            results.append(_check_verify(registry, model, record))
            results.append(_check_parity(model, record.spec))
        monitor = DriftMonitor(model)
        if monitor.monitors_ranges:
            results.append(CheckResult(
                "drift", True,
                f"{record.spec}: range monitoring armed for "
                f"{len(monitor.attributes)} features, "
                f"{len(monitor._invariants)} invariant(s) applicable"
            ))
        else:
            results.append(CheckResult(
                "drift", False,
                f"{record.spec}: no feature_ranges_ recorded (pre-range "
                "document); out-of-range drift cannot be monitored — refit "
                "and republish"
            ))
    return results


def render_preflight(results: List[CheckResult]) -> str:
    """Terminal rendering, one line per probe plus a verdict."""
    width = max((len(r.name) for r in results), default=4)
    lines = [
        f"  {r.status:<4} {r.name:<{width}}  {r.detail}" for r in results
    ]
    failed = sum(1 for r in results if not r.ok)
    verdict = (
        "preflight passed" if failed == 0
        else f"preflight FAILED ({failed} of {len(results)} probes)"
    )
    return "\n".join(["serve preflight:"] + lines + [verdict])

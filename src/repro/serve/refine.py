"""Refined forests: global leaf re-weighting with prune-and-refit.

A bagged ensemble averages its members with uniform weight ``1/T``.
The RefinedRandomForest idea (see SNIPPETS.md) replaces that uniform
average with a *global* regression: treat every leaf in the forest as a
basis function whose value for a row is the leaf's own linear-model
prediction (and zero when the row lands elsewhere), then solve one
ridge-regularised least-squares problem for a weight per leaf.  Leaves
that the global fit assigns near-zero importance are pruned and the
remaining weights refit — iteratively, ``n_prunings`` times, dropping
the lowest ``prune_pct`` fraction each round.

The refined predictor stays fully inspectable: prediction is
``sum_over_trees(weight[leaf(row, t)] * leaf_model_t(row))``, so every
contribution still traces to one leaf's linear model (exposed via
:meth:`RefinedForest.describe_leaf`) scaled by one published weight.

:meth:`RefinedForest.fit` seeds its candidate set with the uniform
ensemble mean (all weights ``1/T``), evaluates every prune-and-refit
stage on training MAE, and keeps the best — so refinement *never*
increases training MAE relative to the plain forest, a property the
hypothesis suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, DataError, NotFittedError

if TYPE_CHECKING:
    from repro.baselines.bagging import BaggedM5
    from repro.core.dataset import Dataset
    from repro.serve.forest import CompiledForest

__all__ = ["RefinedWeights", "RefinedForest", "refined_predict"]


@dataclass(frozen=True)
class RefinedWeights:
    """The published outcome of a refinement pass.

    Attributes:
        weights: Per-leaf-column weight, length ``total_leaves``.
            Pruned columns keep their last fitted value but are masked
            by ``active``.
        active: Per-leaf-column liveness mask; pruned leaves contribute
            exactly zero to refined predictions.
        ridge: The L2 regulariser the global fit used.
        prune_pct: Fraction of active leaves dropped per pruning round.
        n_prunings: Rounds requested (the selected candidate may come
            from an earlier round).
        train_mae: Training MAE of the selected candidate.
    """

    weights: np.ndarray
    active: np.ndarray
    ridge: float
    prune_pct: float
    n_prunings: int
    train_mae: float

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self.active))


def refined_predict(
    compiled: "CompiledForest",
    refined: RefinedWeights,
    X: np.ndarray,
    smoothing_k: Optional[float] = None,
) -> np.ndarray:
    """Predict with per-leaf weights instead of the uniform mean.

    Each row's prediction is the weighted sum of its ``n_trees`` leaf
    predictions, with pruned leaves contributing zero.  The per-leaf
    predictions come from the same bit-exact ``predict_trees`` pass the
    uniform ensemble uses.
    """
    per_tree = compiled.predict_trees(X, smoothing_k=smoothing_k)
    columns = compiled.leaf_columns(X)
    weights = np.where(refined.active[columns], refined.weights[columns], 0.0)
    return (per_tree.T * weights).sum(axis=1)


def _column_design(
    compiled: "CompiledForest", X: np.ndarray, smoothing_k: Optional[float]
) -> np.ndarray:
    """Dense design matrix: ``Z[i, col]`` = leaf ``col``'s prediction for
    row ``i`` when the row lands there, else zero."""
    per_tree = compiled.predict_trees(X, smoothing_k=smoothing_k)
    columns = compiled.leaf_columns(X)
    n = X.shape[0]
    design = np.zeros((n, compiled.total_leaves))
    design[np.arange(n)[:, None], columns] = per_tree.T
    return design


class RefinedForest:
    """Global ridge re-weighting plus iterative prune-and-refit.

    Args:
        forest: A fitted :class:`~repro.baselines.bagging.BaggedM5`.
        ridge: L2 regulariser for the global leaf regression; must be
            positive (keeps the normal equations well-posed even when a
            leaf column is constant over the training rows).
        prune_pct: Fraction of remaining active leaves pruned each
            round, in ``[0, 1)``.
        n_prunings: Prune-and-refit rounds to evaluate.

    After :meth:`fit`, ``forest.refined_`` holds the selected
    :class:`RefinedWeights` (so ``forest.predict`` serves refined
    outputs) and :attr:`history_` records every candidate stage.
    """

    def __init__(
        self,
        forest: "BaggedM5",
        ridge: float = 1e-3,
        prune_pct: float = 0.1,
        n_prunings: int = 2,
    ) -> None:
        if ridge <= 0:
            raise ConfigError(f"ridge must be positive, got {ridge}")
        if not 0 <= prune_pct < 1:
            raise ConfigError(
                f"prune_pct must be in [0, 1), got {prune_pct}"
            )
        if n_prunings < 0:
            raise ConfigError(
                f"n_prunings must be non-negative, got {n_prunings}"
            )
        if not getattr(forest, "estimators_", ()):
            raise NotFittedError("RefinedForest requires a fitted ensemble")
        self.forest = forest
        self.ridge = float(ridge)
        self.prune_pct = float(prune_pct)
        self.n_prunings = int(n_prunings)
        self.refined_: Optional[RefinedWeights] = None
        self.history_: List[Dict[str, Any]] = []

    def _solve(
        self, design: np.ndarray, y: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Ridge solve over active columns; weights elsewhere are zero."""
        columns = np.flatnonzero(active)
        basis = design[:, columns]
        gram = basis.T @ basis + self.ridge * np.eye(columns.size)
        try:
            solution = np.linalg.solve(gram, basis.T @ y)
        except np.linalg.LinAlgError:
            solution = np.linalg.lstsq(gram, basis.T @ y, rcond=None)[0]
        weights = np.zeros(design.shape[1])
        weights[columns] = solution
        return weights

    def fit(
        self,
        data: Union["Dataset", np.ndarray],
        y: Optional[np.ndarray] = None,
    ) -> "RefinedForest":
        """Run the re-weighting pass and attach the best candidate.

        Accepts a :class:`Dataset` or an ``(X, y)`` pair.  Candidate 0
        is the uniform ensemble mean; each subsequent candidate prunes
        the ``prune_pct`` lowest-importance active leaves (importance =
        ``|weight| * column L2 norm`` over the training design) and
        refits.  The candidate with the lowest training MAE wins, which
        by construction is never worse than the uniform mean.
        """
        from repro.datasets.unpack import unpack_training_data

        X, target, _, _ = unpack_training_data(data, y)
        X = np.asarray(X, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if X.shape[0] == 0:
            raise DataError("refinement requires at least one training row")

        compiled = self.forest.compiled_
        smoothing_k = (
            self.forest.smoothing_k if self.forest.smoothing else None
        )
        design = _column_design(compiled, X, smoothing_k)
        total = compiled.total_leaves
        n_trees = compiled.n_trees

        def mae(weights: np.ndarray, active: np.ndarray) -> float:
            masked = np.where(active, weights, 0.0)
            predictions = design @ masked
            return float(np.mean(np.abs(predictions - target)))

        candidates: List[Tuple[float, np.ndarray, np.ndarray, str]] = []
        uniform = np.full(total, 1.0 / n_trees)
        all_active = np.ones(total, dtype=bool)
        candidates.append((mae(uniform, all_active), uniform, all_active, "uniform"))

        active = all_active.copy()
        weights = self._solve(design, target, active)
        candidates.append((mae(weights, active), weights, active.copy(), "refit-0"))
        column_norms = np.sqrt((design * design).sum(axis=0))
        for step in range(self.n_prunings):
            live = np.flatnonzero(active)
            n_prune = max(1, int(round(self.prune_pct * live.size)))
            if live.size - n_prune < 1:
                break
            importance = np.abs(weights[live]) * column_norms[live]
            drop = live[np.argsort(importance, kind="stable")[:n_prune]]
            active[drop] = False
            weights = self._solve(design, target, active)
            candidates.append(
                (mae(weights, active), weights, active.copy(), f"refit-{step + 1}")
            )

        best_index = int(np.argmin([c[0] for c in candidates]))
        best_mae, best_weights, best_active, _ = candidates[best_index]
        self.history_ = [
            {
                "stage": stage,
                "n_active": int(np.count_nonzero(cand_active)),
                "train_mae": cand_mae,
                "selected": index == best_index,
            }
            for index, (cand_mae, _, cand_active, stage) in enumerate(candidates)
        ]
        self.refined_ = RefinedWeights(
            weights=best_weights,
            active=best_active,
            ridge=self.ridge,
            prune_pct=self.prune_pct,
            n_prunings=self.n_prunings,
            train_mae=best_mae,
        )
        self.forest.refined_ = self.refined_
        return self

    def describe_leaf(self, column: int) -> Dict[str, Any]:
        """One leaf's full story: its linear model, weight, liveness."""
        if self.refined_ is None:
            raise NotFittedError("refinement has not been fitted")
        summary = self.forest.compiled_.leaf_summary(column)
        attributes = self.forest.attributes_
        summary["terms"] = [
            (attributes[index] if index < len(attributes) else index, value)
            for index, value in summary["terms"]
        ]
        summary["weight"] = float(self.refined_.weights[column])
        summary["active"] = bool(self.refined_.active[column])
        return summary

"""Forest persistence: fitted ensembles to and from JSON.

The on-disk forest document wraps one :func:`model_to_dict` payload per
member (in ``estimators_`` order — the arena-offset contract) under a
``repro-forest`` envelope carrying the ensemble parameters, the
full-training-matrix ``feature_ranges`` and, when a refinement pass has
run, the per-leaf ``refined`` weights.  Top-level ``attributes`` and
``target`` mirror the single-tree schema so registry tooling (SERVE004
and friends) audits both kinds the same way.

:func:`load_any_model` dispatches on the ``format`` key so callers that
store both kinds behind one path — the artifact cache, the registry,
``repro verify --model`` — need no out-of-band type tag.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.tree.m5 import M5Prime
from repro.core.tree.serialize import model_from_dict, model_to_dict
from repro.errors import NotFittedError, ParseError

PathLike = Union[str, Path]

#: Bump when the forest on-disk layout changes incompatibly.
FOREST_FORMAT_VERSION = 1

__all__ = [
    "forest_to_dict",
    "forest_from_dict",
    "save_forest",
    "load_forest",
    "loads_forest",
    "load_any_model",
    "loads_any_model",
    "store_any_model",
]


def forest_to_dict(forest) -> Dict[str, Any]:
    """Serialize a fitted :class:`BaggedM5` to JSON-compatible structures."""
    members = list(getattr(forest, "estimators_", ()))
    if not members:
        raise NotFittedError("cannot serialize an unfitted forest")
    refined = getattr(forest, "refined_", None)
    return {
        "format": "repro-forest",
        "version": FOREST_FORMAT_VERSION,
        "n_trees": len(members),
        "attributes": list(forest.attributes_),
        "target": forest.target_name_,
        "params": {
            "n_estimators": forest.n_estimators,
            "min_instances": forest.min_instances,
            "sample_fraction": forest.sample_fraction,
            "seed": forest.seed if isinstance(forest.seed, int) else 0,
        },
        "feature_ranges": (
            [[low, high] for low, high in forest.feature_ranges_]
            if forest.feature_ranges_ is not None
            else None
        ),
        "trees": [model_to_dict(member) for member in members],
        "refined": (
            None
            if refined is None
            else {
                "ridge": refined.ridge,
                "prune_pct": refined.prune_pct,
                "n_prunings": refined.n_prunings,
                "train_mae": refined.train_mae,
                "weights": [float(w) for w in refined.weights],
                "active": [int(a) for a in refined.active],
            }
        ),
    }


def forest_from_dict(payload: Dict[str, Any]):
    """Rebuild a fitted forest from :func:`forest_to_dict` output.

    Structural lies about the ensemble raise :class:`ParseError` before
    any member tree is trusted: a ``trees`` list disagreeing with
    ``n_trees`` (tree-count mismatch), members whose attributes disagree
    with the envelope, and refined weight vectors whose length does not
    match the total leaf count (offset mismatch against the arena).
    """
    from repro.baselines.bagging import BaggedM5

    try:
        if payload.get("format") != "repro-forest":
            raise ParseError("not a repro-forest document")
        if payload.get("version") != FOREST_FORMAT_VERSION:
            raise ParseError(
                f"unsupported forest format version {payload.get('version')!r}"
            )
        declared = int(payload["n_trees"])
        trees = payload["trees"]
        if not isinstance(trees, list) or len(trees) != declared:
            found = len(trees) if isinstance(trees, list) else trees
            raise ParseError(
                f"tree-count mismatch: document declares {declared} trees "
                f"but carries {found!r}"
            )
        if declared < 1:
            raise ParseError("a forest needs at least one tree")
        params = payload["params"]
        forest = BaggedM5(
            n_estimators=int(params["n_estimators"]),
            min_instances=int(params["min_instances"]),
            sample_fraction=float(params["sample_fraction"]),
            seed=int(params["seed"]),
        )
        forest.attributes_ = tuple(payload["attributes"])
        forest.target_name_ = str(payload["target"])
        members = []
        for index, document in enumerate(trees):
            member = model_from_dict(document)
            if member.attributes_ != forest.attributes_:
                raise ParseError(
                    f"tree {index} attributes disagree with the forest "
                    f"envelope"
                )
            members.append(member)
        forest.estimators_ = members
        ranges = payload.get("feature_ranges")
        if ranges is not None:
            if len(ranges) != len(forest.attributes_):
                raise ParseError(
                    f"feature_ranges has {len(ranges)} entries for "
                    f"{len(forest.attributes_)} attributes"
                )
            forest.feature_ranges_ = tuple(
                (float(low), float(high)) for low, high in ranges
            )
        refined = payload.get("refined")
        if refined is not None:
            import numpy as np

            from repro.serve.refine import RefinedWeights

            total_leaves = sum(member.n_leaves for member in members)
            weights = np.asarray(
                [float(w) for w in refined["weights"]], dtype=np.float64
            )
            active = np.asarray(
                [bool(a) for a in refined["active"]], dtype=bool
            )
            if weights.shape[0] != total_leaves or active.shape[0] != total_leaves:
                raise ParseError(
                    f"refined-weights offset mismatch: {weights.shape[0]} "
                    f"weights / {active.shape[0]} active flags for "
                    f"{total_leaves} forest leaves"
                )
            forest.refined_ = RefinedWeights(
                weights=weights,
                active=active,
                ridge=float(refined["ridge"]),
                prune_pct=float(refined["prune_pct"]),
                n_prunings=int(refined["n_prunings"]),
                train_mae=float(refined["train_mae"]),
            )
        forest.fitted_ = True
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        raise ParseError(f"malformed forest document: {exc}") from None
    return forest


def save_forest(forest, path: PathLike) -> None:
    """Write a fitted forest to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(forest_to_dict(forest), handle, indent=1)


def load_forest(path: PathLike):
    """Read a fitted forest from a JSON file (ParseError names the path)."""
    return loads_forest(_read_text(path), source=str(path))


def loads_forest(text: str, source: Optional[str] = None):
    """Parse a forest JSON string; ``source`` prefixes error messages."""
    prefix = f"{source}: " if source else ""
    payload = _parse_object(text, prefix)
    try:
        return forest_from_dict(payload)
    except ParseError as exc:
        if prefix:
            raise ParseError(prefix + str(exc)) from None
        raise


def load_any_model(path: PathLike):
    """Load a tree or a forest, dispatching on the document's format."""
    return loads_any_model(_read_text(path), source=str(path))


def loads_any_model(text: str, source: Optional[str] = None):
    """String form of :func:`load_any_model`."""
    prefix = f"{source}: " if source else ""
    payload = _parse_object(text, prefix)
    kind = payload.get("format")
    if kind == "repro-forest":
        try:
            return forest_from_dict(payload)
        except ParseError as exc:
            if prefix:
                raise ParseError(prefix + str(exc)) from None
            raise
    if kind == "repro-m5prime":
        try:
            return model_from_dict(payload)
        except ParseError as exc:
            if prefix:
                raise ParseError(prefix + str(exc)) from None
            raise
    raise ParseError(
        f"{prefix}unknown model format {kind!r} (expected repro-m5prime "
        f"or repro-forest)"
    )


def store_any_model(model) -> Dict[str, Any]:
    """The JSON document for a tree or a forest (type-dispatched)."""
    if isinstance(model, M5Prime):
        return model_to_dict(model)
    if hasattr(model, "estimators_"):
        return forest_to_dict(model)
    raise NotFittedError(
        f"cannot serialize object of type {type(model).__name__}"
    )


def _read_text(path: PathLike) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except UnicodeDecodeError as exc:
        raise ParseError(f"{path}: not valid UTF-8 text: {exc}") from None


def _parse_object(text: str, prefix: str) -> Dict[str, Any]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"{prefix}invalid JSON: {exc}") from None
    except RecursionError:
        raise ParseError(
            f"{prefix}invalid JSON: nesting exceeds the recursion limit"
        ) from None
    if not isinstance(payload, dict):
        raise ParseError(f"{prefix}expected a JSON object at top level")
    return payload

"""Request coalescing: many small requests, one compiled evaluation.

The compiled predictor's fixed cost (routing setup, per-leaf grouping)
amortizes over rows, so a server handling many concurrent single-section
requests wants to score them together.  :class:`BatchQueue` runs one
consumer thread that drains the queue into a batch — up to
``max_batch`` rows, waiting at most ``max_wait_s`` after the first
arrival — evaluates once, and scatters results back to the waiting
handler threads.

Deadlines follow the :class:`~repro.resilience.RunPolicy` timeout
semantics: a request carries a wall-clock budget, a request still queued
when its budget expires fails with
:class:`~repro.errors.TaskTimeoutError` (the HTTP layer maps it to 503),
and an expired request never consumes evaluator time.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigError, ServeError, TaskTimeoutError

__all__ = ["BatchQueue"]


@dataclass
class _Pending:
    """One enqueued request and its rendezvous state."""

    rows: np.ndarray
    deadline: Optional[float]
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[np.ndarray] = None
    error: Optional[BaseException] = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class BatchQueue:
    """Coalesce concurrent predict calls into batched evaluations.

    Args:
        evaluate: Batch evaluator, ``(n, d) array -> (n,) array``.
        max_batch: Row budget per evaluation.
        max_wait_s: How long the consumer holds the first request open
            for stragglers.  Zero means "whatever is already queued".
        observe_batch: Optional callback receiving each evaluated batch's
            row count (feeds the batch-size histogram).
    """

    def __init__(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        observe_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ConfigError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.evaluate = evaluate
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.observe_batch = observe_batch
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "BatchQueue":
        if self._thread is not None:
            raise ServeError("batch queue already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain_timeout: float = 2.0) -> None:
        """Stop the consumer; queued requests fail fast with ServeError."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=drain_timeout)
            self._thread = None
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending.error = ServeError("server shutting down")
            pending.done.set()

    # ------------------------------------------------------------------
    def submit(
        self, rows: np.ndarray, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Score ``rows`` (2-D) through the next batch; blocks until done.

        Raises:
            TaskTimeoutError: The per-request budget elapsed before the
                result was ready (whether queued or mid-evaluation).
            ServeError: The queue is stopped.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if self._thread is None:
            raise ServeError("batch queue is not running")
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = _Pending(rows=rows, deadline=deadline)
        self._queue.put(pending)
        wait = None if timeout is None else timeout + 0.05
        if not pending.done.wait(timeout=wait):
            raise TaskTimeoutError(
                f"predict request exceeded its {timeout:.3g}s budget"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    # ------------------------------------------------------------------
    def _collect(self) -> List[_Pending]:
        """Block for the first request, then drain stragglers."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return []
        batch = [first]
        n_rows = first.rows.shape[0]
        hold_until = time.monotonic() + self.max_wait_s
        while n_rows < self.max_batch:
            remaining = hold_until - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            batch.append(item)
            n_rows += item.rows.shape[0]
        return batch

    def _run(self) -> None:
        while not self._stop.is_set():
            batch = self._collect()
            if not batch:
                continue
            now = time.monotonic()
            live: List[_Pending] = []
            for pending in batch:
                if pending.expired(now):
                    pending.error = TaskTimeoutError(
                        "predict request expired while queued"
                    )
                    pending.done.set()
                else:
                    live.append(pending)
            if not live:
                continue
            stacked = (
                live[0].rows if len(live) == 1
                else np.vstack([p.rows for p in live])
            )
            if self.observe_batch is not None:
                self.observe_batch(int(stacked.shape[0]))
            try:
                results = self.evaluate(stacked)
            except BaseException as exc:  # noqa: BLE001 — routed to callers
                for pending in live:
                    pending.error = exc
                    pending.done.set()
                continue
            offset = 0
            for pending in live:
                n = pending.rows.shape[0]
                pending.result = np.asarray(results)[offset:offset + n]
                offset += n
                pending.done.set()

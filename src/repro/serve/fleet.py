"""The serving fleet: N worker processes behind one front door.

One :class:`~repro.serve.server.ModelServer` is a replica; this module
makes it a *service*.  A :class:`ServingFleet` forks ``workers``
processes, each running a full ``ModelServer`` with its model resolved
and compiled **before** it reports ready (a warm
:class:`~repro.serve.compile.CompiledTree` cache keyed on registry blob
digests, so alias flips to an already-loaded digest never recompile).
A :class:`~repro.serve.supervisor.Supervisor` probes every worker's
``/healthz``, restarts crashed or wedged ones under
:class:`~repro.resilience.retry.RetryPolicy` backoff, and trips its
:class:`~repro.resilience.breaker.CircuitBreaker` into degraded mode
when restarts keep failing.

Two topologies (``FleetConfig.mode``):

* ``router`` (default, the one the chaos SLO is stated for) — workers
  bind ephemeral ports and a front **router** owns the public port.
  The router is an HTTP-aware reverse proxy: it buffers each request,
  forwards it to a healthy worker over a fresh connection, buffers the
  response, and relays it.  Because predictions are pure, a transport
  failure mid-forward (the worker died) is retried on the next healthy
  worker — the client never sees a connection reset, only complete
  responses.  When no worker is in rotation the router sheds with the
  standard 503 envelope (``reason: degraded``) and ``Retry-After``.
* ``reuseport`` — every worker binds the *same* public port with
  ``SO_REUSEPORT`` and the kernel balances connections.  No router hop,
  but no retry-on-crash either (a killed worker's accepted connections
  die with it), and supervision falls back to process liveness.  Use it
  where the extra hop matters more than the crash guarantees.

Worker lifecycle: SIGTERM means drain — stop accepting, finish
in-flight work within ``drain_timeout_s``, exit 0 — so both the
supervisor's graceful stop and an orchestrator's rolling update are
lossless.  Zero-downtime model rollout = flip a registry alias, then
:meth:`ServingFleet.rollout` rolls workers one at a time (spawn
replacement, wait healthy, swap into rotation, drain the old one); the
rotation never dips below its complement.

Chaos: the serve-tier ``REPRO_FAULTS`` sites live here —
``worker_crash`` hard-kills a worker mid-request (``os._exit``),
``slow_handler`` stalls a request past its deadline, and
``registry_read`` (in :mod:`repro.serve.registry`) breaks worker
startup.  All are deterministic, so the availability SLO is assertable
in CI.
"""

from __future__ import annotations

import http.client
import json
import math
import multiprocessing
import os
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import FleetError, ReproError, TaskTimeoutError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import active_plan
from repro.resilience.retry import RetryPolicy
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.server import SCHEMA, ModelServer
from repro.serve.supervisor import Supervisor

__all__ = ["FleetConfig", "ServingFleet", "WorkerHandle", "MODES"]

#: Valid ``FleetConfig.mode`` values.
MODES = ("router", "reuseport")


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet (and each forked worker) needs to run.

    Serializes to/from a flat JSON object (``--fleet-config``); the
    FLEET lint family audits such files statically, and
    :meth:`from_dict` rejects unknown keys so a typo cannot silently
    fall back to a default.
    """

    model: Optional[str] = None
    workers: int = 4
    host: str = "127.0.0.1"
    port: int = 8377
    mode: str = "router"
    registry_dir: Optional[str] = None
    max_batch: int = 256
    max_wait_s: float = 0.002
    task_timeout: Optional[float] = None
    max_inflight: Optional[int] = 64
    retry_after_s: float = 1.0
    drain_timeout_s: float = 5.0
    probe_interval_s: float = 0.5
    probe_timeout_s: float = 1.0
    startup_timeout_s: float = 15.0
    router_timeout_s: float = 10.0
    restart_base_delay_s: float = 0.2
    restart_max_delay_s: float = 5.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise FleetError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in MODES:
            raise FleetError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if not 0 <= self.port <= 65535:
            raise FleetError(f"port must lie in [0, 65535], got {self.port}")
        if self.mode == "reuseport" and self.port == 0:
            raise FleetError(
                "reuseport mode needs a fixed port; port 0 cannot be shared"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise FleetError(
                f"max_inflight must be >= 1 or null, got {self.max_inflight}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise FleetError(
                f"task_timeout must be positive or null, got "
                f"{self.task_timeout}"
            )
        for name in (
            "probe_interval_s", "probe_timeout_s", "startup_timeout_s",
            "router_timeout_s", "retry_after_s",
        ):
            value = getattr(self, name)
            if not value > 0:
                raise FleetError(f"{name} must be positive, got {value}")
        for name in (
            "drain_timeout_s", "restart_base_delay_s", "restart_max_delay_s",
            "breaker_cooldown_s",
        ):
            value = getattr(self, name)
            if value < 0:
                raise FleetError(f"{name} must be >= 0, got {value}")
        if self.breaker_threshold < 1:
            raise FleetError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(document: Dict[str, Any]) -> "FleetConfig":
        known = {f.name for f in fields(FleetConfig)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise FleetError(
                f"unknown fleet config key(s): {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        return FleetConfig(**document)


@dataclass
class WorkerHandle:
    """One live worker process as the supervisor sees it."""

    index: int
    process: Any  # multiprocessing.Process (ctx-specific class)
    pid: int
    port: int

    def describe(self) -> Dict[str, Any]:
        return {"pid": self.pid, "port": self.port}


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _FleetWorkerServer(ModelServer):
    """A worker's ModelServer with the serve-tier chaos sites armed."""

    def __init__(self, *args: Any, worker_index: int = 0, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._worker_index = worker_index

    def handle_predict(self, payload: Dict) -> Dict:
        plan = active_plan()
        if plan is not None:
            key = f"worker-{self._worker_index}"
            if plan.should_fail("worker_crash", key):
                # A hard crash mid-request: no cleanup, no goodbye —
                # exactly what the router's retry and the supervisor's
                # restart path must absorb.
                os._exit(1)
            if plan.should_fail("slow_handler", key):
                stall = self.task_timeout if self.task_timeout else 0.05
                time.sleep(stall)
                raise TaskTimeoutError(
                    "request stalled past its deadline (injected)"
                )
        return super().handle_predict(payload)


def _worker_main(config_dict: Dict[str, Any], index: int, conn: Any) -> None:
    """Entry point of a forked worker process."""
    config = FleetConfig.from_dict(config_dict)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # The parent coordinates shutdown order over SIGTERM; a terminal
    # Ctrl-C must not kill workers before the router stops routing.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    registry = ModelRegistry(
        Path(config.registry_dir) if config.registry_dir else None
    )
    try:
        server = _FleetWorkerServer(
            worker_index=index,
            registry=registry,
            default_model=config.model,
            host=config.host,
            port=config.port if config.mode == "reuseport" else 0,
            max_batch=config.max_batch,
            max_wait_s=config.max_wait_s,
            task_timeout=config.task_timeout,
            max_inflight=config.max_inflight,
            retry_after_s=config.retry_after_s,
            reuse_port=config.mode == "reuseport",
        )
        if config.model is not None:
            # Resolve and compile before reporting ready: a worker in
            # rotation is a *warm* worker.
            server.get_model(config.model)
        server.start()
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        os._exit(1)
    conn.send(("ready", os.getpid(), server.bound_port))
    conn.close()
    server.serve_in_background()
    stop.wait()
    server.shutdown(drain_timeout=config.drain_timeout_s)
    sys.exit(0)


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------
class ServingFleet:
    """Supervised multi-process serving behind one address.

    Args:
        config: The fleet topology and worker settings.
        on_event: Optional sink for supervision events (the CLI passes
            a stderr printer); events are also kept in a ring visible
            on ``/fleet/status``.
    """

    def __init__(
        self,
        config: FleetConfig,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config
        self.on_event = on_event
        self.registry = ModelRegistry(
            Path(config.registry_dir) if config.registry_dir else None
        )
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.supervisor = Supervisor(
            spawn=self._spawn_worker,
            probe=self._probe_worker,
            stop=self._stop_worker,
            n_workers=config.workers,
            retry=RetryPolicy(
                max_attempts=1,
                base_delay=config.restart_base_delay_s,
                max_delay=config.restart_max_delay_s,
                seed=config.seed,
            ),
            breaker=CircuitBreaker(
                failure_threshold=config.breaker_threshold,
                cooldown_s=config.breaker_cooldown_s,
            ),
            startup_timeout=config.startup_timeout_s,
            describe=lambda handle: handle.describe(),
        )
        self.metrics = MetricsRegistry()
        self._router_requests = self.metrics.counter(
            "repro_router_requests_total",
            "Requests through the fleet router, by endpoint and status.",
            ("endpoint", "status"),
        )
        self._router_retries = self.metrics.counter(
            "repro_router_retries_total",
            "Forward attempts retried on another worker after a "
            "transport failure.",
        )
        self._shed = self.metrics.counter(
            "repro_shed_total",
            "Requests the router refused outright, by reason.",
            ("reason",),
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._stop = threading.Event()
        self._supervise_thread: Optional[threading.Thread] = None
        self._events: Deque[str] = deque(maxlen=50)
        self._events_lock = threading.Lock()
        self._rr = 0
        self._rr_lock = threading.Lock()

    # -- event plumbing -------------------------------------------------
    def _record_events(self, events: List[str]) -> None:
        if not events:
            return
        with self._events_lock:
            self._events.extend(events)
        if self.on_event is not None:
            for event in events:
                self.on_event(event)

    # -- supervisor callables ------------------------------------------
    def _spawn_worker(self, index: int) -> WorkerHandle:
        parent, child = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main,
            args=(self.config.to_dict(), index, child),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        process.start()
        child.close()
        try:
            if not parent.poll(self.config.startup_timeout_s):
                raise FleetError(
                    f"worker {index} sent no ready signal within "
                    f"{self.config.startup_timeout_s:g}s"
                )
            try:
                message = parent.recv()
            except EOFError:
                process.join(0.5)
                raise FleetError(
                    f"worker {index} died during startup "
                    f"(exit code {process.exitcode})"
                ) from None
            if message[0] != "ready":
                raise FleetError(
                    f"worker {index} failed to start: {message[1]}"
                )
        except FleetError:
            if process.is_alive():
                process.terminate()
                process.join(1.0)
            raise
        finally:
            parent.close()
        _, pid, port = message
        return WorkerHandle(index=index, process=process, pid=pid, port=port)

    def _probe_worker(self, handle: WorkerHandle) -> bool:
        if not handle.process.is_alive():
            return False
        if self.config.mode == "reuseport":
            # Workers share the public port; a targeted HTTP probe is
            # impossible, so supervision is process liveness only.
            return True
        try:
            conn = http.client.HTTPConnection(
                self.config.host, handle.port,
                timeout=self.config.probe_timeout_s,
            )
            try:
                conn.request("GET", "/healthz",
                             headers={"Connection": "close"})
                response = conn.getresponse()
                response.read()
                return response.status == 200
            finally:
                conn.close()
        except (OSError, http.client.HTTPException):
            return False

    def _stop_worker(self, handle: WorkerHandle, graceful: bool) -> None:
        process = handle.process
        if graceful and process.is_alive():
            try:
                os.kill(handle.pid, signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass
            process.join(self.config.drain_timeout_s + 2.0)
        if process.is_alive():
            process.terminate()
            process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServingFleet":
        if self._supervise_thread is not None:
            raise FleetError("fleet already started")
        self.supervisor.start()
        if self.config.mode == "router":
            handler = _make_router_handler(self)
            self._httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), handler
            )
            self._httpd.daemon_threads = True
        self._stop.clear()
        self._supervise_thread = threading.Thread(
            target=self._supervise_loop, name="repro-supervisor", daemon=True
        )
        self._supervise_thread.start()
        self._record_events([
            f"fleet up: {self.config.workers} worker(s), "
            f"mode {self.config.mode}, port {self.bound_port}"
        ])
        return self

    def _supervise_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval_s):
            try:
                self._record_events(self.supervisor.tick())
            except Exception as exc:  # noqa: BLE001 — loop must survive
                self._record_events([f"supervision error: {exc}"])

    @property
    def bound_port(self) -> int:
        if self.config.mode == "reuseport":
            return self.config.port
        if self._httpd is None:
            raise FleetError("fleet is not started")
        return int(self._httpd.server_address[1])

    def serve_forever(self) -> None:
        if self.config.mode == "router":
            if self._httpd is None:
                raise FleetError("call start() before serve_forever()")
            self._httpd.serve_forever(poll_interval=0.1)
        else:
            self._stop.wait()

    def serve_in_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="repro-fleet", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop routing, stop supervising, drain every worker."""
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        thread = self._supervise_thread
        if thread is not None:
            thread.join(timeout=self.config.probe_interval_s + 2.0)
            self._supervise_thread = None
        self.supervisor.stop_all(graceful=True)

    # -- control operations --------------------------------------------
    def rollout(
        self, name: str, alias: str, version: Optional[int] = None
    ) -> List[str]:
        """Flip a registry alias, then roll workers with zero downtime.

        Workers resolve their model at startup, so replacing each one
        (one at a time, replacement healthy before the old drains) is
        what actually moves traffic to the new version.  The rotation
        never loses a slot; the router keeps serving throughout.
        """
        self.registry.alias(name, alias, version=version)
        events = [f"alias {name}@{alias} -> " + (
            f"version {version}" if version is not None else "latest"
        )]
        events += self.supervisor.rolling_restart()
        self._record_events(events)
        return events

    def status(self) -> Dict[str, Any]:
        document = self.supervisor.status()
        with self._events_lock:
            events = list(self._events)
        document.update({
            "schema": SCHEMA,
            "mode": self.config.mode,
            "port": self.bound_port,
            "model": self.config.model,
            "events": events,
        })
        return document

    # -- routing --------------------------------------------------------
    def _rotation(self) -> List[WorkerHandle]:
        """Healthy workers, round-robin rotated per call."""
        handles = self.supervisor.healthy_handles()
        if not handles:
            return []
        with self._rr_lock:
            start = self._rr
            self._rr += 1
        k = start % len(handles)
        return handles[k:] + handles[:k]

    def forward(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Proxy one buffered request to the first worker that answers.

        Transport failures (the worker died or hung) move on to the
        next healthy worker — safe because predictions are pure — so a
        mid-request worker crash costs the client latency, never a
        reset.  Whatever HTTP response a worker produces (including its
        503 shed envelopes) is relayed verbatim.

        Raises:
            FleetError: No worker is in rotation, or every one failed
                at the transport level; the router sheds the request.
        """
        rotation = self._rotation()
        if not rotation:
            raise FleetError("no healthy worker in rotation")
        last_error: Optional[Exception] = None
        for attempt, handle in enumerate(rotation):
            if attempt > 0:
                self._router_retries.inc()
            try:
                return self._forward_once(handle, method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                continue
        raise FleetError(
            f"every healthy worker failed at the transport level "
            f"({last_error})"
        )

    def _forward_once(
        self, handle: WorkerHandle, method: str, path: str,
        body: Optional[bytes],
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.config.host, handle.port,
            timeout=self.config.router_timeout_s,
        )
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            relayed = {}
            for name in ("Content-Type", "Retry-After"):
                value = response.getheader(name)
                if value is not None:
                    relayed[name] = value
            return response.status, relayed, payload
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Router HTTP surface
# ----------------------------------------------------------------------
def _make_router_handler(fleet: ServingFleet):
    """The front router's request handler, closed over the fleet."""

    class RouterHandler(BaseHTTPRequestHandler):
        server_version = "repro-fleet/" + SCHEMA.rsplit("/", 1)[-1]
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        def _send_json(
            self, status: int, document: Dict,
            extra_headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(document).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_raw(
            self, status: int, headers: Dict[str, str], body: bytes
        ) -> None:
            self.send_response(status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _shed(self, endpoint: str, message: str) -> None:
            reason = "degraded"
            fleet._shed.inc(reason)
            retry_after = str(
                max(1, math.ceil(fleet.config.retry_after_s))
            )
            self._send_json(
                503,
                {
                    "schema": SCHEMA,
                    "error": message,
                    "status": 503,
                    "reason": reason,
                    "retry_after": int(retry_after),
                },
                {"Retry-After": retry_after},
            )
            fleet._router_requests.inc(endpoint, "503")

        def _proxy(self, endpoint: str, body: Optional[bytes]) -> None:
            try:
                status, headers, payload = fleet.forward(
                    self.command, self.path, body
                )
            except FleetError as exc:
                self._shed(endpoint, str(exc))
                return
            try:
                self._send_raw(status, headers, payload)
            except (BrokenPipeError, OSError):
                status = 499
            fleet._router_requests.inc(endpoint, str(status))

        def _read_body(self) -> Optional[bytes]:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length > 0 else None

        # -- routes -----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — http.server contract
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                status = fleet.supervisor.status()
                healthy = status["healthy_workers"]
                self._send_json(200, {
                    "schema": SCHEMA,
                    "status": (
                        "degraded"
                        if status["degraded"] or healthy == 0 else "ok"
                    ),
                    "healthy_workers": healthy,
                    "workers": len(status["workers"]),
                })
                fleet._router_requests.inc("/healthz", "200")
            elif path == "/fleet/status":
                self._send_json(200, fleet.status())
                fleet._router_requests.inc("/fleet/status", "200")
            elif path == "/metrics":
                body = fleet.metrics.render().encode("utf-8")
                self._send_raw(
                    200, {"Content-Type": "text/plain; version=0.0.4"}, body
                )
                fleet._router_requests.inc("/metrics", "200")
            else:
                self._proxy(path, None)

        def do_POST(self) -> None:  # noqa: N802 — http.server contract
            path = self.path.split("?", 1)[0].rstrip("/")
            body = self._read_body()
            if path == "/fleet/rollout":
                self._rollout(body)
            else:
                self._proxy(path, body)

        def _rollout(self, body: Optional[bytes]) -> None:
            try:
                payload = json.loads((body or b"").decode("utf-8"))
                if not isinstance(payload, dict) or "name" not in payload \
                        or "alias" not in payload:
                    raise ValueError(
                        'rollout payload needs "name" and "alias"'
                    )
                version = payload.get("version")
                if version is not None:
                    version = int(version)
                events = fleet.rollout(
                    str(payload["name"]), str(payload["alias"]), version
                )
            except (ValueError, ReproError) as exc:
                self._send_json(400, {
                    "schema": SCHEMA, "error": str(exc), "status": 400,
                })
                fleet._router_requests.inc("/fleet/rollout", "400")
                return
            self._send_json(200, {
                "schema": SCHEMA, "status": "ok", "events": events,
            })
            fleet._router_requests.inc("/fleet/rollout", "200")

    return RouterHandler

"""Minimal Prometheus-text-format metrics for the serving layer.

Implements just the slice of the exposition format (version 0.0.4) the
``/metrics`` endpoint needs — counters, gauges, and cumulative
histograms with labels — with one lock per registry so handler threads
and the batching thread can record concurrently.  Stdlib-only on
purpose: the serving stack must not grow dependencies the training
stack does not have.

Conventions follow the Prometheus client guidelines: counters end in
``_total``, histogram buckets are cumulative with a ``+Inf`` terminal,
label values are escaped, and metric families render in registration
order so scrapes are diff-stable.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
]

#: Request-latency histogram bounds in seconds (sub-ms to multi-second).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Batch-size histogram bounds in rows.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)

LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(names: Sequence[str], values: LabelValues,
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Shared naming/label plumbing for the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Sequence[str]) -> LabelValues:
        values = tuple(str(v) for v in labels)
        if len(values) != len(self.labelnames):
            raise ConfigError(
                f"metric {self.name} takes {len(self.labelnames)} label(s) "
                f"{self.labelnames}, got {len(values)}"
            )
        return values

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value per label combination."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, *labels: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for values, count in items:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, values)} "
                f"{_format_value(count)}"
            )
        return lines


class Gauge(_Metric):
    """A value that can go up and down (model info, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def set(self, *labels: str, value: float) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def value(self, *labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        for values, current in items:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, values)} "
                f"{_format_value(current)}"
            )
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram (`_bucket`/`_sum`/`_count` series)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ConfigError("histogram buckets must be sorted and non-empty")
        self.buckets = bounds
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, *labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, *labels: str) -> int:
        with self._lock:
            return self._totals.get(self._key(labels), 0)

    def render(self) -> List[str]:
        with self._lock:
            keys = sorted(self._totals)
            counts = {k: list(v) for k, v in self._counts.items()}
            sums = dict(self._sums)
            totals = dict(self._totals)
        lines = self._header()
        if not keys and not self.labelnames:
            keys = [()]
            counts[()] = [0] * len(self.buckets)
            sums[()] = 0.0
            totals[()] = 0
        for key in keys:
            # observe() increments every bucket the value fits, so the
            # stored counts are already cumulative as the format requires.
            for bound, bucket_count in zip(self.buckets, counts[key]):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(self.labelnames, key, ('le', _format_value(bound)))}"
                    f" {bucket_count}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.labelnames, key, ('le', '+Inf'))}"
                f" {totals[key]}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(self.labelnames, key)} "
                f"{_format_value(sums[key])}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(self.labelnames, key)} "
                f"{totals[key]}"
            )
        return lines


class MetricsRegistry:
    """An ordered collection of metrics rendering to one exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ConfigError(f"duplicate metric name {metric.name!r}")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS,
                  labelnames: Sequence[str] = ()) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, labelnames))  # type: ignore[return-value]

    def get(self, name: str) -> _Metric:
        with self._lock:
            try:
                return self._metrics[name]
            except KeyError:
                raise ConfigError(f"unknown metric {name!r}") from None

    def render(self) -> str:
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

"""Worker supervision for the serving fleet.

The :class:`Supervisor` is the control loop that keeps N serving
workers alive: it health-probes every worker, restarts crashed or
unresponsive ones under the resilience layer's
:class:`~repro.resilience.retry.RetryPolicy` exponential backoff, and
trips a :class:`~repro.resilience.breaker.CircuitBreaker` into
**degraded mode** when restarts keep failing — the fleet stops
hammering a broken spawn path and serves from whatever workers remain
until the breaker's cooldown allows a half-open probe.

The supervisor is deliberately *mechanism-free*: it never imports
``multiprocessing`` or makes HTTP calls.  It owns worker **slots** and
drives three injected callables —

* ``spawn(index) -> handle`` — start worker ``index``, returning an
  opaque handle (may raise on startup failure);
* ``probe(handle) -> bool`` — one liveness + health check;
* ``stop(handle, graceful) -> None`` — terminate a worker, draining
  first when ``graceful``.

— so unit tests supervise fake in-memory workers with a fake clock,
and :mod:`repro.serve.fleet` plugs in real forked processes probed over
``/healthz``.  Nothing here sleeps on its own except
:meth:`Supervisor.rolling_restart`'s wait-for-healthy poll, and even
that uses the injected ``clock``/``sleep`` pair.

Timing model: the owner calls :meth:`tick` periodically (the fleet runs
it on a supervision thread).  Each tick probes live workers, retires
unhealthy ones, and attempts any restarts whose backoff delay has
elapsed and whose attempt the breaker allows.  Restart backoff is keyed
``worker-<index>`` so two flapping workers jitter independently but
deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import FleetError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy

__all__ = ["Supervisor", "WorkerSlot"]


@dataclass
class WorkerSlot:
    """One worker position in the fleet and its supervision state."""

    index: int
    handle: Optional[Any] = None
    healthy: bool = False
    restarts: int = 0  # successful (re)spawns after the first start
    failures: int = 0  # consecutive failed spawn attempts
    next_attempt_at: float = 0.0
    started: bool = False  # ever spawned successfully

    def backoff_key(self) -> str:
        return f"worker-{self.index}"


class Supervisor:
    """Keep ``n_workers`` worker slots spawned, probed, and restarted.

    Args:
        spawn: ``index -> handle``; raises on startup failure.
        probe: ``handle -> bool``; one health check.
        stop: ``(handle, graceful) -> None``; terminate a worker.
        n_workers: Slot count.
        retry: Backoff between restart attempts of one slot
            (``delay_for(failures, "worker-<i>")``).
        breaker: Trips degraded mode when restart attempts keep failing
            fleet-wide; while open, no restarts are attempted.
        startup_timeout: Seconds a freshly spawned worker gets to pass
            its first probe before the spawn counts as failed.
        describe: Optional ``handle -> dict`` used by :meth:`status`.
        clock, sleep: Injectable time source pair for tests.
    """

    def __init__(
        self,
        spawn: Callable[[int], Any],
        probe: Callable[[Any], bool],
        stop: Callable[[Any, bool], None],
        n_workers: int,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        startup_timeout: float = 10.0,
        describe: Optional[Callable[[Any], Dict[str, Any]]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if n_workers < 1:
            raise FleetError(f"n_workers must be >= 1, got {n_workers}")
        self.spawn = spawn
        self.probe = probe
        self.stop = stop
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=1, base_delay=0.2, max_delay=5.0
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=5, cooldown_s=5.0
        )
        self.startup_timeout = float(startup_timeout)
        self.describe = describe
        self.clock = clock
        self.sleep = sleep
        self.slots = [WorkerSlot(index=i) for i in range(n_workers)]
        # _op_lock serializes supervision operations (tick, rollout,
        # stop_all); _slots_lock guards slot-field access so the router
        # can snapshot healthy handles without waiting on a probe pass.
        self._op_lock = threading.RLock()
        self._slots_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Observations for the routing tier
    # ------------------------------------------------------------------
    def healthy_handles(self) -> List[Any]:
        """Handles currently in rotation, in slot order."""
        with self._slots_lock:
            return [
                s.handle for s in self.slots
                if s.healthy and s.handle is not None
            ]

    @property
    def degraded(self) -> bool:
        """True while the breaker holds restarts open (degraded mode)."""
        return self.breaker.state == "open"

    def status(self) -> Dict[str, Any]:
        """A JSON-able snapshot for ``/fleet/status`` and operators."""
        with self._slots_lock:
            workers = []
            for slot in self.slots:
                entry: Dict[str, Any] = {
                    "index": slot.index,
                    "healthy": slot.healthy,
                    "restarts": slot.restarts,
                    "consecutive_failures": slot.failures,
                }
                if slot.handle is not None and self.describe is not None:
                    entry.update(self.describe(slot.handle))
                workers.append(entry)
        return {
            "degraded": self.degraded,
            "breaker": self.breaker.state,
            "healthy_workers": sum(1 for w in workers if w["healthy"]),
            "workers": workers,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every slot; raises if any worker never becomes healthy.

        Startup is strict where supervision is forgiving: a fleet that
        cannot field its full complement at boot is a configuration
        problem, not a transient to ride out.
        """
        with self._op_lock:
            for slot in self.slots:
                handle = self.spawn(slot.index)
                if not self._wait_healthy(handle):
                    self.stop(handle, False)
                    self.stop_all(graceful=False)
                    raise FleetError(
                        f"worker {slot.index} failed to become healthy "
                        f"within {self.startup_timeout:g}s at startup"
                    )
                with self._slots_lock:
                    slot.handle = handle
                    slot.healthy = True
                    slot.started = True

    def tick(self) -> List[str]:
        """One supervision pass; returns human-readable events."""
        events: List[str] = []
        with self._op_lock:
            for slot in self.slots:
                with self._slots_lock:
                    handle = slot.handle
                if handle is not None:
                    if self.probe(handle):
                        with self._slots_lock:
                            if not slot.healthy:
                                events.append(
                                    f"worker {slot.index} healthy again"
                                )
                            slot.healthy = True
                        continue
                    # Dead or unresponsive: retire it and schedule a
                    # restart under backoff.  The spawn attempt, not
                    # this observation, feeds the breaker.
                    self.stop(handle, False)
                    with self._slots_lock:
                        slot.handle = None
                        slot.healthy = False
                        slot.failures += 1
                        delay = self.retry.delay_for(
                            min(slot.failures, 16), slot.backoff_key()
                        )
                        slot.next_attempt_at = self.clock() + delay
                    events.append(
                        f"worker {slot.index} unhealthy; restart in "
                        f"{delay:.2f}s"
                    )
                    continue
                # Empty slot: respawn when backoff and breaker allow.
                if not slot.started:
                    continue  # start() owns first spawns
                if self.clock() < slot.next_attempt_at:
                    continue
                if not self.breaker.allow():
                    continue  # degraded: hold restarts until cooldown
                self._attempt_respawn(slot, events)
        return events

    def _attempt_respawn(self, slot: WorkerSlot, events: List[str]) -> None:
        try:
            handle = self.spawn(slot.index)
            if not self._wait_healthy(handle):
                self.stop(handle, False)
                raise FleetError(
                    f"worker {slot.index} respawned but never passed "
                    "its startup probe"
                )
        except Exception as exc:  # noqa: BLE001 — supervision absorbs
            self.breaker.record_failure()
            with self._slots_lock:
                slot.failures += 1
                delay = self.retry.delay_for(
                    min(slot.failures, 16), slot.backoff_key()
                )
                slot.next_attempt_at = self.clock() + delay
            events.append(
                f"worker {slot.index} restart failed ({exc}); next "
                f"attempt in {delay:.2f}s"
                + (" [breaker open: degraded]" if self.degraded else "")
            )
            return
        self.breaker.record_success()
        with self._slots_lock:
            slot.handle = handle
            slot.healthy = True
            slot.failures = 0
            slot.restarts += 1
        events.append(f"worker {slot.index} restarted")

    def _wait_healthy(self, handle: Any) -> bool:
        """Poll ``probe`` until healthy or ``startup_timeout`` elapses."""
        deadline = self.clock() + self.startup_timeout
        while True:
            if self.probe(handle):
                return True
            if self.clock() >= deadline:
                return False
            self.sleep(0.05)

    # ------------------------------------------------------------------
    # Zero-downtime rollout
    # ------------------------------------------------------------------
    def rolling_restart(self) -> List[str]:
        """Replace every worker one at a time with no rotation gap.

        For each slot: spawn the replacement, wait until it is healthy,
        swap it into rotation atomically, then gracefully drain the old
        worker.  At every instant each slot holds a healthy worker, so
        a router snapshotting :meth:`healthy_handles` never sees the
        fleet shrink below its complement.

        Raises:
            FleetError: A replacement never became healthy; the old
                worker is kept in rotation and the roll aborts.
        """
        events: List[str] = []
        with self._op_lock:
            for slot in self.slots:
                replacement = self.spawn(slot.index)
                if not self._wait_healthy(replacement):
                    self.stop(replacement, False)
                    raise FleetError(
                        f"rollout aborted at worker {slot.index}: the "
                        "replacement never became healthy; the previous "
                        "worker remains in rotation"
                    )
                with self._slots_lock:
                    old = slot.handle
                    slot.handle = replacement
                    slot.healthy = True
                    slot.failures = 0
                    slot.restarts += 1
                    slot.started = True
                if old is not None:
                    self.stop(old, True)  # graceful: drain in-flight
                events.append(f"worker {slot.index} rolled")
        return events

    def stop_all(self, graceful: bool = True) -> None:
        """Terminate every worker and empty the rotation."""
        with self._slots_lock:
            handles = [
                (s, s.handle) for s in self.slots if s.handle is not None
            ]
            for slot, _ in handles:
                slot.handle = None
                slot.healthy = False
        for _, handle in handles:
            self.stop(handle, graceful)

"""Online drift detection for served models.

CounterPoint's lesson (PAPERS.md) is that counter-driven models rot
silently: the tree keeps answering while the traffic wanders out of the
regime it was trained on.  :class:`DriftMonitor` watches every scored
batch for signals derived from artifacts the training stack already
produces:

* **Out-of-range inputs** — values outside the per-feature
  ``feature_ranges_`` recorded at fit time (with the same slack the
  COMPAT lint rules apply).  There the tree extrapolates linearly,
  which the paper never validated.
* **Non-finite inputs** — NaN/inf feature values.  NaN compares false
  against every bound, so these would sail through the range check;
  they are counted separately (``nan_inputs``) because they signal a
  broken feed, not a drifted one.
* **Invariant violations** — rows breaking the Table I event hierarchy
  (:data:`repro.counters.invariants.METRIC_INVARIANTS`), the signature
  of corrupt or mislabeled counter feeds rather than workload change.
* **Out-of-bounds predictions** — outputs escaping the interval the
  static verifier certified at publish time
  (:mod:`repro.verify`).  A certified model *cannot* produce such a
  value from in-domain inputs, so one appearing means the inputs left
  the domain or the artifact changed — either way, page someone.

Counts surface through the server's ``/metrics`` endpoint
(``repro_drift_*`` families) so an operator alerts on drift the same
way they alert on latency.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.counters.invariants import (
    METRIC_INVARIANTS,
    applicable_invariants,
    check_dataset,
)

__all__ = ["DriftMonitor", "DriftSnapshot"]


class DriftSnapshot(Dict[str, object]):
    """Plain-dict snapshot of a monitor's counts (JSON-friendly)."""


class DriftMonitor:
    """Accumulates drift statistics for one served model.

    Args:
        model: The fitted model whose training regime defines "normal".
        range_slack: Fraction of each feature's training span the value
            may exceed the range by before counting as out-of-range —
            the same default the COMPAT003 lint rule uses, so offline
            lint and online drift agree on what "outside" means.
        output_interval: The certified whole-model ``(low, high)``
            prediction bound from the model's
            :class:`~repro.verify.certificate.VerificationCertificate`;
            predictions escaping it are counted as out-of-bounds.
            ``None`` disables the bound check (uncertified models).
    """

    def __init__(
        self,
        model: M5Prime,
        range_slack: float = 0.10,
        output_interval: Optional[Tuple[float, float]] = None,
    ) -> None:
        self.attributes: Tuple[str, ...] = tuple(model.attributes_)
        self.range_slack = float(range_slack)
        self.output_interval = (
            None if output_interval is None
            else (float(output_interval[0]), float(output_interval[1]))
        )
        self._lock = threading.Lock()
        self.rows_seen = 0
        self.nan_inputs = 0
        self.predictions_seen = 0
        self.out_of_bounds_predictions = 0
        self.out_of_range: Dict[str, int] = {}
        self.violations: Dict[str, int] = {}
        self._invariants = applicable_invariants(
            METRIC_INVARIANTS, self.attributes
        )
        if model.feature_ranges_ is not None:
            self._low = np.array([low for low, _ in model.feature_ranges_])
            self._high = np.array([high for _, high in model.feature_ranges_])
            span = self._high - self._low
            margin = self.range_slack * np.where(
                span > 0, span, np.maximum(np.abs(self._high), 1.0)
            )
            self._low = self._low - margin
            self._high = self._high + margin
        else:
            self._low = None
            self._high = None

    def observe(self, X: np.ndarray) -> None:
        """Fold one scored batch into the counters (vectorized)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[0] == 0:
            return
        # NaN/inf would compare false against every range bound and
        # poison the invariant sums; count the rows explicitly.
        nonfinite_rows = int(np.count_nonzero(~np.isfinite(X).all(axis=1)))
        range_counts: Optional[np.ndarray] = None
        if self._low is not None:
            outside = (X < self._low) | (X > self._high)
            range_counts = outside.sum(axis=0)
        columns = {
            name: X[:, index] for index, name in enumerate(self.attributes)
        }
        found = check_dataset(
            columns, self._invariants, check_negative=False
        )
        with self._lock:
            self.rows_seen += int(X.shape[0])
            self.nan_inputs += nonfinite_rows
            if range_counts is not None:
                for index, count in enumerate(range_counts):
                    if count:
                        name = self.attributes[index]
                        self.out_of_range[name] = (
                            self.out_of_range.get(name, 0) + int(count)
                        )
            for violation in found:
                self.violations[violation.invariant] = (
                    self.violations.get(violation.invariant, 0)
                    + violation.n_rows
                )

    def observe_predictions(self, predictions: np.ndarray) -> None:
        """Check a batch of model outputs against the certified bound.

        Non-finite predictions always count as out-of-bounds (they are
        inside no interval); finite ones only when a certified
        ``output_interval`` exists to compare against.
        """
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        if predictions.shape[0] == 0:
            return
        finite = np.isfinite(predictions)
        bad = ~finite
        if self.output_interval is not None:
            low, high = self.output_interval
            bad = bad | (predictions < low) | (predictions > high)
        n_bad = int(np.count_nonzero(bad))
        with self._lock:
            self.predictions_seen += int(predictions.shape[0])
            self.out_of_bounds_predictions += n_bad

    @property
    def monitors_ranges(self) -> bool:
        """False for pre-range model documents (nothing to compare to)."""
        return self._low is not None

    @property
    def monitors_output(self) -> bool:
        """Whether a certified prediction bound is being enforced."""
        return self.output_interval is not None

    def snapshot(self) -> DriftSnapshot:
        """Counts so far: rows seen, out-of-range by feature, violations."""
        with self._lock:
            return DriftSnapshot(
                rows_seen=self.rows_seen,
                nan_inputs=self.nan_inputs,
                predictions_seen=self.predictions_seen,
                out_of_bounds_predictions=self.out_of_bounds_predictions,
                out_of_range=dict(sorted(self.out_of_range.items())),
                invariant_violations=dict(sorted(self.violations.items())),
            )

    def render_metrics(self, model_label: str) -> List[str]:
        """Prometheus exposition lines for this monitor."""
        snap = self.snapshot()
        lines = [
            "# HELP repro_drift_rows_total Rows scored by the drift monitor.",
            "# TYPE repro_drift_rows_total counter",
            f'repro_drift_rows_total{{model="{model_label}"}} '
            f"{snap['rows_seen']}",
            "# HELP repro_drift_nan_inputs_total Rows containing NaN/inf "
            "feature values.",
            "# TYPE repro_drift_nan_inputs_total counter",
            f'repro_drift_nan_inputs_total{{model="{model_label}"}} '
            f"{snap['nan_inputs']}",
            "# HELP repro_drift_predictions_total Predictions checked "
            "against the certified output bound.",
            "# TYPE repro_drift_predictions_total counter",
            f'repro_drift_predictions_total{{model="{model_label}"}} '
            f"{snap['predictions_seen']}",
            "# HELP repro_drift_out_of_bounds_predictions_total Predictions "
            "outside the certified output interval (or non-finite).",
            "# TYPE repro_drift_out_of_bounds_predictions_total counter",
            f'repro_drift_out_of_bounds_predictions_total{{'
            f'model="{model_label}"}} {snap["out_of_bounds_predictions"]}',
            "# HELP repro_drift_out_of_range_total Values outside the "
            "feature's training range (with slack).",
            "# TYPE repro_drift_out_of_range_total counter",
        ]
        for feature, count in snap["out_of_range"].items():  # type: ignore[union-attr]
            lines.append(
                f'repro_drift_out_of_range_total{{model="{model_label}",'
                f'feature="{feature}"}} {count}'
            )
        lines.append(
            "# HELP repro_drift_invariant_violations_total Rows violating "
            "a Table I metric invariant."
        )
        lines.append("# TYPE repro_drift_invariant_violations_total counter")
        for invariant, count in snap["invariant_violations"].items():  # type: ignore[union-attr]
            lines.append(
                f'repro_drift_invariant_violations_total{{model="{model_label}",'
                f'invariant="{invariant}"}} {count}'
            )
        return lines

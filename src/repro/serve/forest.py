"""Compiled forest inference: one contiguous arena for a whole ensemble.

:class:`~repro.baselines.bagging.BaggedM5` historically predicted member
by member through each tree's own compiled form — ten trees meant ten
routing passes and ten Python-level loops over leaf groups.
:func:`compile_forest` concatenates every member's
:class:`~repro.serve.compiled.CompiledTree` arrays into a single arena
with per-tree node offsets (``tree_offset``) and per-tree leaf-column
offsets (``leaf_offset``), and :class:`CompiledForest` routes *all rows
through all trees at once*: one vectorized level-loop over the flattened
``(row, tree)`` state, then one grouped evaluation pass over the global
leaf nodes.

Bit-identity carries over from the single-tree contract: every
floating-point operation on a ``(row, tree)`` pair is elementwise and
happens in the same order the member's own :class:`CompiledTree` (and
therefore the interpreted walk) performs it, so ``predict_trees(X)[t]``
equals ``member_t.compiled_.predict(X)`` to the last bit, and
``predict(X)`` — a C-order ``(n_trees, n)`` matrix reduced with
``.mean(axis=0)`` — is bit-identical to the historical
``np.vstack([m.predict(X) for m in members]).mean(axis=0)``.
CONF008 in the conformance harness asserts exactly this.

The arena also exposes the ensemble's *leaf-indicator matrix* in
CSR-style arrays (``indptr``/``indices``/``data``, stdlib + numpy only):
row ``i`` has exactly one unit entry per tree, in the column of the leaf
the row lands in.  This is the design matrix the
:class:`~repro.serve.refine.RefinedForest` pass regresses over.

Leaf columns are numbered tree-major and pre-order within each tree
(column = ``leaf_offset[t] + local leaf position``), mirroring the
RefinedRandomForest offset bookkeeping (``offsets_ = cumsum(n_leaves)``)
so per-leaf weights stay addressable and inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, DataError, NotFittedError, ReproError

if TYPE_CHECKING:  # baselines imports serve lazily; keep the cycle static-only
    from repro.baselines.bagging import BaggedM5

__all__ = ["CompiledForest", "LeafIndicator", "compile_forest"]


@dataclass(frozen=True)
class LeafIndicator:
    """The ensemble leaf-indicator matrix in CSR arrays (no scipy).

    Shape ``(n_rows, total_leaves)``; row ``i`` holds exactly one unit
    entry per tree — ``rows sum to n_trees`` is a structural invariant
    the property tests assert.  Column indices within each row are
    strictly increasing (leaf columns are tree-major), so the arrays are
    canonical CSR.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]

    def toarray(self) -> np.ndarray:
        """Densify (tests and small-batch inspection only)."""
        dense = np.zeros(self.shape)
        rows = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr)
        )
        dense[rows, self.indices] = self.data
        return dense


@dataclass(frozen=True)
class CompiledForest:
    """A fitted :class:`BaggedM5` ensemble flattened to one arena.

    The per-node arrays carry the same fields as
    :class:`~repro.serve.compiled.CompiledTree`, concatenated tree by
    tree with child/parent indices and CSR term offsets rebased to the
    global numbering.  Tree ``t`` owns nodes
    ``tree_offset[t]:tree_offset[t+1]`` (its root is the first of them)
    and leaf columns ``leaf_offset[t]:leaf_offset[t+1]``.

    Attributes:
        n_features: Training attribute count routing validates against.
        n_trees: Ensemble size.
        feature, threshold, left, right, parent, leaf_id, n_instances,
            has_model, intercept, term_offset, term_feature,
            term_coefficient: The concatenated per-node arena (see
            :class:`~repro.serve.compiled.CompiledTree`).
        tree_offset: Node offset per tree, length ``n_trees + 1``.
        leaf_offset: Leaf-column offset per tree, length ``n_trees + 1``
            (the RefinedRandomForest ``offsets_`` bookkeeping).
        leaf_col: Global leaf column per node (``-1`` at interior nodes).
        leaf_node: Global node index per leaf column (the inverse map).
        max_depth: Deepest member tree (routing iteration bound).
    """

    n_features: int
    n_trees: int
    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    leaf_id: np.ndarray
    n_instances: np.ndarray
    has_model: np.ndarray
    intercept: np.ndarray
    term_offset: np.ndarray
    term_feature: np.ndarray
    term_coefficient: np.ndarray
    tree_offset: np.ndarray
    leaf_offset: np.ndarray
    leaf_col: np.ndarray
    leaf_node: np.ndarray
    max_depth: int

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def total_leaves(self) -> int:
        return int(self.leaf_node.shape[0])

    def tree_of(self, node: int) -> int:
        """The tree index owning a global node index."""
        if not 0 <= node < self.n_nodes:
            raise DataError(
                f"node {node} out of range for {self.n_nodes} arena nodes"
            )
        return int(np.searchsorted(self.tree_offset, node, side="right") - 1)

    # ------------------------------------------------------------------
    def _check_width(self, X: np.ndarray) -> None:
        if X.ndim != 2:
            raise DataError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[1] != self.n_features:
            raise DataError(
                f"X has {X.shape[1]} columns but the compiled forest "
                f"expects {self.n_features}"
            )

    def route(self, X: np.ndarray) -> np.ndarray:
        """Global leaf-node index per ``(row, tree)`` pair, shape
        ``(n_rows, n_trees)``.

        One vectorized pass per tree level over the flattened
        ``(row, tree)`` state: every pair still sitting on an interior
        node compares its split attribute against the threshold (``<=``
        goes left, exactly the interpreted rule) and steps down.  Ragged
        ensembles terminate naturally — finished pairs stay put.
        """
        X = np.asarray(X, dtype=np.float64)
        self._check_width(X)
        n = X.shape[0]
        nodes = np.broadcast_to(
            self.tree_offset[:-1], (n, self.n_trees)
        ).copy()
        flat = nodes.ravel()
        # Only pairs still on an interior node are re-examined each
        # level; settled pairs drop out of the working set instead of
        # being rescanned (ragged ensembles shrink it quickly).
        at_split = np.flatnonzero(self.feature[flat] >= 0)
        for _ in range(self.max_depth):
            if at_split.size == 0:
                break
            current = flat[at_split]
            rows = at_split // self.n_trees
            values = X[rows, self.feature[current]]
            go_left = values <= self.threshold[current]
            stepped = np.where(
                go_left, self.left[current], self.right[current]
            )
            flat[at_split] = stepped
            at_split = at_split[self.feature[stepped] >= 0]
        return nodes

    def leaf_columns(self, X: np.ndarray) -> np.ndarray:
        """Global leaf column per ``(row, tree)``, shape ``(n, n_trees)``."""
        return self.leaf_col[self.route(X)]

    def leaf_indicator(self, X: np.ndarray) -> LeafIndicator:
        """The CSR leaf-indicator matrix for a batch.

        ``indices[indptr[i]:indptr[i+1]]`` are the ``n_trees`` leaf
        columns row ``i`` activates (strictly increasing — columns are
        tree-major), and ``data`` is all ones, so every row sums to
        ``n_trees``.
        """
        columns = self.leaf_columns(X)
        n = columns.shape[0]
        indptr = np.arange(n + 1, dtype=np.int64) * self.n_trees
        return LeafIndicator(
            indptr=indptr,
            indices=columns.ravel().astype(np.int64, copy=False),
            data=np.ones(n * self.n_trees),
            shape=(n, self.total_leaves),
        )

    # ------------------------------------------------------------------
    def _evaluate_node_model(
        self, node: int, X: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """One node's linear model over selected rows, term by term.

        The same ``intercept; += coef * column`` accumulation order as
        :meth:`~repro.serve.compiled.CompiledTree._evaluate_node_model`,
        so per-row results stay bit-identical to the member's own
        compiled (and interpreted) evaluation.
        """
        if not self.has_model[node]:
            raise ReproError(f"compiled node {node} carries no linear model")
        result = np.full(rows.shape[0], self.intercept[node])
        start, stop = self.term_offset[node], self.term_offset[node + 1]
        for position in range(start, stop):
            result += (
                self.term_coefficient[position]
                * X[rows, self.term_feature[position]]
            )
        return result

    def predict_trees(
        self, X: np.ndarray, smoothing_k: Optional[float] = None
    ) -> np.ndarray:
        """Every member's batch prediction in one pass, shape
        ``(n_trees, n_rows)`` (C-order).

        ``(row, tree)`` pairs are grouped by destination leaf *across
        the whole forest* — every pair in a group shares one root path —
        so the Python-level loop runs once per distinct leaf in the
        arena, not once per tree times leaf.  Row ``t`` of the result is
        bit-identical to ``members[t].compiled_.predict(X)``.
        """
        if smoothing_k is not None and smoothing_k < 0:
            raise ConfigError(
                f"smoothing constant k must be non-negative, got {smoothing_k}"
            )
        X = np.asarray(X, dtype=np.float64)
        self._check_width(X)
        n = X.shape[0]
        out = np.empty((self.n_trees, n))
        if n == 0:
            return out
        flat = self.route(X).ravel()
        # Group (row, tree) pairs by destination leaf via one stable
        # argsort; within each run the positions come out in increasing
        # flat order, exactly as a per-leaf ``flatnonzero`` scan would
        # produce them, so group evaluation order is unchanged.
        order = np.argsort(flat, kind="stable")
        sorted_leaves = flat[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_leaves[1:] != sorted_leaves[:-1]]
        )
        stops = np.r_[starts[1:], sorted_leaves.size]
        for start, stop in zip(starts, stops):
            leaf = int(sorted_leaves[start])
            positions = order[start:stop]
            rows = positions // self.n_trees
            trees = positions % self.n_trees
            if not self.has_model[leaf]:
                raise ReproError(
                    "prediction requires a model at the leaf"
                    if smoothing_k is None
                    else "smoothing requires a model at the leaf"
                )
            group = self._evaluate_node_model(leaf, X, rows)
            if smoothing_k is not None:
                below = int(leaf)
                ancestor = int(self.parent[below])
                while ancestor >= 0:
                    if not self.has_model[ancestor]:
                        raise ReproError(
                            "smoothing requires a model at every ancestor"
                        )
                    blended = self._evaluate_node_model(ancestor, X, rows)
                    weight = float(self.n_instances[below])
                    group = (weight * group + smoothing_k * blended) / (
                        weight + smoothing_k
                    )
                    below = ancestor
                    ancestor = int(self.parent[below])
            out[trees, rows] = group
        return out

    def predict(
        self, X: np.ndarray, smoothing_k: Optional[float] = None
    ) -> np.ndarray:
        """The ensemble mean, bit-identical to stacking member predicts.

        ``predict_trees`` fills a C-contiguous ``(n_trees, n)`` float64
        matrix with per-member predictions that are bit-identical to
        each member's own compiled evaluation; ``.mean(axis=0)`` then
        performs the same reduction ``np.vstack([...]).mean(axis=0)``
        would over identical memory, so the historical tree-by-tree
        ensemble prediction is reproduced exactly.
        """
        return self.predict_trees(X, smoothing_k=smoothing_k).mean(axis=0)

    # ------------------------------------------------------------------
    def leaf_summary(self, column: int) -> Dict[str, Any]:
        """The inspectable linear model behind one global leaf column."""
        if not 0 <= column < self.total_leaves:
            raise DataError(
                f"leaf column {column} out of range for "
                f"{self.total_leaves} leaves"
            )
        node = int(self.leaf_node[column])
        tree = self.tree_of(node)
        start, stop = int(self.term_offset[node]), int(self.term_offset[node + 1])
        return {
            "column": int(column),
            "tree": tree,
            "node": node,
            "leaf_id": int(self.leaf_id[node]),
            "n_instances": float(self.n_instances[node]),
            "intercept": float(self.intercept[node]),
            "terms": [
                (int(self.term_feature[p]), float(self.term_coefficient[p]))
                for p in range(start, stop)
            ],
        }


def compile_forest(forest: "BaggedM5") -> CompiledForest:
    """Flatten a fitted ensemble into a :class:`CompiledForest`.

    Member arenas come from each member's cached ``compiled_`` form and
    are concatenated in ``estimators_`` order — the ordering contract
    :class:`~repro.baselines.bagging.BaggedM5` documents and asserts, so
    arena offsets are deterministic across serial and parallel fits.

    Raises:
        NotFittedError: The ensemble has no fitted members.
        DataError: A member disagrees with the ensemble's feature count.
        ConfigError: Members disagree on their smoothing configuration
            (the forest serves one ``smoothing_k`` for all trees).
    """
    members = list(getattr(forest, "estimators_", ()))
    if not members:
        raise NotFittedError("cannot compile an unfitted forest")
    n_features = len(forest.attributes_)
    signature = (members[0].smoothing, members[0].smoothing_k)
    compiled: List = []
    for index, member in enumerate(members):
        if member.root_ is None:
            raise NotFittedError(f"forest member {index} is unfitted")
        if (member.smoothing, member.smoothing_k) != signature:
            raise ConfigError(
                f"forest member {index} smoothing configuration "
                f"{(member.smoothing, member.smoothing_k)} disagrees with "
                f"member 0 {signature}; a forest serves one smoothing mode"
            )
        tree = member.compiled_
        if tree.n_features != n_features:
            raise DataError(
                f"forest member {index} compiled for {tree.n_features} "
                f"features but the ensemble carries {n_features}"
            )
        compiled.append(tree)

    n_trees = len(compiled)
    tree_offset = np.zeros(n_trees + 1, dtype=np.int64)
    leaf_offset = np.zeros(n_trees + 1, dtype=np.int64)
    for t, tree in enumerate(compiled):
        tree_offset[t + 1] = tree_offset[t] + tree.n_nodes
        leaf_offset[t + 1] = leaf_offset[t] + tree.n_leaves
    n_nodes = int(tree_offset[-1])

    feature = np.concatenate([tree.feature for tree in compiled])
    threshold = np.concatenate([tree.threshold for tree in compiled])
    leaf_id = np.concatenate([tree.leaf_id for tree in compiled])
    n_instances = np.concatenate([tree.n_instances for tree in compiled])
    has_model = np.concatenate([tree.has_model for tree in compiled])
    intercept = np.concatenate([tree.intercept for tree in compiled])
    term_feature = np.concatenate(
        [tree.term_feature for tree in compiled]
    ).astype(np.int64, copy=False)
    term_coefficient = np.concatenate(
        [tree.term_coefficient for tree in compiled]
    )

    left = np.full(n_nodes, -1, dtype=np.int64)
    right = np.full(n_nodes, -1, dtype=np.int64)
    parent = np.full(n_nodes, -1, dtype=np.int64)
    leaf_col = np.full(n_nodes, -1, dtype=np.int64)
    leaf_node = np.empty(int(leaf_offset[-1]), dtype=np.int64)
    term_offset = np.zeros(n_nodes + 1, dtype=np.int64)
    term_base = 0
    for t, tree in enumerate(compiled):
        base = int(tree_offset[t])
        stop = int(tree_offset[t + 1])
        left[base:stop] = np.where(tree.left >= 0, tree.left + base, -1)
        right[base:stop] = np.where(tree.right >= 0, tree.right + base, -1)
        parent[base:stop] = np.where(tree.parent >= 0, tree.parent + base, -1)
        local_leaves = np.flatnonzero(tree.feature < 0)
        columns = np.arange(local_leaves.size) + int(leaf_offset[t])
        leaf_col[base + local_leaves] = columns
        leaf_node[columns] = base + local_leaves
        term_offset[base + 1:stop + 1] = tree.term_offset[1:] + term_base
        term_base += int(tree.term_offset[-1])

    return CompiledForest(
        n_features=int(n_features),
        n_trees=n_trees,
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        parent=parent,
        leaf_id=leaf_id,
        n_instances=n_instances,
        has_model=has_model,
        intercept=intercept,
        term_offset=term_offset,
        term_feature=term_feature,
        term_coefficient=term_coefficient,
        tree_offset=tree_offset,
        leaf_offset=leaf_offset,
        leaf_col=leaf_col,
        leaf_node=leaf_node,
        max_depth=max(tree.max_depth for tree in compiled),
    )

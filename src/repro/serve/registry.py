"""Versioned model registry layered on the artifact cache.

The serving layer needs a name — ``cpi-tree@latest`` — where the
training layer produces a file.  :class:`ModelRegistry` bridges the two:
``publish`` serializes a fitted :class:`~repro.core.tree.m5.M5Prime`
into an :class:`~repro.parallel.cache.ArtifactCache` rooted at the
registry directory (inheriting its atomic writes, ``.sha256`` integrity
sidecars, and quarantine-on-corruption) and records the version in a
manifest; ``resolve`` turns a spec back into a loaded model.

Layout (default ``<default_cache_dir>/registry``)::

    registry/
        manifest.json                the name -> version index (atomic)
        model-<digest>.json          one blob per published version
        model-<digest>.json.sha256   integrity sidecar
        cert-<digest>.json           verification certificate (see below)
        quarantine/                  corrupt blobs, kept for autopsy

Publishing is gated by the static model verifier (:mod:`repro.verify`):
a model with ERROR findings is refused, and a clean model with recorded
``feature_ranges_`` ships a :class:`~repro.verify.certificate.\
VerificationCertificate` (per-leaf feasible boxes and output bounds)
beside its blob, which serving loads to enforce prediction bounds
online.  ``publish(..., verify=False)`` skips the gate — for tests and
for deliberately republishing a known-odd artifact.

Spec grammar: ``name`` (implies ``@latest``), ``name@latest``,
``name@<version>`` (1-based integer), or ``name@<alias>`` for aliases
created with :meth:`ModelRegistry.alias`.

A blob that fails its checksum or no longer parses is quarantined by the
cache on load; ``resolve`` then raises :class:`~repro.errors.RegistryError`
telling the operator to republish, and ``repro lint --registry`` reports
the damage statically (the SERVE rule family).
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.tree.m5 import M5Prime
from repro.errors import DataError, RegistryError
from repro.parallel.cache import ArtifactCache
from repro.resilience.faults import maybe_inject

if TYPE_CHECKING:
    from repro.verify.certificate import VerificationCertificate

__all__ = ["ModelRecord", "ModelRegistry", "parse_spec"]

#: Manifest document identity; bump on incompatible layout changes.
MANIFEST_SCHEMA = "repro-registry/1"

MANIFEST_NAME = "manifest.json"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


def parse_spec(spec: str) -> Tuple[str, str]:
    """Split ``name[@ref]`` into ``(name, ref)``; ref defaults to latest."""
    text = spec.strip()
    if not text:
        raise RegistryError("empty model spec")
    if "@" in text:
        name, _, ref = text.partition("@")
    else:
        name, ref = text, "latest"
    if not _NAME_RE.match(name):
        raise RegistryError(
            f"invalid model name {name!r} (lowercase letters, digits, "
            "'.', '_', '-'; must start alphanumeric)"
        )
    if not ref:
        raise RegistryError(f"model spec {spec!r} has an empty version")
    return name, ref


@dataclass(frozen=True)
class ModelRecord:
    """One published model version as the manifest describes it.

    ``certificate`` names the verification-certificate file beside the
    blob, or is ``None`` for versions published without one (pre-verify
    manifests, ``verify=False``, models lacking ``feature_ranges_``, or
    forests — which are verified structurally but not certified).

    ``kind`` distinguishes single trees (``"tree"``) from compiled
    ensembles (``"forest"``); manifests written before forests existed
    lack the key and parse as trees.
    """

    name: str
    version: int
    blob: str
    created: str
    attributes: Tuple[str, ...]
    target: str
    n_leaves: int
    certificate: Optional[str] = None
    kind: str = "tree"

    @property
    def spec(self) -> str:
        return f"{self.name}@{self.version}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "blob": self.blob,
            "created": self.created,
            "attributes": list(self.attributes),
            "target": self.target,
            "n_leaves": self.n_leaves,
            "certificate": self.certificate,
            "kind": self.kind,
        }


class ModelRegistry:
    """Named, versioned, integrity-checked store of fitted models.

    Args:
        directory: Registry root; defaults to
            ``<default_cache_dir>/registry`` (so ``$REPRO_CACHE_DIR``
            relocates it together with the artifact cache).
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        if directory is None:
            from repro.experiments.config import default_cache_dir

            directory = default_cache_dir() / "registry"
        self.directory = Path(directory)
        self.cache = ArtifactCache(self.directory)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    # ------------------------------------------------------------------
    # Manifest I/O
    # ------------------------------------------------------------------
    def _read_manifest(self) -> Dict:
        path = self.manifest_path
        maybe_inject("registry_read", str(path))
        if not path.exists():
            return {"schema": MANIFEST_SCHEMA, "models": {}}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"{path}: unreadable manifest: {exc}") from None
        if (
            not isinstance(document, dict)
            or document.get("schema") != MANIFEST_SCHEMA
            or not isinstance(document.get("models"), dict)
        ):
            raise RegistryError(
                f"{path}: not a {MANIFEST_SCHEMA} manifest"
            )
        return document

    def _write_manifest(self, document: Dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(f".json.tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.manifest_path)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        model,
        aliases: Sequence[str] = (),
        verify: bool = True,
    ) -> ModelRecord:
        """Store a fitted model under ``name`` as the next version.

        Accepts a single :class:`~repro.core.tree.m5.M5Prime` or a
        fitted :class:`~repro.baselines.bagging.BaggedM5` ensemble.
        The model first passes the static verifier (:mod:`repro.verify`)
        — any ERROR finding refuses the publish before a byte is
        written.  A clean single tree with recorded ranges stores its
        verification certificate beside the blob; forests run the
        structural multi-tree checks (:func:`repro.verify.verify_forest`)
        but ship uncertified — interval certificates remain a
        single-tree feature.  Pass ``verify=False`` to skip the gate.

        The blob goes through the artifact cache (atomic write plus
        ``.sha256`` sidecar); the manifest update is itself atomic, so a
        crash mid-publish leaves at worst an orphaned blob, never a
        manifest pointing at nothing.
        """
        parsed, _ = parse_spec(name)
        if parsed != name:
            raise RegistryError(f"publish takes a bare name, got {name!r}")
        is_forest = not isinstance(model, M5Prime) and hasattr(
            model, "estimators_"
        )
        if is_forest:
            if not model.estimators_:
                raise RegistryError("cannot publish an unfitted forest")
        elif model.root_ is None:
            raise RegistryError("cannot publish an unfitted model")
        certificate = None
        if verify:
            if is_forest:
                from repro.verify import verify_forest

                result = verify_forest(model)
            else:
                from repro.verify import verify_model

                result = verify_model(model)
            if not result.ok:
                findings = "; ".join(
                    d.render() for d in result.diagnostics[:5]
                )
                raise RegistryError(
                    f"refusing to publish {name!r}: static verification "
                    f"found {result.n_errors} error(s): {findings}"
                )
            certificate = result.certificate
        document = self._read_manifest()
        entry = document["models"].setdefault(
            name, {"latest": 0, "aliases": {}, "versions": {}}
        )
        version = int(entry["latest"]) + 1
        blob_path = self.cache.store_model([name, version], model)
        certificate_name: Optional[str] = None
        if certificate is not None:
            # "cert-" rather than "model-<digest>.cert" keeps the file
            # outside the artifact cache's entry namespace (which scans
            # "model-*" files and would demand a checksum sidecar).
            digest = blob_path.stem.partition("-")[2] or blob_path.stem
            certificate_name = f"cert-{digest}.json"
            self._write_certificate(certificate_name, certificate)
        record = ModelRecord(
            name=name,
            version=version,
            blob=blob_path.name,
            created=_datetime.datetime.now(_datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            attributes=tuple(model.attributes_),
            target=model.target_name_,
            n_leaves=model.n_leaves,
            certificate=certificate_name,
            kind="forest" if is_forest else "tree",
        )
        entry["versions"][str(version)] = record.to_dict()
        entry["latest"] = version
        for alias in aliases:
            entry["aliases"][str(alias)] = version
        self._write_manifest(document)
        return record

    def _write_certificate(
        self, filename: str, certificate: "VerificationCertificate"
    ) -> None:
        """Atomically write a certificate document beside its blob."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / filename
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(certificate.to_json())
        os.replace(tmp, path)

    def load_certificate(
        self, record: ModelRecord
    ) -> Optional["VerificationCertificate"]:
        """The stored certificate for a record, or ``None`` if it has none.

        Raises :class:`~repro.errors.RegistryError` when the manifest
        promises a certificate but the file is missing or malformed —
        a half-deleted registry should fail loudly, not silently lose
        its bounds.
        """
        from repro.verify import VerificationCertificate

        if record.certificate is None:
            return None
        path = self.directory / record.certificate
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise RegistryError(
                f"{record.spec}: certificate {record.certificate!r} is "
                f"unreadable ({exc}); republish the model"
            ) from None
        try:
            return VerificationCertificate.from_json(text)
        except DataError as exc:
            raise RegistryError(
                f"{record.spec}: certificate {record.certificate!r} is "
                f"malformed ({exc}); republish the model"
            ) from None

    def alias(self, name: str, alias: str, version: Optional[int] = None) -> None:
        """Point ``name@alias`` at a version (default: current latest)."""
        document = self._read_manifest()
        entry = document["models"].get(name)
        if entry is None:
            raise RegistryError(f"no model named {name!r} in {self.directory}")
        target = int(version if version is not None else entry["latest"])
        if str(target) not in entry["versions"]:
            raise RegistryError(f"{name!r} has no version {target}")
        entry["aliases"][str(alias)] = target
        self._write_manifest(document)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def record_for(self, spec: str) -> ModelRecord:
        """The manifest record a spec names (no blob I/O)."""
        name, ref = parse_spec(spec)
        document = self._read_manifest()
        entry = document["models"].get(name)
        if entry is None:
            known = ", ".join(sorted(document["models"])) or "none"
            raise RegistryError(
                f"no model named {name!r} in {self.directory} "
                f"(published: {known})"
            )
        if ref == "latest":
            version = int(entry["latest"])
        elif ref.isdigit():
            version = int(ref)
        elif ref in entry.get("aliases", {}):
            version = int(entry["aliases"][ref])
        else:
            raise RegistryError(
                f"{name!r} has no version or alias {ref!r}"
            )
        payload = entry["versions"].get(str(version))
        if payload is None:
            raise RegistryError(f"{name!r} has no version {version}")
        try:
            certificate = payload.get("certificate")
            return ModelRecord(
                name=name,
                version=int(payload["version"]),
                blob=str(payload["blob"]),
                created=str(payload["created"]),
                attributes=tuple(str(a) for a in payload["attributes"]),
                target=str(payload["target"]),
                n_leaves=int(payload["n_leaves"]),
                certificate=(
                    None if certificate is None else str(certificate)
                ),
                kind=str(payload.get("kind", "tree")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"{self.manifest_path}: malformed record for "
                f"{name}@{version}: {exc}"
            ) from None

    def resolve(self, spec: str) -> Tuple[object, ModelRecord]:
        """Load the model (tree or forest) a spec names, verifying blob
        integrity.

        A corrupt blob is quarantined by the cache layer and reported
        here as a :class:`~repro.errors.RegistryError` — serving must
        fail loudly, not fall back to a silently different model.
        """
        record = self.record_for(spec)
        model = self.cache.load_model([record.name, record.version])
        if model is None:
            raise RegistryError(
                f"blob for {record.spec} ({record.blob}) is missing or "
                "corrupt (quarantined); republish the model"
            )
        return model, record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def records(self) -> List[ModelRecord]:
        """Every published version, name-then-version ordered."""
        document = self._read_manifest()
        result: List[ModelRecord] = []
        for name in sorted(document["models"]):
            entry = document["models"][name]
            for version in sorted(entry["versions"], key=int):
                result.append(self.record_for(f"{name}@{version}"))
        return result

    def names(self) -> Dict[str, int]:
        """``{name: latest version}`` for every published name."""
        document = self._read_manifest()
        return {
            name: int(entry["latest"])
            for name, entry in sorted(document["models"].items())
        }

    def render(self) -> str:
        """Human-readable listing for ``repro cache info``."""
        try:
            records = self.records()
        except RegistryError as exc:
            return f"registry: UNREADABLE ({exc})"
        lines = [f"registry directory: {self.directory}",
                 f"published versions: {len(records)}"]
        document = self._read_manifest()
        for record in records:
            markers = []
            if record.kind != "tree":
                markers.append(record.kind)
            entry = document["models"][record.name]
            if int(entry["latest"]) == record.version:
                markers.append("latest")
            markers.extend(
                alias for alias, v in sorted(entry.get("aliases", {}).items())
                if int(v) == record.version
            )
            suffix = f" [{', '.join(markers)}]" if markers else ""
            lines.append(
                f"  {record.spec:<24} {record.n_leaves:>3} leaves  "
                f"{len(record.attributes):>3} features  "
                f"{record.created}{suffix}"
            )
        return "\n".join(lines)

"""Model serving: compiled inference, registry, batching server, metrics.

The training stack (``repro.core``) grows trees; this package answers
with them at interactive latency:

* :mod:`repro.serve.compiled` — the fitted tree flattened into
  contiguous arrays, evaluated vectorized and bit-identical to the
  interpreted walk (``M5Prime.predict`` routes through it).
* :mod:`repro.serve.registry` — named, versioned, integrity-checked
  model storage (``cpi-tree@latest``) on the artifact cache; publishing
  is gated by the static verifier (:mod:`repro.verify`) and stores the
  verification certificate beside each blob.
* :mod:`repro.serve.batching` — request coalescing with per-request
  deadlines.
* :mod:`repro.serve.server` — the stdlib HTTP surface
  (``/predict``, ``/explain``, ``/models``, ``/healthz``, ``/metrics``).
* :mod:`repro.serve.drift` — online out-of-range, non-finite-input,
  invariant, and certified-prediction-bound monitoring of scored
  traffic.
* :mod:`repro.serve.check` — the ``repro serve --check`` preflight
  (including static verification of every resolved artifact).
* :mod:`repro.serve.fleet` / :mod:`repro.serve.supervisor` — the
  supervised multi-process fleet: a front router (or ``SO_REUSEPORT``
  sharing) over N forked workers, health-checked and restarted with
  backoff, a circuit breaker for degraded mode, load shedding, and
  zero-downtime alias rollouts.
* :mod:`repro.serve.loadtest` — the ``repro loadtest`` sustained-RPS
  generator and its latency-percentile report.
"""

from repro.serve.batching import BatchQueue
from repro.serve.check import CheckResult, preflight, render_preflight
from repro.serve.compiled import CompiledTree, compile_tree
from repro.serve.drift import DriftMonitor
from repro.serve.fleet import FleetConfig, ServingFleet
from repro.serve.loadtest import LoadTestResult, run_loadtest
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.registry import ModelRecord, ModelRegistry, parse_spec
from repro.serve.server import SCHEMA, ModelServer
from repro.serve.supervisor import Supervisor, WorkerSlot

__all__ = [
    "BatchQueue",
    "CheckResult",
    "CompiledTree",
    "Counter",
    "DriftMonitor",
    "FleetConfig",
    "Gauge",
    "Histogram",
    "LoadTestResult",
    "MetricsRegistry",
    "ModelRecord",
    "ModelRegistry",
    "ModelServer",
    "SCHEMA",
    "ServingFleet",
    "Supervisor",
    "WorkerSlot",
    "compile_tree",
    "parse_spec",
    "preflight",
    "render_preflight",
    "run_loadtest",
]

"""Model serving: compiled inference, registry, batching server, metrics.

The training stack (``repro.core``) grows trees; this package answers
with them at interactive latency:

* :mod:`repro.serve.compiled` — the fitted tree flattened into
  contiguous arrays, evaluated vectorized and bit-identical to the
  interpreted walk (``M5Prime.predict`` routes through it).
* :mod:`repro.serve.forest` — an entire :class:`BaggedM5` ensemble
  flattened into one arena with per-tree offsets: all trees
  batch-predicted in a single pass (bit-identical to member-by-member),
  plus the CSR leaf-indicator matrix (``BaggedM5.predict`` routes
  through it).
* :mod:`repro.serve.refine` — RefinedRandomForest-style global leaf
  re-weighting with iterative prune-and-refit over the indicator
  matrix; the refined predictor stays per-leaf inspectable.
* :mod:`repro.serve.forest_io` — the ``repro-forest`` JSON schema and
  the format-dispatching ``load_any_model`` used by the cache and
  registry.
* :mod:`repro.serve.registry` — named, versioned, integrity-checked
  model storage (``cpi-tree@latest``) on the artifact cache; publishing
  is gated by the static verifier (:mod:`repro.verify`) and stores the
  verification certificate beside each blob.
* :mod:`repro.serve.batching` — request coalescing with per-request
  deadlines.
* :mod:`repro.serve.server` — the stdlib HTTP surface
  (``/predict``, ``/explain``, ``/models``, ``/healthz``, ``/metrics``).
* :mod:`repro.serve.drift` — online out-of-range, non-finite-input,
  invariant, and certified-prediction-bound monitoring of scored
  traffic.
* :mod:`repro.serve.check` — the ``repro serve --check`` preflight
  (including static verification of every resolved artifact).
* :mod:`repro.serve.fleet` / :mod:`repro.serve.supervisor` — the
  supervised multi-process fleet: a front router (or ``SO_REUSEPORT``
  sharing) over N forked workers, health-checked and restarted with
  backoff, a circuit breaker for degraded mode, load shedding, and
  zero-downtime alias rollouts.
* :mod:`repro.serve.loadtest` — the ``repro loadtest`` sustained-RPS
  generator and its latency-percentile report.
"""

from repro.serve.batching import BatchQueue
from repro.serve.check import CheckResult, preflight, render_preflight
from repro.serve.compiled import CompiledTree, compile_tree
from repro.serve.drift import DriftMonitor
from repro.serve.fleet import FleetConfig, ServingFleet
from repro.serve.forest import CompiledForest, LeafIndicator, compile_forest
from repro.serve.forest_io import (
    forest_from_dict,
    forest_to_dict,
    load_any_model,
    load_forest,
    loads_any_model,
    loads_forest,
    save_forest,
)
from repro.serve.loadtest import LoadTestResult, run_loadtest
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.refine import RefinedForest, RefinedWeights, refined_predict
from repro.serve.registry import ModelRecord, ModelRegistry, parse_spec
from repro.serve.server import SCHEMA, ModelServer
from repro.serve.supervisor import Supervisor, WorkerSlot

__all__ = [
    "BatchQueue",
    "CheckResult",
    "CompiledForest",
    "CompiledTree",
    "Counter",
    "DriftMonitor",
    "FleetConfig",
    "Gauge",
    "Histogram",
    "LeafIndicator",
    "LoadTestResult",
    "MetricsRegistry",
    "ModelRecord",
    "ModelRegistry",
    "ModelServer",
    "RefinedForest",
    "RefinedWeights",
    "SCHEMA",
    "ServingFleet",
    "Supervisor",
    "WorkerSlot",
    "compile_forest",
    "compile_tree",
    "forest_from_dict",
    "forest_to_dict",
    "load_any_model",
    "load_forest",
    "loads_any_model",
    "loads_forest",
    "parse_spec",
    "preflight",
    "refined_predict",
    "render_preflight",
    "run_loadtest",
    "save_forest",
]

"""``repro loadtest``: a sustained-RPS generator with an honest report.

The fleet's availability claims are stated as an SLO — "with one worker
killed mid-run, ≥ 99% of requests succeed, the remainder are shed 503s
with ``Retry-After``, and no connection resets" — and a claim that is
not measured is a hope.  This module measures it.

The generator is **open-loop**: request ``i`` of an ``rps``-rate run is
scheduled at ``start + i/rps`` regardless of how earlier requests fared,
so a slow server faces mounting concurrency exactly as real traffic
would (a closed loop would politely slow down and hide the problem).  A
fixed thread pool works through the schedule; a request whose slot has
passed fires immediately, and the report's ``achieved_rps`` says how
close the run came to its target.

Every request opens a **fresh connection**.  Keep-alive would be
faster, but a worker crash then surfaces as an ambiguous
``RemoteDisconnected`` on a pooled socket; with one connection per
request, every transport failure is a real reset the router let
through, so the ``resets`` count is trustworthy — and the SLO demands
it be zero.

Outcome taxonomy:

* ``succeeded`` — HTTP 200, latency recorded;
* ``shed`` — HTTP 503 (deadline, overload, draining, degraded): the
  service protecting itself, acceptable within the SLO *if* the
  response carries ``Retry-After`` (tracked separately);
* ``failed`` — any other HTTP status: a bug, never acceptable;
* ``resets`` — transport-level failures (refused, reset, timeout).

Row selection is seeded, so two runs against bit-identical fleets score
bit-identical inputs.  Reports use the shared ``repro-report`` envelope
(kind ``loadtest``) so CI tooling parses them like lint and conformance
output; ``benchmarks/loadtest_slo.json`` pins the gate thresholds.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

__all__ = ["LoadTestResult", "run_loadtest", "render_result"]

#: Report percentiles (nearest-rank on the sorted success latencies).
PERCENTILES = (50, 90, 99)


@dataclass
class LoadTestResult:
    """One load run's outcome counts, latencies, and SLO verdict inputs."""

    requests: int
    succeeded: int
    shed: int
    shed_with_retry_after: int
    failed: int
    resets: int
    duration_s: float
    target_rps: float
    latencies_ms: List[float] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.requests if self.requests else 0.0

    @property
    def achieved_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def percentile_ms(self, p: float) -> Optional[float]:
        """Nearest-rank percentile of success latencies, or None."""
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        rank = max(1, int(np.ceil(p / 100.0 * len(ordered))))
        return ordered[rank - 1]

    def slo_ok(self, min_success_rate: float = 0.99) -> bool:
        """The fleet SLO: enough successes, clean sheds, zero resets."""
        return (
            self.requests > 0
            and self.success_rate >= min_success_rate
            and self.failed == 0
            and self.resets == 0
            and self.shed_with_retry_after == self.shed
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "succeeded": self.succeeded,
            "shed": self.shed,
            "shed_with_retry_after": self.shed_with_retry_after,
            "failed": self.failed,
            "resets": self.resets,
            "success_rate": self.success_rate,
            "duration_s": self.duration_s,
            "target_rps": self.target_rps,
            "achieved_rps": self.achieved_rps,
            "latency_ms": {
                **{
                    f"p{p}": self.percentile_ms(p) for p in PERCENTILES
                },
                "max": max(self.latencies_ms) if self.latencies_ms else None,
            },
            "status_counts": dict(sorted(self.status_counts.items())),
            "errors": self.errors[:10],
        }


def _percent(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.2f}%" if whole else "n/a"


def render_result(result: LoadTestResult, slo: float) -> str:
    """Terminal rendering with the SLO verdict on the last line."""
    lines = [
        f"loadtest: {result.requests} requests over "
        f"{result.duration_s:.1f}s (target {result.target_rps:g} rps, "
        f"achieved {result.achieved_rps:.1f})",
        f"  succeeded {result.succeeded} "
        f"({_percent(result.succeeded, result.requests)})   "
        f"shed {result.shed} "
        f"(with Retry-After: {result.shed_with_retry_after})   "
        f"failed {result.failed}   resets {result.resets}",
    ]
    if result.latencies_ms:
        parts = []
        for p in PERCENTILES:
            value = result.percentile_ms(p)
            parts.append(f"p{p} {value:.2f}ms")
        parts.append(f"max {max(result.latencies_ms):.2f}ms")
        lines.append("  latency " + "  ".join(parts))
    for error in result.errors[:5]:
        lines.append(f"  error: {error}")
    verdict = "met" if result.slo_ok(slo) else "MISSED"
    lines.append(
        f"SLO (success ≥ {100 * slo:g}%, zero failures, zero resets, "
        f"all sheds carry Retry-After): {verdict}"
    )
    return "\n".join(lines)


def _classify(
    host: str, port: int, path: str, body: bytes, timeout: float
) -> Tuple[str, Optional[float], Optional[str], bool]:
    """Fire one request; returns (outcome, latency_ms, error, retry_after).

    Outcomes: ``ok`` / ``shed`` / ``failed`` / ``reset``; ``retry_after``
    reports whether a 503 carried the header.
    """
    started = time.perf_counter()
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request(
                "POST", path, body=body,
                headers={
                    "Content-Type": "application/json",
                    "Connection": "close",
                },
            )
            response = conn.getresponse()
            response.read()
            latency_ms = 1000.0 * (time.perf_counter() - started)
            if response.status == 200:
                return "ok", latency_ms, None, False
            if response.status == 503:
                has_header = response.getheader("Retry-After") is not None
                return "shed", None, f"503:{response.status}", has_header
            return "failed", None, f"status {response.status}", False
        finally:
            conn.close()
    except (OSError, http.client.HTTPException) as exc:
        return "reset", None, f"{type(exc).__name__}: {exc}", False


def run_loadtest(
    host: str,
    port: int,
    sections: Sequence[Sequence[float]],
    rps: float = 200.0,
    duration_s: float = 10.0,
    concurrency: int = 16,
    timeout_s: float = 5.0,
    model: Optional[str] = None,
    seed: int = 0,
    path: str = "/predict",
) -> LoadTestResult:
    """Drive ``/predict`` at a sustained rate and tally the outcomes.

    Args:
        host, port: The fleet (or single server) front door.
        sections: Candidate feature rows; each request scores one,
            chosen by a seeded generator.
        rps: Open-loop request rate.
        duration_s: Run length; ``round(rps * duration_s)`` requests.
        concurrency: Worker threads draining the schedule.
        timeout_s: Per-request client timeout (a timeout counts as a
            reset — the service failed to answer).
        model: Optional model spec included in each payload.
        seed: Row-selection seed.
        path: Endpoint to hit (``/predict`` unless testing something
            else deliberately).
    """
    if rps <= 0:
        raise ConfigError(f"rps must be positive, got {rps}")
    if duration_s <= 0:
        raise ConfigError(f"duration_s must be positive, got {duration_s}")
    if concurrency < 1:
        raise ConfigError(f"concurrency must be >= 1, got {concurrency}")
    rows = [list(map(float, row)) for row in sections]
    if not rows:
        raise ConfigError("loadtest needs at least one candidate section")
    total = max(1, int(round(rps * duration_s)))
    rng = np.random.default_rng(seed)
    choices = rng.integers(0, len(rows), size=total)
    bodies = []
    for i in range(total):
        payload: Dict[str, object] = {"section": rows[int(choices[i])]}
        if model is not None:
            payload["model"] = model
        bodies.append(json.dumps(payload).encode("utf-8"))

    lock = threading.Lock()
    counts = {"ok": 0, "shed": 0, "failed": 0, "reset": 0}
    shed_with_header = 0
    latencies: List[float] = []
    errors: List[str] = []
    status_counts: Dict[str, int] = {}
    next_index = [0]
    start = time.perf_counter()

    def worker() -> None:
        nonlocal shed_with_header
        while True:
            with lock:
                i = next_index[0]
                if i >= total:
                    return
                next_index[0] = i + 1
            # Open loop: wait for this request's slot, never longer.
            slot = start + i / rps
            delay = slot - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            outcome, latency_ms, error, has_header = _classify(
                host, port, path, bodies[i], timeout_s
            )
            with lock:
                counts[outcome] += 1
                if outcome == "ok" and latency_ms is not None:
                    latencies.append(latency_ms)
                if outcome == "shed":
                    status_counts["503"] = status_counts.get("503", 0) + 1
                    if has_header:
                        shed_with_header += 1
                elif outcome == "ok":
                    status_counts["200"] = status_counts.get("200", 0) + 1
                elif error is not None and len(errors) < 50:
                    errors.append(error)

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    return LoadTestResult(
        requests=total,
        succeeded=counts["ok"],
        shed=counts["shed"],
        shed_with_retry_after=shed_with_header,
        failed=counts["failed"],
        resets=counts["reset"],
        duration_s=elapsed,
        target_rps=rps,
        latencies_ms=latencies,
        status_counts=status_counts,
        errors=errors,
    )

"""Static verification of compiled model artifacts.

A bytecode-verifier analogue for M5' trees: the compiled arena
(:class:`~repro.serve.compiled.CompiledTree`) is treated as an IR and
proved well-formed — and its semantics bounded — *before* it serves
traffic, without running a single prediction.

Two layers (the ``VERIFY001``–``VERIFY008`` rule family):

* **Structural** (:mod:`repro.verify.structural`): index bounds, CSR
  layout, single-parent/acyclic/fully-reachable graph shape, leaf-id
  bijection, finite thresholds and coefficients.
* **Abstract interpretation** (:mod:`repro.verify.abstract`): per-path
  interval boxes detect dead branches (against the training domain and
  the Table I counter invariants), uncovered or overlapping input
  regions, pinned-feature coefficients, and per-leaf output bounds
  through the smoothing chain.

A clean run over a range-carrying model yields a
:class:`~repro.verify.certificate.VerificationCertificate` — feasible
box plus output interval per leaf — which the registry stores beside
the blob, the drift monitor enforces online, and the conformance
harness cross-checks empirically.

Ensembles get :func:`~repro.verify.forest.verify_forest`: arena-offset
and leaf-column-bijection checks plus refined-weight audits (the
``FOREST00x`` ids shared with the lint family), then the full
single-tree verifier over every member with ``tree[i]``-prefixed
locations.  Forests are never certified.

Usage::

    from repro.verify import verify_model
    result = verify_model(model)
    assert result.ok, result.summary()
    certificate = result.certificate    # None without feature_ranges_
"""

from repro.verify.abstract import AbstractAnalysis, LeafAnalysis, analyze
from repro.verify.forest import verify_forest
from repro.verify.certificate import (
    CERTIFICATE_SCHEMA,
    LeafCertificate,
    VerificationCertificate,
)
from repro.verify.intervals import (
    Box,
    Interval,
    OUTPUT_SLACK,
    full_box,
    linear_model_interval,
    smooth_interval,
    widen,
)
from repro.verify.runner import (
    N_VERIFY_RULES,
    VerificationResult,
    verify_arena,
    verify_model,
)
from repro.verify.structural import reachable_nodes, verify_structure

__all__ = [
    "AbstractAnalysis",
    "Box",
    "CERTIFICATE_SCHEMA",
    "Interval",
    "LeafAnalysis",
    "LeafCertificate",
    "N_VERIFY_RULES",
    "OUTPUT_SLACK",
    "VerificationCertificate",
    "VerificationResult",
    "analyze",
    "full_box",
    "linear_model_interval",
    "reachable_nodes",
    "smooth_interval",
    "verify_arena",
    "verify_forest",
    "verify_model",
    "verify_structure",
    "widen",
]

"""Layer 1 of the static model verifier: structural checks.

A :class:`~repro.serve.compiled.CompiledTree` is trusted IR for the
serving stack — routing indexes arrays with whatever the ``left`` /
``right`` columns contain, so a corrupt arena does not crash, it
*misroutes silently*.  This module proves the arena is a well-formed
binary tree before anything downstream reasons about its semantics:

* ``VERIFY001`` — arena well-formedness: array lengths agree, split
  features and child/term indices are in range, ``term_offset`` is a
  monotone CSR ramp, parents mirror children, ``max_depth`` does not
  understate the real depth (routing iterates exactly ``max_depth``
  times, so an understated bound strands rows mid-tree).
* ``VERIFY002`` — graph shape: exactly one root, every non-root node
  has exactly one parent edge, no cycles, no orphans unreachable from
  the root.
* ``VERIFY003`` — leaf-id bijection: reachable leaves carry the paper's
  ``LM1..LMk`` numbering exactly once each; interior nodes carry 0.
* ``VERIFY004`` — finiteness: split thresholds are finite (a NaN
  threshold routes every row right, silently), model intercepts and
  coefficients are finite, every reachable leaf carries a model, and
  smoothing weights are finite and non-negative.

All checks are pure array inspection — no predictions are run — and
each is hardened against the very corruption it reports, so a broken
arena yields diagnostics, never an exception.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set, Tuple

import numpy as np

from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # break the serve <-> verify import cycle
    from repro.serve.compiled import CompiledTree

__all__ = [
    "reachable_nodes",
    "verify_structure",
]


def _error(rule_id: str, message: str, location: str = "") -> Diagnostic:
    return Diagnostic(
        rule_id=rule_id, severity=Severity.ERROR,
        message=message, location=location,
    )


def _warning(rule_id: str, message: str, location: str = "") -> Diagnostic:
    return Diagnostic(
        rule_id=rule_id, severity=Severity.WARNING,
        message=message, location=location,
    )


def _node_location(compiled: CompiledTree, node: int) -> str:
    if 0 <= node < compiled.n_nodes and compiled.feature[node] < 0:
        return f"node {node} (leaf LM{int(compiled.leaf_id[node])})"
    return f"node {node}"


def reachable_nodes(compiled: CompiledTree) -> Set[int]:
    """Node indices reachable from the root by valid child edges.

    Follows only in-range child pointers and never revisits a node, so
    it terminates on any arena, cyclic or not.
    """
    n = compiled.n_nodes
    if n == 0:
        return set()
    seen: Set[int] = set()
    stack = [0]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if compiled.feature[node] >= 0:
            for child in (int(compiled.left[node]), int(compiled.right[node])):
                if 0 <= child < n and child not in seen:
                    stack.append(child)
    return seen


def _check_arena(compiled: CompiledTree) -> List[Diagnostic]:
    """VERIFY001: shapes, index ranges, CSR layout, parents, depth."""
    findings: List[Diagnostic] = []
    n = compiled.n_nodes
    if n == 0:
        findings.append(_error("VERIFY001", "arena has no nodes"))
        return findings
    per_node = {
        "threshold": compiled.threshold,
        "left": compiled.left,
        "right": compiled.right,
        "parent": compiled.parent,
        "leaf_id": compiled.leaf_id,
        "n_instances": compiled.n_instances,
        "has_model": compiled.has_model,
        "intercept": compiled.intercept,
    }
    for name, array in per_node.items():
        if array.shape[0] != n:
            findings.append(_error(
                "VERIFY001",
                f"array {name!r} has length {array.shape[0]}, "
                f"expected {n} (one entry per node)",
            ))
    offsets = compiled.term_offset
    if offsets.shape[0] != n + 1:
        findings.append(_error(
            "VERIFY001",
            f"term_offset has length {offsets.shape[0]}, expected {n + 1}",
        ))
    else:
        if offsets[0] != 0:
            findings.append(_error(
                "VERIFY001",
                f"term_offset must start at 0, starts at {int(offsets[0])}",
            ))
        if np.any(np.diff(offsets) < 0):
            at = int(np.flatnonzero(np.diff(offsets) < 0)[0])
            findings.append(_error(
                "VERIFY001",
                "term_offset is not monotone non-decreasing "
                f"(decreases at node {at})",
            ))
        n_terms = compiled.term_feature.shape[0]
        if int(offsets[-1]) != n_terms:
            findings.append(_error(
                "VERIFY001",
                f"term_offset ends at {int(offsets[-1])} but there are "
                f"{n_terms} term entries",
            ))
    if compiled.term_coefficient.shape[0] != compiled.term_feature.shape[0]:
        findings.append(_error(
            "VERIFY001",
            f"term_coefficient has {compiled.term_coefficient.shape[0]} "
            f"entries but term_feature has {compiled.term_feature.shape[0]}",
        ))
    if findings:
        # Shape damage makes per-node indexing unsafe; stop here.
        return findings

    bad_term = (compiled.term_feature < 0) | (
        compiled.term_feature >= compiled.n_features
    )
    for position in np.flatnonzero(bad_term):
        findings.append(_error(
            "VERIFY001",
            f"model term {int(position)} references feature "
            f"{int(compiled.term_feature[position])}, out of range for "
            f"{compiled.n_features} features",
        ))
    is_split = compiled.feature >= 0
    bad_feature = is_split & (compiled.feature >= compiled.n_features)
    for node in np.flatnonzero(bad_feature):
        findings.append(_error(
            "VERIFY001",
            f"split tests feature {int(compiled.feature[node])}, out of "
            f"range for {compiled.n_features} features",
            _node_location(compiled, int(node)),
        ))
    for node in np.flatnonzero(is_split):
        for side in ("left", "right"):
            child = int(getattr(compiled, side)[node])
            if child >= n or child < -1:
                findings.append(_error(
                    "VERIFY001",
                    f"{side} child index {child} is out of range for "
                    f"{n} nodes",
                    _node_location(compiled, int(node)),
                ))
            elif child == int(node):
                findings.append(_error(
                    "VERIFY001",
                    f"{side} child points back at the node itself",
                    _node_location(compiled, int(node)),
                ))
    for node in np.flatnonzero(~is_split):
        if int(compiled.left[node]) != -1 or int(compiled.right[node]) != -1:
            findings.append(_error(
                "VERIFY001",
                "leaf carries child pointers "
                f"(left={int(compiled.left[node])}, "
                f"right={int(compiled.right[node])})",
                _node_location(compiled, int(node)),
            ))
    # Parent pointers must mirror the child edges (smoothing walks them).
    for node in np.flatnonzero(is_split):
        for side in ("left", "right"):
            child = int(getattr(compiled, side)[node])
            if 0 <= child < n and int(compiled.parent[child]) != int(node):
                findings.append(_error(
                    "VERIFY001",
                    f"parent[{child}] = {int(compiled.parent[child])} but "
                    f"node {int(node)} lists it as its {side} child",
                ))
    if int(compiled.parent[0]) != -1:
        findings.append(_error(
            "VERIFY001",
            f"root node 0 has parent {int(compiled.parent[0])}, expected -1",
        ))
    depth = _actual_depth(compiled)
    if depth > compiled.max_depth:
        findings.append(_error(
            "VERIFY001",
            f"max_depth is {compiled.max_depth} but a root-to-leaf path of "
            f"depth {depth} exists; routing stops after max_depth levels "
            "and would strand rows at an interior node",
        ))
    return findings


def _actual_depth(compiled: CompiledTree) -> int:
    """Longest root-to-node edge count over valid edges (cycle-safe)."""
    n = compiled.n_nodes
    depth = 0
    seen: Set[int] = set()
    stack: List[Tuple[int, int]] = [(0, 0)]
    while stack:
        node, d = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        depth = max(depth, d)
        if compiled.feature[node] >= 0:
            for child in (int(compiled.left[node]), int(compiled.right[node])):
                if 0 <= child < n and child not in seen:
                    stack.append((child, d + 1))
    return depth


def _check_graph(compiled: CompiledTree) -> List[Diagnostic]:
    """VERIFY002: single-parent edges, acyclicity, full reachability."""
    findings: List[Diagnostic] = []
    n = compiled.n_nodes
    in_degree = np.zeros(n, dtype=np.int64)
    for node in np.flatnonzero(compiled.feature >= 0):
        for child in (int(compiled.left[node]), int(compiled.right[node])):
            if 0 <= child < n:
                in_degree[child] += 1
    if in_degree[0] > 0:
        findings.append(_error(
            "VERIFY002",
            f"root node 0 is listed as a child of another node "
            f"({int(in_degree[0])} incoming edge(s)) — the arena has a "
            "cycle or a second entry point",
        ))
    for node in np.flatnonzero(in_degree > 1):
        if node == 0:
            continue
        findings.append(_error(
            "VERIFY002",
            f"node has {int(in_degree[node])} parents; the arena is a DAG "
            "or cyclic, not a tree",
            _node_location(compiled, int(node)),
        ))
    reached = reachable_nodes(compiled)
    for node in range(n):
        if node not in reached:
            findings.append(_error(
                "VERIFY002",
                "node is unreachable from the root (orphaned)",
                _node_location(compiled, int(node)),
            ))
    return findings


def _check_leaf_ids(compiled: CompiledTree) -> List[Diagnostic]:
    """VERIFY003: reachable leaves number LM1..LMk exactly once each."""
    findings: List[Diagnostic] = []
    reached = sorted(reachable_nodes(compiled))
    leaves = [n for n in reached if compiled.feature[n] < 0]
    for node in reached:
        if compiled.feature[node] >= 0 and int(compiled.leaf_id[node]) != 0:
            findings.append(_error(
                "VERIFY003",
                f"interior node carries leaf id {int(compiled.leaf_id[node])}"
                " (must be 0)",
                _node_location(compiled, node),
            ))
    ids = [int(compiled.leaf_id[n]) for n in leaves]
    expected = list(range(1, len(leaves) + 1))
    if sorted(ids) != expected:
        findings.append(_error(
            "VERIFY003",
            f"reachable leaf ids {sorted(ids)} are not the bijection "
            f"LM1..LM{len(leaves)}",
        ))
    return findings


def _check_finiteness(compiled: CompiledTree) -> List[Diagnostic]:
    """VERIFY004: thresholds, models, and weights are finite numbers."""
    findings: List[Diagnostic] = []
    is_split = compiled.feature >= 0
    for node in np.flatnonzero(is_split):
        t = compiled.threshold[node]
        if not np.isfinite(t):
            findings.append(_error(
                "VERIFY004",
                f"split threshold is {t!r}; NaN comparisons are false, so "
                "every row would silently route right",
                _node_location(compiled, int(node)),
            ))
    for node in np.flatnonzero(compiled.has_model):
        if not np.isfinite(compiled.intercept[node]):
            findings.append(_error(
                "VERIFY004",
                f"model intercept is {compiled.intercept[node]!r}",
                _node_location(compiled, int(node)),
            ))
        start = int(compiled.term_offset[node])
        stop = int(compiled.term_offset[node + 1])
        for position in range(start, stop):
            c = compiled.term_coefficient[position]
            if not np.isfinite(c):
                findings.append(_error(
                    "VERIFY004",
                    f"model coefficient on feature "
                    f"{int(compiled.term_feature[position])} is {c!r}",
                    _node_location(compiled, int(node)),
                ))
    for node in sorted(reachable_nodes(compiled)):
        if compiled.feature[node] < 0 and not compiled.has_model[node]:
            findings.append(_error(
                "VERIFY004",
                "reachable leaf carries no linear model; prediction "
                "would raise at serve time",
                _node_location(compiled, node),
            ))
        n_inst = compiled.n_instances[node]
        if not np.isfinite(n_inst) or n_inst < 0:
            findings.append(_error(
                "VERIFY004",
                f"n_instances is {n_inst!r}; smoothing weights must be "
                "finite and non-negative",
                _node_location(compiled, node),
            ))
        elif n_inst == 0 and compiled.feature[node] < 0:
            findings.append(_warning(
                "VERIFY004",
                "leaf has n_instances == 0; its smoothed prediction "
                "collapses entirely onto ancestor models",
                _node_location(compiled, node),
            ))
    return findings


def verify_structure(compiled: CompiledTree) -> List[Diagnostic]:
    """Run all layer-1 checks; empty result means structurally sound.

    ``VERIFY001`` findings short-circuit the graph-level checks — when
    array shapes or index ranges are broken, traversal-based reasoning
    about the same arrays would report noise on top of the real defect.
    """
    findings = _check_arena(compiled)
    if any(d.rule_id == "VERIFY001" for d in findings):
        return findings
    findings.extend(_check_graph(compiled))
    findings.extend(_check_leaf_ids(compiled))
    findings.extend(_check_finiteness(compiled))
    return findings

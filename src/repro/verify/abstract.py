"""Layer 2 of the static model verifier: interval abstract interpretation.

With the arena structurally sound (layer 1, :mod:`repro.verify.structural`),
this layer reasons about what the tree *computes* — still without running
a single prediction.  One :class:`~repro.verify.intervals.Box` per path
is propagated from the root: the left branch of ``x[f] <= t`` clamps the
feature's upper bound to ``t``, the right branch raises the (strict)
lower bound.  From the per-leaf boxes the analysis derives:

* ``VERIFY005`` — dead branches: a path whose box is empty, or whose box
  violates a Table I counter invariant everywhere (no physically
  possible input reaches the leaf).  Only the topmost dead node is
  reported; its subtree is implied.
* ``VERIFY006`` — domain partition: a split child that does not exist
  (rows routed into nothing), or two live leaves whose feasible regions
  overlap (the tree is ambiguous about which model answers).
* ``VERIFY007`` — a leaf-model coefficient on a feature the path pins to
  a single value: the term is a constant in disguise, so the
  interpretability story ("this counter drives CPI here") is false.
* ``VERIFY008`` — unbounded predictions: a certified output interval
  with a non-finite endpoint, an ancestor model missing on the smoothing
  chain, or (as a warning) no ``feature_ranges_`` to bound anything with.

Per-leaf output intervals come from closed-interval arithmetic over the
leaf linear model, blended leaf-to-root through the same smoothing
recurrence the compiled evaluator runs, then widened by
:data:`~repro.verify.intervals.OUTPUT_SLACK` — these become the
:class:`~repro.verify.certificate.VerificationCertificate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.counters.invariants import (
    METRIC_INVARIANTS,
    Invariant,
    _EPS,
    applicable_invariants,
)
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # break the serve <-> verify import cycle
    from repro.serve.compiled import CompiledTree
from repro.verify.intervals import (
    Box,
    Interval,
    OUTPUT_SLACK,
    full_box,
    linear_model_interval,
    smooth_interval,
    widen,
)

__all__ = ["AbstractAnalysis", "LeafAnalysis", "analyze"]


@dataclass(frozen=True)
class LeafAnalysis:
    """One live leaf: its feasible region and certified output interval.

    Attributes:
        node: Arena node index of the leaf.
        leaf_id: The paper's LM number.
        box: Feasible per-feature box (path constraints ∩ domain).
        raw: Output interval of the leaf model alone (pre-smoothing,
            pre-widening) — useful when reading the leaf equation.
        output: The certified interval: smoothed (when the model
            smooths) and widened by the float-safety slack.  Every
            runtime prediction routed to this leaf lies inside it.
    """

    node: int
    leaf_id: int
    box: Box
    raw: Interval
    output: Interval


@dataclass
class AbstractAnalysis:
    """The complete layer-2 result."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    leaves: List[LeafAnalysis] = field(default_factory=list)
    #: Topmost dead node indices (their subtrees are implied dead).
    dead_nodes: List[int] = field(default_factory=list)
    #: Whether a feature-range domain was available to bound anything.
    has_ranges: bool = False


def _feature_name(attributes: Sequence[str], index: int) -> str:
    if 0 <= index < len(attributes):
        return attributes[index]
    return f"feature {index}"


def _infeasible_invariant(
    box: Box,
    invariants: Sequence[Invariant],
    index_of: Dict[str, int],
) -> Optional[Invariant]:
    """The first invariant no point of the box can satisfy, if any.

    Mirrors :func:`repro.counters.invariants.check_dataset`: a point
    violates ``sum(lhs) <= sum(rhs) + bound`` only beyond the
    scale-aware tolerance, so a box is dead only when even its most
    favorable corner (lhs at its minimum, rhs at its maximum) violates.
    """
    for inv in invariants:
        lhs_min = sum(float(box.low[index_of[n]]) for n in inv.lhs)
        if inv.kind == "positive":
            lhs_max = sum(float(box.high[index_of[n]]) for n in inv.lhs)
            if lhs_max <= 0:
                return inv
            continue
        rhs_max = sum(float(box.high[index_of[n]]) for n in inv.rhs)
        rhs_max += inv.bound
        tolerance = _EPS * max(1.0, abs(rhs_max))
        if lhs_min > rhs_max + tolerance:
            return inv
    return None


def _dead_reason(
    box: Box,
    attributes: Sequence[str],
    invariants: Sequence[Invariant],
    index_of: Dict[str, int],
) -> Optional[str]:
    """Why no valid input reaches this box, or ``None`` if reachable."""
    empty = next(box.empty_features(), None)
    if empty is not None:
        low, high = box.low[empty], box.high[empty]
        bracket = "(" if box.low_strict[empty] else "["
        return (
            f"path constraints leave {_feature_name(attributes, empty)} "
            f"the empty interval {bracket}{low:g}, {high:g}]"
        )
    inv = _infeasible_invariant(box, invariants, index_of)
    if inv is not None:
        return (
            f"every point of the region violates counter invariant "
            f"{inv.name!r} ({inv.message})"
        )
    return None


def _output_interval(
    compiled: CompiledTree,
    leaf: int,
    box: Box,
    smoothing_k: Optional[float],
) -> Tuple[Interval, Interval, Optional[str]]:
    """``(raw, final, error)`` output bounds for one leaf over its box.

    Replays the exact ancestor chain
    :meth:`~repro.serve.compiled.CompiledTree.predict` walks, lifted to
    intervals; ``error`` is a message when the chain cannot be bounded
    (ancestor without a model on the smoothing path).
    """
    def model_interval(node: int) -> Interval:
        start = int(compiled.term_offset[node])
        stop = int(compiled.term_offset[node + 1])
        return linear_model_interval(
            float(compiled.intercept[node]),
            [int(f) for f in compiled.term_feature[start:stop]],
            [float(c) for c in compiled.term_coefficient[start:stop]],
            box,
        )

    raw = model_interval(leaf)
    current = raw
    if smoothing_k is not None:
        below = leaf
        ancestor = int(compiled.parent[below])
        while ancestor >= 0:
            if not compiled.has_model[ancestor]:
                return raw, current, (
                    f"ancestor node {ancestor} on the smoothing chain "
                    "carries no model; smoothed predictions cannot be "
                    "bounded (and would raise at serve time)"
                )
            current = smooth_interval(
                current,
                model_interval(ancestor),
                float(compiled.n_instances[below]),
                smoothing_k,
            )
            below = ancestor
            ancestor = int(compiled.parent[below])
    return raw, current, None


def analyze(
    compiled: CompiledTree,
    attributes: Sequence[str],
    feature_ranges: Optional[Sequence[Tuple[float, float]]] = None,
    smoothing_k: Optional[float] = None,
    invariants: Sequence[Invariant] = METRIC_INVARIANTS,
    slack: float = OUTPUT_SLACK,
) -> AbstractAnalysis:
    """Propagate boxes down every path and collect semantic findings.

    Args:
        compiled: A layer-1-clean arena (caller gates on
            :func:`~repro.verify.structural.verify_structure`).
        attributes: Training attribute names, for messages and for
            matching counter invariants to feature columns.
        feature_ranges: Per-feature ``(min, max)`` training domain; when
            ``None`` the domain is all of R^p, dead-branch detection
            loses the range/invariant signal, and no output bounds are
            certified (a single VERIFY008 warning says so).
        smoothing_k: The smoothing constant the model serves with, or
            ``None`` for raw leaf predictions.
        invariants: The counter-invariant table (Table I metric
            relations by default); only invariants whose columns all
            appear in ``attributes`` apply.
        slack: Relative widening applied to certified output intervals.
    """
    analysis = AbstractAnalysis(has_ranges=feature_ranges is not None)
    live = applicable_invariants(invariants, tuple(attributes))
    index_of = {name: i for i, name in enumerate(attributes)}
    domain = full_box(compiled.n_features, feature_ranges)

    # Depth-first box propagation.  Dead nodes prune their subtree: one
    # VERIFY005 per topmost dead node, exactly like a compiler reports
    # the head of an unreachable region, not every statement in it.
    stack: List[Tuple[int, Box]] = [(0, domain)]
    leaf_boxes: List[Tuple[int, Box]] = []
    while stack:
        node, box = stack.pop()
        reason = _dead_reason(box, attributes, live, index_of)
        if reason is not None:
            analysis.dead_nodes.append(node)
            location = (
                f"node {node}" if compiled.feature[node] >= 0
                else f"node {node} (leaf LM{int(compiled.leaf_id[node])})"
            )
            analysis.diagnostics.append(Diagnostic(
                rule_id="VERIFY005", severity=Severity.ERROR,
                message=f"dead branch: {reason}", location=location,
            ))
            continue
        if compiled.feature[node] < 0:
            leaf_boxes.append((node, box))
            continue
        f = int(compiled.feature[node])
        t = float(compiled.threshold[node])
        for side, child, branch_box in (
            ("left", int(compiled.left[node]), box.restrict_le(f, t)),
            ("right", int(compiled.right[node]), box.restrict_gt(f, t)),
        ):
            if child < 0:
                relation = "<=" if side == "left" else ">"
                analysis.diagnostics.append(Diagnostic(
                    rule_id="VERIFY006", severity=Severity.ERROR,
                    message=(
                        f"uncovered region: rows with "
                        f"{_feature_name(attributes, f)} {relation} {t:g} "
                        "route into a missing child"
                    ),
                    location=f"node {node}",
                ))
                continue
            stack.append((child, branch_box))

    # VERIFY006 (overlap): live leaves must tile the domain disjointly.
    leaf_boxes.sort(key=lambda pair: pair[0])
    for i, (node_a, box_a) in enumerate(leaf_boxes):
        for node_b, box_b in leaf_boxes[i + 1:]:
            if box_a.intersects(box_b):
                analysis.diagnostics.append(Diagnostic(
                    rule_id="VERIFY006", severity=Severity.ERROR,
                    message=(
                        f"feasible regions of leaf "
                        f"LM{int(compiled.leaf_id[node_a])} (node {node_a}) "
                        f"and leaf LM{int(compiled.leaf_id[node_b])} "
                        f"(node {node_b}) overlap; routing is ambiguous"
                    ),
                ))

    # VERIFY007: leaf-model terms on features the path has pinned.
    for node, box in leaf_boxes:
        start = int(compiled.term_offset[node])
        stop = int(compiled.term_offset[node + 1])
        for position in range(start, stop):
            f = int(compiled.term_feature[position])
            if box.is_point(f):
                analysis.diagnostics.append(Diagnostic(
                    rule_id="VERIFY007", severity=Severity.WARNING,
                    message=(
                        f"model term on {_feature_name(attributes, f)} "
                        f"whose feasible interval is the single point "
                        f"{float(box.low[f]):g}; the coefficient "
                        f"({float(compiled.term_coefficient[position]):g}) "
                        "is an intercept in disguise"
                    ),
                    location=(
                        f"node {node} (leaf LM{int(compiled.leaf_id[node])})"
                    ),
                ))

    # VERIFY008 + certified output intervals.
    if not analysis.has_ranges:
        analysis.diagnostics.append(Diagnostic(
            rule_id="VERIFY008", severity=Severity.WARNING,
            message=(
                "model records no feature_ranges_ (pre-range document); "
                "predictions cannot be statically bounded and no "
                "certificate can be issued — refit and republish"
            ),
        ))
    for node, box in leaf_boxes:
        raw, final, error = _output_interval(
            compiled, node, box, smoothing_k
        )
        location = f"node {node} (leaf LM{int(compiled.leaf_id[node])})"
        if error is not None:
            analysis.diagnostics.append(Diagnostic(
                rule_id="VERIFY008", severity=Severity.ERROR,
                message=error, location=location,
            ))
            continue
        output = widen(final, slack)
        if analysis.has_ranges and not (
            np.isfinite(output[0]) and np.isfinite(output[1])
        ):
            analysis.diagnostics.append(Diagnostic(
                rule_id="VERIFY008", severity=Severity.ERROR,
                message=(
                    f"certified output interval [{output[0]!r}, "
                    f"{output[1]!r}] is not finite despite a bounded "
                    "input domain"
                ),
                location=location,
            ))
            continue
        analysis.leaves.append(LeafAnalysis(
            node=node,
            leaf_id=int(compiled.leaf_id[node]),
            box=box,
            raw=raw,
            output=output,
        ))
    return analysis

"""Machine-checkable verification certificates.

A :class:`VerificationCertificate` is the verifier's positive output:
not just "no findings", but a statement any downstream consumer can
re-check without re-running the analysis — per live leaf, the feasible
input box and a closed output interval that every runtime prediction
routed to that leaf is guaranteed to fall in, plus a whole-model output
interval (the union hull).  The registry stores it beside the model blob
(``cert-<digest>.json``), ``repro serve`` hands the bounds to the
:class:`~repro.serve.drift.DriftMonitor` so out-of-range *predictions*
are flagged like out-of-range inputs, and the conformance harness
asserts the bounds empirically on 10k-row batches.

Certificates are only issued for models with recorded
``feature_ranges_`` and zero ERROR findings: every number in the
document is finite, so the JSON round trip is exact and portable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.verify.abstract import LeafAnalysis

__all__ = [
    "CERTIFICATE_SCHEMA",
    "LeafCertificate",
    "VerificationCertificate",
]

#: Certificate document identity; bump on incompatible changes.
CERTIFICATE_SCHEMA = "repro-verify-cert/1"


@dataclass(frozen=True)
class LeafCertificate:
    """Certified facts about one live leaf.

    Attributes:
        leaf_id: The paper's LM number.
        node: Arena node index (pre-order) of the leaf.
        box: Closed per-feature ``[low, high]`` hull of the feasible
            region (the half-open path constraints are contained in it).
        output: Closed output interval containing every prediction the
            served model can produce for rows routed to this leaf.
    """

    leaf_id: int
    node: int
    box: Tuple[Tuple[float, float], ...]
    output: Tuple[float, float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "leaf_id": self.leaf_id,
            "node": self.node,
            "box": [[low, high] for low, high in self.box],
            "output": [self.output[0], self.output[1]],
        }


@dataclass(frozen=True)
class VerificationCertificate:
    """The verifier's machine-checkable summary of one model artifact.

    Attributes:
        attributes: Training attribute names, in column order — a
            consumer matching the certificate against a model checks
            these first.
        target: Target column name.
        smoothing_k: The smoothing constant the bounds account for, or
            ``None`` when the model serves raw leaf predictions.
        leaves: One :class:`LeafCertificate` per live leaf, by leaf id.
        output: Whole-model output interval (hull over all leaves).
    """

    attributes: Tuple[str, ...]
    target: str
    smoothing_k: Optional[float]
    leaves: Tuple[LeafCertificate, ...]
    output: Tuple[float, float]

    @classmethod
    def from_leaves(
        cls,
        attributes: Sequence[str],
        target: str,
        smoothing_k: Optional[float],
        leaves: Sequence[LeafAnalysis],
    ) -> "VerificationCertificate":
        """Build from the abstract analysis' live-leaf results."""
        if not leaves:
            raise DataError("cannot certify a model with no live leaves")
        certified = tuple(sorted(
            (
                LeafCertificate(
                    leaf_id=leaf.leaf_id,
                    node=leaf.node,
                    box=leaf.box.to_lists(),
                    output=(float(leaf.output[0]), float(leaf.output[1])),
                )
                for leaf in leaves
            ),
            key=lambda c: c.leaf_id,
        ))
        output = (
            min(c.output[0] for c in certified),
            max(c.output[1] for c in certified),
        )
        return cls(
            attributes=tuple(attributes),
            target=str(target),
            smoothing_k=None if smoothing_k is None else float(smoothing_k),
            leaves=certified,
            output=output,
        )

    # -- consumers ------------------------------------------------------
    def leaf(self, leaf_id: int) -> LeafCertificate:
        for certified in self.leaves:
            if certified.leaf_id == leaf_id:
                return certified
        raise DataError(f"certificate has no leaf LM{leaf_id}")

    def check_predictions(
        self, leaf_ids: np.ndarray, predictions: np.ndarray
    ) -> List[int]:
        """Row indices whose prediction escapes its leaf's certified bound.

        The empirical cross-check: route a batch, predict it, and every
        row must land inside the interval certified for its leaf.  NaN
        predictions count as violations (they are inside no interval).
        """
        leaf_ids = np.asarray(leaf_ids).ravel()
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        if leaf_ids.shape[0] != predictions.shape[0]:
            raise DataError(
                f"{leaf_ids.shape[0]} leaf ids for "
                f"{predictions.shape[0]} predictions"
            )
        low = {c.leaf_id: c.output[0] for c in self.leaves}
        high = {c.leaf_id: c.output[1] for c in self.leaves}
        bad: List[int] = []
        for row in range(predictions.shape[0]):
            leaf = int(leaf_ids[row])
            value = predictions[row]
            if leaf not in low:
                bad.append(row)
                continue
            inside = low[leaf] <= value <= high[leaf]
            if not inside:  # NaN fails every comparison -> violation
                bad.append(row)
        return bad

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CERTIFICATE_SCHEMA,
            "attributes": list(self.attributes),
            "target": self.target,
            "smoothing_k": self.smoothing_k,
            "output": [self.output[0], self.output[1]],
            "leaves": [c.to_dict() for c in self.leaves],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "VerificationCertificate":
        try:
            if document["schema"] != CERTIFICATE_SCHEMA:
                raise DataError(
                    f"not a {CERTIFICATE_SCHEMA} document "
                    f"(schema={document.get('schema')!r})"
                )
            smoothing = document["smoothing_k"]
            leaves = tuple(
                LeafCertificate(
                    leaf_id=int(payload["leaf_id"]),
                    node=int(payload["node"]),
                    box=tuple(
                        (float(low), float(high))
                        for low, high in payload["box"]
                    ),
                    output=(
                        float(payload["output"][0]),
                        float(payload["output"][1]),
                    ),
                )
                for payload in document["leaves"]
            )
            output = (
                float(document["output"][0]),
                float(document["output"][1]),
            )
            return cls(
                attributes=tuple(
                    str(a) for a in document["attributes"]
                ),
                target=str(document["target"]),
                smoothing_k=None if smoothing is None else float(smoothing),
                leaves=leaves,
                output=output,
            )
        except DataError:
            raise
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise DataError(f"malformed certificate document: {exc!r}") from None

    @classmethod
    def from_json(cls, text: str) -> "VerificationCertificate":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataError(f"certificate is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise DataError("certificate document must be a JSON object")
        return cls.from_dict(document)

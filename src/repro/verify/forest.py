"""Static verification of compiled forests.

A forest artifact can lie in more ways than a single tree: member
arenas can disagree with the offset tables, leaf columns can collide or
dangle, and a refinement pass can ship weight vectors that no longer
match the ensemble they were fitted on.  :func:`verify_forest` checks
the multi-tree arena structurally, then runs the full single-tree
verifier (:func:`repro.verify.verify_arena`) over every member with
findings location-prefixed ``tree[i]``, and finally audits any attached
refined weights.

Forest-specific findings reuse the FOREST00x ids the lint family
(:mod:`repro.lint.forest_rules`) assigns to the same defects, so an
operator sees one vocabulary whether the problem surfaced in-memory at
publish time or statically over a registry blob:

=========  ========  ====================================================
id         severity  meaning
=========  ========  ====================================================
FOREST002  ERROR     arena offsets inconsistent with the member trees
FOREST003  ERROR     refined weights/active length != total leaf count
FOREST004  ERROR     refined weights contain non-finite values
FOREST005  WARNING   a tree contributes no active leaves (dead tree)
FOREST006  WARNING   single-tree forest (bagging without aggregation)
=========  ========  ====================================================

Forests are **uncertified**: the interval certificate machinery remains
a single-tree feature, so ``certificate`` is always ``None`` here and
drift monitoring for forests runs without a certified output bound.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List

import numpy as np

from repro.errors import NotFittedError, ReproError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.verify.runner import VerificationResult, verify_arena

if TYPE_CHECKING:  # serve <-> verify stays a runtime-lazy edge
    from repro.baselines.bagging import BaggedM5
    from repro.serve.forest import CompiledForest

__all__ = ["verify_forest"]


def _structural(compiled: "CompiledForest") -> List[Diagnostic]:
    """Arena-level checks no single-tree verifier can express."""
    findings: List[Diagnostic] = []

    def error(rule_id: str, message: str) -> None:
        findings.append(Diagnostic(
            rule_id=rule_id, severity=Severity.ERROR, message=message,
        ))

    offsets = compiled.tree_offset
    leaves = compiled.leaf_offset
    if offsets.shape[0] != compiled.n_trees + 1 or offsets[0] != 0:
        error("FOREST002", (
            f"tree_offset has shape {offsets.shape} with first entry "
            f"{offsets[0] if offsets.size else 'none'}; expected "
            f"{compiled.n_trees + 1} entries starting at 0"
        ))
        return findings
    if np.any(np.diff(offsets) <= 0):
        error("FOREST002", "tree_offset is not strictly increasing")
    if int(offsets[-1]) != compiled.n_nodes:
        error("FOREST002", (
            f"tree_offset ends at {int(offsets[-1])} but the arena has "
            f"{compiled.n_nodes} nodes"
        ))
    if leaves.shape[0] != compiled.n_trees + 1 or leaves[0] != 0:
        error("FOREST002", (
            f"leaf_offset has shape {leaves.shape}; expected "
            f"{compiled.n_trees + 1} entries starting at 0"
        ))
        return findings
    if np.any(np.diff(leaves) <= 0):
        error("FOREST002", "leaf_offset is not strictly increasing")
    if int(leaves[-1]) != compiled.total_leaves:
        error("FOREST002", (
            f"leaf_offset ends at {int(leaves[-1])} but the arena has "
            f"{compiled.total_leaves} leaf columns"
        ))
    # The leaf column <-> node maps must be mutually inverse bijections
    # over exactly the arena's leaf nodes.
    leaf_nodes = np.flatnonzero(compiled.feature < 0)
    columns = compiled.leaf_col[leaf_nodes]
    if (
        leaf_nodes.shape[0] != compiled.total_leaves
        or np.any(np.sort(columns) != np.arange(compiled.total_leaves))
        or np.any(compiled.leaf_node[columns] != leaf_nodes)
    ):
        error("FOREST002", (
            "leaf_col/leaf_node do not form a bijection over the "
            "arena's leaf nodes"
        ))
    if np.any(compiled.leaf_col[compiled.feature >= 0] != -1):
        error("FOREST002", "an interior node carries a leaf column")
    return findings


def _refined(forest: "BaggedM5", compiled: "CompiledForest") -> List[Diagnostic]:
    """Audit attached refinement weights against the arena."""
    refined = getattr(forest, "refined_", None)
    if refined is None:
        return []
    findings: List[Diagnostic] = []
    total = compiled.total_leaves
    if (
        refined.weights.shape[0] != total
        or refined.active.shape[0] != total
    ):
        findings.append(Diagnostic(
            rule_id="FOREST003", severity=Severity.ERROR,
            message=(
                f"refined weights carry {refined.weights.shape[0]} "
                f"entries and {refined.active.shape[0]} active flags "
                f"for {total} forest leaves"
            ),
        ))
        return findings
    live = refined.weights[refined.active]
    if not np.all(np.isfinite(live)):
        findings.append(Diagnostic(
            rule_id="FOREST004", severity=Severity.ERROR,
            message=(
                f"{int(np.count_nonzero(~np.isfinite(live)))} active "
                f"refined weight(s) are non-finite"
            ),
        ))
    if refined.n_active == 0:
        findings.append(Diagnostic(
            rule_id="FOREST003", severity=Severity.ERROR,
            message="every refined leaf is pruned; the forest predicts 0",
        ))
    for tree in range(compiled.n_trees):
        start, stop = int(compiled.leaf_offset[tree]), int(
            compiled.leaf_offset[tree + 1]
        )
        if not np.any(refined.active[start:stop]):
            findings.append(Diagnostic(
                rule_id="FOREST005", severity=Severity.WARNING,
                message=(
                    f"tree[{tree}] contributes no active leaves after "
                    f"refinement (dead tree)"
                ),
            ))
    return findings


def verify_forest(forest: "BaggedM5") -> VerificationResult:
    """Verify a fitted ensemble end to end.

    Compilation failures become VERIFY001 diagnostics, arena-level
    defects FOREST002, per-member findings are the single-tree VERIFY
    family prefixed ``tree[i]``, and refinement defects FOREST003-005.
    ``certificate`` is always ``None`` — forests ship uncertified.
    """
    if not getattr(forest, "estimators_", ()):
        raise NotFittedError("cannot verify an unfitted forest")
    result = VerificationResult()
    try:
        compiled = forest.compiled_
    except ReproError as exc:
        result.diagnostics.append(Diagnostic(
            rule_id="VERIFY001", severity=Severity.ERROR,
            message=f"forest does not compile: {exc}",
        ))
        return result
    result.diagnostics.extend(_structural(compiled))
    if not result.ok:
        # Member verification walks the same arrays; don't pile noise
        # on top of an untrustworthy arena.
        return result
    smoothing_k = forest.smoothing_k if forest.smoothing else None
    for index, member in enumerate(forest.estimators_):
        member_result = verify_arena(
            member.compiled_,
            attributes=forest.attributes_,
            feature_ranges=forest.feature_ranges_,
            smoothing_k=smoothing_k,
            target=forest.target_name_,
        )
        prefix = f"tree[{index}]"
        for diagnostic in member_result.diagnostics:
            location = (
                f"{prefix}:{diagnostic.location}"
                if diagnostic.location
                else prefix
            )
            result.diagnostics.append(
                dataclasses.replace(diagnostic, location=location)
            )
    result.diagnostics.extend(_refined(forest, compiled))
    if compiled.n_trees == 1:
        result.diagnostics.append(Diagnostic(
            rule_id="FOREST006", severity=Severity.WARNING,
            message=(
                "forest has a single tree; bagging adds cost without "
                "aggregation benefit"
            ),
        ))
    return result

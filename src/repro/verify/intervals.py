"""Interval domain for the static model verifier.

The abstract interpretation in :mod:`repro.verify.abstract` propagates a
*box* — one interval per feature — down every path of a compiled tree
arena.  Split semantics fix the interval shape: routing tests
``x[f] <= t`` (left) versus ``x[f] > t`` (right), so a path constraint
is half-open on the low side and closed on the high side.  A
:class:`Box` therefore carries, per feature, ``(low, high)`` plus a
``low_strict`` flag: the feasible set is ``low < x <= high`` when strict
and ``low <= x <= high`` otherwise.

Output bounds use plain closed-interval arithmetic over the leaf linear
models (a closed superset of the half-open feasible set, so the bound is
conservative), blended through the same ``(n*p + k*q)/(n + k)``
smoothing recurrence the runtime evaluates.  Because the runtime works
in floating point while interval arithmetic here reasons in reals,
:func:`widen` pads every certified interval by a documented relative
slack before it is published — large against round-off, negligible
against the interval widths themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Box",
    "Interval",
    "OUTPUT_SLACK",
    "full_box",
    "linear_model_interval",
    "smooth_interval",
    "widen",
]

#: An inclusive ``[low, high]`` output interval.
Interval = Tuple[float, float]

#: Relative padding applied to certified output intervals so that
#: floating-point evaluation (which interval arithmetic over the reals
#: does not model) can never escape a published bound.  Roughly 1e7
#: ULPs — far above the round-off of the dozen-term accumulations the
#: compiled evaluator performs, far below any interval width of interest.
OUTPUT_SLACK = 1e-9


@dataclass
class Box:
    """A per-feature product of intervals (the abstract state).

    Attributes:
        low: Lower bound per feature.
        high: Upper bound per feature (always inclusive).
        low_strict: Whether the lower bound is exclusive per feature —
            true after taking a right (``x > t``) branch on the feature.
    """

    low: np.ndarray
    high: np.ndarray
    low_strict: np.ndarray

    @property
    def n_features(self) -> int:
        return int(self.low.shape[0])

    def copy(self) -> "Box":
        return Box(self.low.copy(), self.high.copy(), self.low_strict.copy())

    # -- split transfer functions --------------------------------------
    def restrict_le(self, feature: int, threshold: float) -> "Box":
        """The box after taking the left branch (``x[feature] <= t``)."""
        result = self.copy()
        if threshold < result.high[feature]:
            result.high[feature] = threshold
        return result

    def restrict_gt(self, feature: int, threshold: float) -> "Box":
        """The box after taking the right branch (``x[feature] > t``)."""
        result = self.copy()
        if threshold > result.low[feature] or (
            threshold == result.low[feature]
            and not result.low_strict[feature]
        ):
            result.low[feature] = threshold
            result.low_strict[feature] = True
        return result

    # -- predicates ----------------------------------------------------
    def empty_features(self) -> Iterator[int]:
        """Feature indices whose interval admits no value."""
        for feature in range(self.n_features):
            low, high = self.low[feature], self.high[feature]
            if high < low or (high == low and self.low_strict[feature]):
                yield int(feature)

    @property
    def is_empty(self) -> bool:
        return next(self.empty_features(), None) is not None

    def is_point(self, feature: int) -> bool:
        """True when the feature is pinned to a single value."""
        return bool(
            self.high[feature] == self.low[feature]
            and not self.low_strict[feature]
        )

    def intersects(self, other: "Box") -> bool:
        """Whether the two feasible sets share at least one point."""
        for feature in range(self.n_features):
            low = max(self.low[feature], other.low[feature])
            high = min(self.high[feature], other.high[feature])
            if high < low:
                return False
            if high == low:
                strict = (
                    (self.low[feature] == low and self.low_strict[feature])
                    or (other.low[feature] == low and other.low_strict[feature])
                )
                if strict:
                    return False
        return True

    # -- conversions ---------------------------------------------------
    def interval(self, feature: int) -> Interval:
        """The closed ``[low, high]`` superset of one feature's interval."""
        return (float(self.low[feature]), float(self.high[feature]))

    def to_lists(self) -> Tuple[Tuple[float, float], ...]:
        """Closed per-feature intervals (certificate serialization form)."""
        return tuple(
            (float(low), float(high))
            for low, high in zip(self.low, self.high)
        )


def full_box(
    n_features: int,
    feature_ranges: Optional[Sequence[Tuple[float, float]]] = None,
) -> Box:
    """The domain box: ``feature_ranges`` when known, else all of R^p."""
    if feature_ranges is not None:
        if len(feature_ranges) != n_features:
            raise ConfigError(
                f"feature_ranges has {len(feature_ranges)} entries for "
                f"{n_features} features"
            )
        low = np.array([low for low, _ in feature_ranges], dtype=np.float64)
        high = np.array([high for _, high in feature_ranges], dtype=np.float64)
    else:
        low = np.full(n_features, -np.inf)
        high = np.full(n_features, np.inf)
    return Box(low, high, np.zeros(n_features, dtype=bool))


def _scale(coefficient: float, interval: Interval) -> Interval:
    """``coefficient * interval`` with the sign-aware endpoint swap."""
    low, high = interval
    a, b = coefficient * low, coefficient * high
    if coefficient < 0:
        a, b = b, a
    # 0 * inf is NaN; a zero coefficient contributes exactly nothing.
    if coefficient == 0:
        return (0.0, 0.0)
    return (a, b)


def linear_model_interval(
    intercept: float,
    features: Sequence[int],
    coefficients: Sequence[float],
    box: Box,
) -> Interval:
    """Output range of ``intercept + sum(c_j * x[f_j])`` over the box."""
    low = high = float(intercept)
    for feature, coefficient in zip(features, coefficients):
        a, b = _scale(float(coefficient), box.interval(int(feature)))
        low += a
        high += b
    return (low, high)


def smooth_interval(
    below: Interval, ancestor: Interval, n_below: float, k: float
) -> Interval:
    """One step of Quinlan's smoothing blend, lifted to intervals.

    Mirrors the runtime's ``(n*p + k*q) / (n + k)`` with ``n >= 0`` and
    ``k >= 0``; both weights are non-negative so the blend is monotone
    in each operand and endpoints map to endpoints.
    """
    total = n_below + k
    if total <= 0:
        raise ConfigError(
            f"smoothing weights must be positive, got n={n_below} k={k}"
        )
    return (
        (n_below * below[0] + k * ancestor[0]) / total,
        (n_below * below[1] + k * ancestor[1]) / total,
    )


def widen(interval: Interval, slack: float = OUTPUT_SLACK) -> Interval:
    """Pad an interval by a relative-plus-absolute slack (outward)."""
    low, high = interval
    margin = slack * max(1.0, abs(low), abs(high))
    return (low - margin, high + margin)

"""Verifier entry points: run the layers, gate them, issue certificates.

:func:`verify_model` is the one call everything else wires in — publish,
preflight, lint, CLI, conformance.  It compiles the fitted model (a
compile failure is itself a VERIFY001 finding, not an exception), runs
the structural layer, and only if that is clean runs the abstract
interpretation — reasoning about routing semantics over an arena whose
arrays cannot be trusted would report noise on top of the real defect.

A certificate is issued only under the strongest conditions: recorded
``feature_ranges_``, zero ERROR findings, at least one live leaf.  That
keeps every certified number finite (JSON-portable) and makes the
certificate an unambiguous statement: *this artifact passed everything*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.tree.m5 import M5Prime
from repro.counters.invariants import METRIC_INVARIANTS, Invariant
from repro.errors import NotFittedError, ReproError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # break the serve <-> verify import cycle
    from repro.serve.compiled import CompiledTree
from repro.verify.abstract import analyze
from repro.verify.certificate import VerificationCertificate
from repro.verify.structural import verify_structure

__all__ = ["N_VERIFY_RULES", "VerificationResult", "verify_arena", "verify_model"]

#: The VERIFY rule family size (VERIFY001..VERIFY008).
N_VERIFY_RULES = 8


@dataclass
class VerificationResult:
    """Everything one verifier run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    certificate: Optional[VerificationCertificate] = None

    @property
    def n_errors(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def ok(self) -> bool:
        """No ERROR findings (warnings are survivable)."""
        return self.n_errors == 0

    @property
    def report(self) -> LintReport:
        """The result as a lint report (shared exit-code contract)."""
        return LintReport(
            diagnostics=list(self.diagnostics),
            families=("verify",),
            n_rules=N_VERIFY_RULES,
        )

    def summary(self) -> str:
        report = self.report
        certified = (
            f"certificate for {len(self.certificate.leaves)} leaves, "
            f"output in [{self.certificate.output[0]:g}, "
            f"{self.certificate.output[1]:g}]"
            if self.certificate is not None
            else "no certificate"
        )
        return f"{report.summary()}; {certified}"


def verify_arena(
    compiled: CompiledTree,
    attributes: Sequence[str],
    feature_ranges: Optional[Sequence[Tuple[float, float]]] = None,
    smoothing_k: Optional[float] = None,
    target: str = "Y",
    invariants: Sequence[Invariant] = METRIC_INVARIANTS,
) -> VerificationResult:
    """Verify a compiled arena directly (the low-level entry point).

    Args:
        compiled: The arena under verification.
        attributes: Training attribute names (column order).
        feature_ranges: Per-feature training ``(min, max)``; enables
            dead-branch detection against the domain and certificate
            issuance.
        smoothing_k: Smoothing constant the model serves with, or
            ``None``.
        target: Target name recorded in the certificate.
        invariants: Counter-invariant table for infeasibility reasoning.
    """
    result = VerificationResult()
    result.diagnostics.extend(verify_structure(compiled))
    structural_errors = {
        d.rule_id for d in result.diagnostics
        if d.severity is Severity.ERROR
    }
    if structural_errors & {"VERIFY001", "VERIFY002"}:
        # The arena's arrays or its graph cannot be trusted; the
        # abstract layer's traversal would be meaningless over them.
        return result
    analysis = analyze(
        compiled,
        attributes=attributes,
        feature_ranges=feature_ranges,
        smoothing_k=smoothing_k,
        invariants=invariants,
    )
    result.diagnostics.extend(analysis.diagnostics)
    if analysis.has_ranges and analysis.leaves and result.ok:
        result.certificate = VerificationCertificate.from_leaves(
            attributes=attributes,
            target=target,
            smoothing_k=smoothing_k,
            leaves=analysis.leaves,
        )
    return result


def verify_model(model: M5Prime) -> VerificationResult:
    """Verify a fitted model end to end (the high-level entry point).

    Compilation failures become VERIFY001 diagnostics — the verifier's
    contract is findings, not exceptions, for any artifact state short
    of "never fitted".
    """
    if model.root_ is None:
        raise NotFittedError("cannot verify an unfitted model")
    result = VerificationResult()
    try:
        compiled = model.compiled_
    except ReproError as exc:
        result.diagnostics.append(Diagnostic(
            rule_id="VERIFY001", severity=Severity.ERROR,
            message=f"tree does not compile: {exc}",
        ))
        return result
    return verify_arena(
        compiled,
        attributes=model.attributes_,
        feature_ranges=model.feature_ranges_,
        smoothing_k=model.smoothing_k if model.smoothing else None,
        target=model.target_name_,
    )

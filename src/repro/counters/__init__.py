"""Hardware event and derived-metric catalogue (paper Table I).

The paper describes CPI as a function of 20 per-instruction event ratios
collected on an Intel Core 2 Duo.  This package defines

* the raw PMU events (:mod:`repro.counters.events`),
* the derived per-instruction metrics with their exact Table I formulas
  (:mod:`repro.counters.metrics`), and
* the conversion from raw per-section counts to metric vectors
  (:mod:`repro.counters.derive`).
"""

from repro.counters.events import (
    ALL_EVENTS,
    EVENT_BY_NAME,
    EventSpec,
    INST_RETIRED_ANY,
)
from repro.counters.metrics import (
    ALL_METRICS,
    METRIC_BY_NAME,
    METRIC_NAMES,
    MetricSpec,
    PREDICTOR_METRICS,
    PREDICTOR_NAMES,
    STALL_METRICS,
    TARGET_METRIC,
)
from repro.counters.derive import (
    metric_row,
    metric_vector,
    sections_to_dataset,
    validate_counts,
)
from repro.counters.invariants import (
    METRIC_INVARIANTS,
    RAW_COUNT_INVARIANTS,
    Invariant,
    InvariantViolation,
    applicable_invariants,
    assert_invariants,
    check_dataset,
    check_invariants,
)

__all__ = [
    "ALL_EVENTS",
    "ALL_METRICS",
    "EVENT_BY_NAME",
    "EventSpec",
    "INST_RETIRED_ANY",
    "Invariant",
    "InvariantViolation",
    "METRIC_BY_NAME",
    "METRIC_INVARIANTS",
    "RAW_COUNT_INVARIANTS",
    "METRIC_NAMES",
    "MetricSpec",
    "PREDICTOR_METRICS",
    "PREDICTOR_NAMES",
    "STALL_METRICS",
    "TARGET_METRIC",
    "applicable_invariants",
    "assert_invariants",
    "check_dataset",
    "check_invariants",
    "metric_row",
    "metric_vector",
    "sections_to_dataset",
    "validate_counts",
]

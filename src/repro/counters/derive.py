"""Conversion from raw per-section event counts to metric vectors.

The collection pipeline (hardware PMU in the paper, the simulator here)
produces one dict of raw event counts per section.  These helpers turn
such dicts into the numeric rows the learners consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.counters import events as ev
from repro.counters.metrics import PREDICTOR_METRICS, TARGET_METRIC
from repro.errors import DataError, MissingEventError

CountMap = Mapping[str, float]


def validate_counts(counts: CountMap) -> None:
    """Check that a raw count snapshot is usable for metric derivation.

    Every event named in a metric formula must be present, counts must be
    non-negative, and the instruction denominator must be positive.
    """
    for event in ev.ALL_EVENTS:
        if event.name not in counts:
            raise MissingEventError(event.name)
    for name, value in counts.items():
        if value < 0:
            raise DataError(f"event {name!r} has negative count {value!r}")
    if counts[ev.INST_RETIRED_ANY.name] <= 0:
        raise DataError("INST_RETIRED.ANY must be positive to form ratios")


def metric_vector(counts: CountMap) -> np.ndarray:
    """Compute the 20 predictor metrics for one section, in Table I order."""
    validate_counts(counts)
    return np.array([m.compute(counts) for m in PREDICTOR_METRICS], dtype=np.float64)


def metric_row(counts: CountMap) -> Dict[str, float]:
    """Compute all metrics (CPI included) for one section as a name->value dict."""
    validate_counts(counts)
    row = {TARGET_METRIC.name: TARGET_METRIC.compute(counts)}
    for metric in PREDICTOR_METRICS:
        row[metric.name] = metric.compute(counts)
    return row


def sections_to_dataset(
    section_counts: Sequence[CountMap],
    workloads: Optional[Sequence[str]] = None,
):
    """Build a :class:`repro.datasets.Dataset` from per-section raw counts.

    Args:
        section_counts: One raw count dict per section.
        workloads: Optional per-section workload labels, stored as dataset
            metadata so analyses can group sections by benchmark.

    Returns:
        A dataset whose attributes are the 20 Table I predictors and whose
        target is CPI.
    """
    from repro.datasets.dataset import Dataset

    if not section_counts:
        raise DataError("cannot build a dataset from zero sections")
    if workloads is not None and len(workloads) != len(section_counts):
        raise DataError(
            f"{len(workloads)} workload labels for {len(section_counts)} sections"
        )

    rows: List[np.ndarray] = []
    targets: List[float] = []
    for counts in section_counts:
        validate_counts(counts)
        rows.append(metric_vector(counts))
        targets.append(TARGET_METRIC.compute(counts))

    meta = None
    if workloads is not None:
        meta = {"workload": np.asarray(workloads, dtype=object)}
    return Dataset(
        X=np.vstack(rows),
        y=np.asarray(targets, dtype=np.float64),
        attributes=tuple(m.name for m in PREDICTOR_METRICS),
        target_name=TARGET_METRIC.name,
        meta=meta,
    )


def accumulate_counts(snapshots: Iterable[CountMap]) -> Dict[str, float]:
    """Sum several raw count snapshots event-wise (merging sub-sections)."""
    total: Dict[str, float] = {}
    for snap in snapshots:
        for name, value in snap.items():
            total[name] = total.get(name, 0.0) + value
    if not total:
        raise DataError("cannot accumulate zero snapshots")
    return total

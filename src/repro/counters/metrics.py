"""Derived per-instruction metrics (paper Table I, left column).

Each :class:`MetricSpec` carries the Table I formula as both a callable on
raw counts and a human-readable string, so reports can cite the exact
event arithmetic.  ``TARGET_METRIC`` (CPI) is the dependent variable; the
20 ``PREDICTOR_METRICS`` are the independent variables of the paper's
regression problem, listed in Table I order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from repro.counters import events as ev

CountMap = Mapping[str, float]


@dataclass(frozen=True)
class MetricSpec:
    """A per-instruction metric derived from raw event counts.

    Attributes:
        name: Short metric name used as a dataset attribute (``"L2M"``).
        description: Table I description text.
        formula: Human-readable formula over raw event names.
        compute: Callable mapping a raw count dict to the metric value.
            All metrics are ratios over ``INST_RETIRED.ANY``.
    """

    name: str
    description: str
    formula: str
    compute: Callable[[CountMap], float]

    def __str__(self) -> str:
        return f"{self.name} = {self.formula}"


def _ratio(event_name: str) -> Callable[[CountMap], float]:
    """Build a compute function for ``event / INST_RETIRED.ANY``."""

    def compute(counts: CountMap) -> float:
        return counts[event_name] / counts[ev.INST_RETIRED_ANY.name]

    return compute


def _cpi(counts: CountMap) -> float:
    return counts[ev.CPU_CLK_UNHALTED_CORE.name] / counts[ev.INST_RETIRED_ANY.name]


def _br_pred(counts: CountMap) -> float:
    correct = (
        counts[ev.BR_INST_RETIRED_ANY.name] - counts[ev.BR_INST_RETIRED_MISPRED.name]
    )
    return correct / counts[ev.INST_RETIRED_ANY.name]


def _inst_other(counts: CountMap) -> float:
    any_retired = counts[ev.INST_RETIRED_ANY.name]
    accounted = (
        counts[ev.INST_RETIRED_LOADS.name]
        + counts[ev.INST_RETIRED_STORES.name]
        + counts[ev.BR_INST_RETIRED_ANY.name]
    )
    return (any_retired - accounted) / any_retired


TARGET_METRIC = MetricSpec(
    name="CPI",
    description="CPU clock cycles per instruction",
    formula="CPU_CLK_UNHALTED.CORE / INST_RETIRED.ANY",
    compute=_cpi,
)

PREDICTOR_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec(
        "InstLd",
        "Loads per instruction",
        "INST_RETIRED.LOADS / INST_RETIRED.ANY",
        _ratio(ev.INST_RETIRED_LOADS.name),
    ),
    MetricSpec(
        "InstSt",
        "Stores per instruction",
        "INST_RETIRED.STORES / INST_RETIRED.ANY",
        _ratio(ev.INST_RETIRED_STORES.name),
    ),
    MetricSpec(
        "BrMisPr",
        "Mispredicted branches per instruction",
        "BR_INST_RETIRED.MISPRED / INST_RETIRED.ANY",
        _ratio(ev.BR_INST_RETIRED_MISPRED.name),
    ),
    MetricSpec(
        "BrPred",
        "Correctly predicted branches per instruction",
        "(BR_INST_RETIRED.ANY - BR_INST_RETIRED.MISPRED) / INST_RETIRED.ANY",
        _br_pred,
    ),
    MetricSpec(
        "InstOther",
        "Non-branch and non-memory instructions per instruction",
        "(INST_RETIRED.ANY - (INST_RETIRED.LOADS + INST_RETIRED.STORES"
        " + BR_INST_RETIRED.ANY)) / INST_RETIRED.ANY",
        _inst_other,
    ),
    MetricSpec(
        "L1DM",
        "L1 data misses per instruction",
        "MEM_LOAD_RETIRED.L1D_LINE_MISS / INST_RETIRED.ANY",
        _ratio(ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name),
    ),
    MetricSpec(
        "L1IM",
        "L1 instruction misses per instruction",
        "L1I_MISSES / INST_RETIRED.ANY",
        _ratio(ev.L1I_MISSES.name),
    ),
    MetricSpec(
        "L2M",
        "L2 misses per instruction",
        "MEM_LOAD_RETIRED.L2_LINE_MISS / INST_RETIRED.ANY",
        _ratio(ev.MEM_LOAD_RETIRED_L2_LINE_MISS.name),
    ),
    MetricSpec(
        "DtlbL0LdM",
        "Lowest level DTLB load misses per instruction",
        "DTLB_MISSES.L0_MISS_LD / INST_RETIRED.ANY",
        _ratio(ev.DTLB_MISSES_L0_MISS_LD.name),
    ),
    MetricSpec(
        "DtlbLdM",
        "Last level DTLB load misses per instruction",
        "DTLB_MISSES.MISS_LD / INST_RETIRED.ANY",
        _ratio(ev.DTLB_MISSES_MISS_LD.name),
    ),
    MetricSpec(
        "DtlbLdReM",
        "Last level DTLB retired load misses per instruction",
        "MEM_LOAD_RETIRED.DTLB_MISS / INST_RETIRED.ANY",
        _ratio(ev.MEM_LOAD_RETIRED_DTLB_MISS.name),
    ),
    MetricSpec(
        "Dtlb",
        "Last level DTLB misses (including loads) per instruction",
        "DTLB_MISSES.ANY / INST_RETIRED.ANY",
        _ratio(ev.DTLB_MISSES_ANY.name),
    ),
    MetricSpec(
        "ItlbM",
        "ITLB misses per instruction",
        "ITLB.MISS_RETIRED / INST_RETIRED.ANY",
        _ratio(ev.ITLB_MISS_RETIRED.name),
    ),
    MetricSpec(
        "LdBlSta",
        "Load block store address events per instruction",
        "LOAD_BLOCK.STA / INST_RETIRED.ANY",
        _ratio(ev.LOAD_BLOCK_STA.name),
    ),
    MetricSpec(
        "LdBlStd",
        "Load block store data events per instruction",
        "LOAD_BLOCK.STD / INST_RETIRED.ANY",
        _ratio(ev.LOAD_BLOCK_STD.name),
    ),
    MetricSpec(
        "LdBlOvSt",
        "Load block overlap store per instruction",
        "LOAD_BLOCK.OVERLAP_STORE / INST_RETIRED.ANY",
        _ratio(ev.LOAD_BLOCK_OVERLAP_STORE.name),
    ),
    MetricSpec(
        "MisalRef",
        "Misaligned memory references per instruction",
        "MISALIGN_MEM_REF / INST_RETIRED.ANY",
        _ratio(ev.MISALIGN_MEM_REF.name),
    ),
    MetricSpec(
        "L1DSpLd",
        "L1 data split loads per instruction",
        "L1D_SPLIT.LOADS / INST_RETIRED.ANY",
        _ratio(ev.L1D_SPLIT_LOADS.name),
    ),
    MetricSpec(
        "L1DSpSt",
        "L1 data split stores per instruction",
        "L1D_SPLIT.STORES / INST_RETIRED.ANY",
        _ratio(ev.L1D_SPLIT_STORES.name),
    ),
    MetricSpec(
        "LCP",
        "Length changing prefix stalls per instruction",
        "ILD_STALL / INST_RETIRED.ANY",
        _ratio(ev.ILD_STALL.name),
    ),
)

#: Target first, then the 20 predictors — the full Table I, top to bottom.
ALL_METRICS: Tuple[MetricSpec, ...] = (TARGET_METRIC,) + PREDICTOR_METRICS

#: Predictor attribute names in Table I order.
PREDICTOR_NAMES: Tuple[str, ...] = tuple(m.name for m in PREDICTOR_METRICS)

#: All metric names, target included.
METRIC_NAMES: Tuple[str, ...] = tuple(m.name for m in ALL_METRICS)

#: Name -> spec lookup across target and predictors.
METRIC_BY_NAME: Dict[str, MetricSpec] = {m.name: m for m in ALL_METRICS}

#: Metrics that count stall/penalty events.  Physically these cannot make
#: the machine faster, so a model constrained to price them non-negatively
#: (``M5Prime(nonnegative_attributes=STALL_METRICS)``) stays readable as a
#: cost decomposition.  The mix metrics (InstLd, InstSt, BrPred,
#: InstOther) are excluded: a heavier mix can legitimately lower CPI.
STALL_METRICS: Tuple[str, ...] = (
    "BrMisPr",
    "L1DM",
    "L1IM",
    "L2M",
    "DtlbL0LdM",
    "DtlbLdM",
    "DtlbLdReM",
    "Dtlb",
    "ItlbM",
    "LdBlSta",
    "LdBlStd",
    "LdBlOvSt",
    "MisalRef",
    "L1DSpLd",
    "L1DSpSt",
    "LCP",
)

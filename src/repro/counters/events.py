"""Raw hardware (PMU) event definitions.

These are the Core 2 Duo performance-monitoring events named in the
right-hand column of Table I of the paper, plus ``INST_RETIRED.ANY``,
which every per-instruction ratio uses as its denominator.  The simulator
(:mod:`repro.simulator`) emits a count for each of these per section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class EventSpec:
    """A single hardware performance-monitoring event.

    Attributes:
        name: The architectural event name, e.g.
            ``"MEM_LOAD_RETIRED.L2_LINE_MISS"``.
        description: Human-readable meaning of the count.
    """

    name: str
    description: str

    def __str__(self) -> str:
        return self.name


INST_RETIRED_ANY = EventSpec(
    "INST_RETIRED.ANY", "Instructions retired (the per-instruction denominator)"
)

CPU_CLK_UNHALTED_CORE = EventSpec(
    "CPU_CLK_UNHALTED.CORE", "Unhalted core clock cycles"
)
INST_RETIRED_LOADS = EventSpec("INST_RETIRED.LOADS", "Retired load instructions")
INST_RETIRED_STORES = EventSpec("INST_RETIRED.STORES", "Retired store instructions")
BR_INST_RETIRED_ANY = EventSpec("BR_INST_RETIRED.ANY", "Retired branch instructions")
BR_INST_RETIRED_MISPRED = EventSpec(
    "BR_INST_RETIRED.MISPRED", "Retired mispredicted branch instructions"
)
MEM_LOAD_RETIRED_L1D_LINE_MISS = EventSpec(
    "MEM_LOAD_RETIRED.L1D_LINE_MISS", "Retired loads that missed the L1 data cache"
)
L1I_MISSES = EventSpec("L1I_MISSES", "L1 instruction cache misses")
MEM_LOAD_RETIRED_L2_LINE_MISS = EventSpec(
    "MEM_LOAD_RETIRED.L2_LINE_MISS", "Retired loads that missed the L2 cache"
)
DTLB_MISSES_L0_MISS_LD = EventSpec(
    "DTLB_MISSES.L0_MISS_LD", "Loads that missed the level-0 (micro) DTLB"
)
DTLB_MISSES_MISS_LD = EventSpec(
    "DTLB_MISSES.MISS_LD", "Loads that missed the last-level DTLB"
)
MEM_LOAD_RETIRED_DTLB_MISS = EventSpec(
    "MEM_LOAD_RETIRED.DTLB_MISS", "Retired loads that missed the last-level DTLB"
)
DTLB_MISSES_ANY = EventSpec(
    "DTLB_MISSES.ANY", "All last-level DTLB misses (loads and stores)"
)
ITLB_MISS_RETIRED = EventSpec(
    "ITLB.MISS_RETIRED", "Retired instructions that missed the ITLB"
)
LOAD_BLOCK_STA = EventSpec(
    "LOAD_BLOCK.STA", "Loads blocked by a preceding store with unknown address"
)
LOAD_BLOCK_STD = EventSpec(
    "LOAD_BLOCK.STD", "Loads blocked by a preceding store with unknown data"
)
LOAD_BLOCK_OVERLAP_STORE = EventSpec(
    "LOAD_BLOCK.OVERLAP_STORE",
    "Loads partially overlapping a preceding store (forwarding blocked)",
)
MISALIGN_MEM_REF = EventSpec(
    "MISALIGN_MEM_REF", "Memory references crossing a natural alignment boundary"
)
L1D_SPLIT_LOADS = EventSpec(
    "L1D_SPLIT.LOADS", "Loads split across two L1 data cache lines"
)
L1D_SPLIT_STORES = EventSpec(
    "L1D_SPLIT.STORES", "Stores split across two L1 data cache lines"
)
ILD_STALL = EventSpec(
    "ILD_STALL", "Instruction-length decoder stalls (length-changing prefixes)"
)

#: Every raw event the collection pipeline records, in a stable order.
ALL_EVENTS: Tuple[EventSpec, ...] = (
    CPU_CLK_UNHALTED_CORE,
    INST_RETIRED_ANY,
    INST_RETIRED_LOADS,
    INST_RETIRED_STORES,
    BR_INST_RETIRED_ANY,
    BR_INST_RETIRED_MISPRED,
    MEM_LOAD_RETIRED_L1D_LINE_MISS,
    L1I_MISSES,
    MEM_LOAD_RETIRED_L2_LINE_MISS,
    DTLB_MISSES_L0_MISS_LD,
    DTLB_MISSES_MISS_LD,
    MEM_LOAD_RETIRED_DTLB_MISS,
    DTLB_MISSES_ANY,
    ITLB_MISS_RETIRED,
    LOAD_BLOCK_STA,
    LOAD_BLOCK_STD,
    LOAD_BLOCK_OVERLAP_STORE,
    MISALIGN_MEM_REF,
    L1D_SPLIT_LOADS,
    L1D_SPLIT_STORES,
    ILD_STALL,
)

#: Name -> spec lookup for all raw events.
EVENT_BY_NAME: Dict[str, EventSpec] = {event.name: event for event in ALL_EVENTS}

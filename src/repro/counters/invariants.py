"""Architectural consistency checks over raw counter snapshots.

Real PMU data is full of impossible-looking readings caused by
multiplexing and skid; simulated data must be cleaner.  These invariants
encode the event hierarchy (an L2 load miss implies an L1 load miss; a
retired DTLB load miss is a subset of all DTLB load misses; mix counts
cannot exceed retired instructions) and are checked by the collection
tests — and available to users vetting imported datasets.

Two granularities share one declarative rule table:

* :func:`check_invariants` — one raw count snapshot (a name -> value
  mapping), the original per-section entry point.
* :func:`check_dataset` — whole column vectors at once, reporting the
  violating row indices.  This is what the collection tests and the
  dataset lint rules (:mod:`repro.lint`) use, and
  :func:`check_invariants` is now a one-row wrapper around it.

Because the same comparisons run on raw counts (magnitudes in the
thousands) and on per-instruction ratios (magnitudes near 1e-6..1), the
comparison tolerance is scale-aware: ``_EPS`` is taken relative to the
magnitude of the quantities compared, with an absolute floor of
``_EPS`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.counters import events as ev

CountMap = Mapping[str, float]
ColumnMap = Mapping[str, Sequence]

#: Base tolerance for floating-point comparisons.  The effective
#: tolerance of a comparison is ``_EPS * max(1, |right-hand side|)`` so
#: raw counts and tiny ratios are judged at their own scale.
_EPS = 1e-6


@dataclass(frozen=True)
class Invariant:
    """One architectural consistency condition over named columns.

    ``kind="le"`` requires ``sum(lhs) <= sum(rhs) + bound`` (within the
    scale-aware tolerance); ``kind="positive"`` requires ``sum(lhs) > 0``.
    Columns absent from the data are treated as all-zero, matching the
    permissive reading of a snapshot that simply did not collect an event.

    Attributes:
        name: Stable identifier, usable as a machine-readable rule tag.
        message: Human-readable violation description.
        lhs: Column names summed on the left-hand side.
        rhs: Column names summed on the right-hand side (``le`` only).
        bound: Constant added to the right-hand side (``le`` only).
        kind: ``"le"`` or ``"positive"``.
    """

    name: str
    message: str
    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...] = ()
    bound: float = 0.0
    kind: str = "le"


@dataclass(frozen=True)
class InvariantViolation:
    """A violated invariant with the rows that break it."""

    invariant: str
    message: str
    rows: Tuple[int, ...]

    @property
    def n_rows(self) -> int:
        return len(self.rows)


#: The raw-event hierarchy, in the order violations are reported.
RAW_COUNT_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        "instructions-positive",
        "INST_RETIRED.ANY must be positive",
        (ev.INST_RETIRED_ANY.name,),
        kind="positive",
    ),
    Invariant(
        "cycles-positive",
        "CPU_CLK_UNHALTED.CORE must be positive",
        (ev.CPU_CLK_UNHALTED_CORE.name,),
        kind="positive",
    ),
    Invariant(
        "mix-exceeds-retired",
        "instruction mix exceeds retired instructions",
        (
            ev.INST_RETIRED_LOADS.name,
            ev.INST_RETIRED_STORES.name,
            ev.BR_INST_RETIRED_ANY.name,
        ),
        (ev.INST_RETIRED_ANY.name,),
    ),
    Invariant(
        "mispredicts-exceed-branches",
        "mispredicted branches exceed all branches",
        (ev.BR_INST_RETIRED_MISPRED.name,),
        (ev.BR_INST_RETIRED_ANY.name,),
    ),
    Invariant(
        "l2-exceeds-l1d",
        "retired load L2 misses exceed L1D misses",
        (ev.MEM_LOAD_RETIRED_L2_LINE_MISS.name,),
        (ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name,),
    ),
    Invariant(
        "l1d-exceeds-loads",
        "retired load L1D misses exceed retired loads",
        (ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name,),
        (ev.INST_RETIRED_LOADS.name,),
    ),
    Invariant(
        "retired-dtlb-exceeds-all",
        "retired DTLB load misses exceed all DTLB load misses",
        (ev.MEM_LOAD_RETIRED_DTLB_MISS.name,),
        (ev.DTLB_MISSES_MISS_LD.name,),
    ),
    Invariant(
        "dtlb-loads-exceed-any",
        "DTLB load misses exceed all DTLB misses",
        (ev.DTLB_MISSES_MISS_LD.name,),
        (ev.DTLB_MISSES_ANY.name,),
    ),
    Invariant(
        "retired-dtlb-exceeds-l0",
        "last-level DTLB load misses exceed level-0 misses",
        (ev.MEM_LOAD_RETIRED_DTLB_MISS.name,),
        (ev.DTLB_MISSES_L0_MISS_LD.name,),
    ),
    Invariant(
        "load-blocks-exceed-loads",
        "load-block events exceed retired loads",
        (
            ev.LOAD_BLOCK_STA.name,
            ev.LOAD_BLOCK_STD.name,
            ev.LOAD_BLOCK_OVERLAP_STORE.name,
        ),
        (ev.INST_RETIRED_LOADS.name,),
    ),
    Invariant(
        "split-loads-exceed-loads",
        "split loads exceed retired loads",
        (ev.L1D_SPLIT_LOADS.name,),
        (ev.INST_RETIRED_LOADS.name,),
    ),
    Invariant(
        "split-stores-exceed-stores",
        "split stores exceed retired stores",
        (ev.L1D_SPLIT_STORES.name,),
        (ev.INST_RETIRED_STORES.name,),
    ),
    Invariant(
        "misaligned-exceed-memory",
        "misaligned references exceed memory instructions",
        (ev.MISALIGN_MEM_REF.name,),
        (ev.INST_RETIRED_LOADS.name, ev.INST_RETIRED_STORES.name),
    ),
    Invariant(
        "l1i-exceeds-fetches",
        "L1I misses exceed instruction fetches",
        (ev.L1I_MISSES.name,),
        (ev.INST_RETIRED_ANY.name,),
    ),
    Invariant(
        "itlb-exceeds-fetches",
        "ITLB misses exceed instruction fetches",
        (ev.ITLB_MISS_RETIRED.name,),
        (ev.INST_RETIRED_ANY.name,),
    ),
    Invariant(
        "lcp-exceeds-retired",
        "LCP stalls exceed retired instructions",
        (ev.ILD_STALL.name,),
        (ev.INST_RETIRED_ANY.name,),
    ),
)

#: The same hierarchy restated over the Table I per-instruction metrics
#: (every ratio shares the INST_RETIRED.ANY denominator, so subset
#: relations between events survive the division).  Used by the dataset
#: lint rules on section datasets, where only metric columns exist.
METRIC_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        "metric-l2-exceeds-l1d",
        "L2M exceeds L1DM (an L2 load miss implies an L1D load miss)",
        ("L2M",),
        ("L1DM",),
    ),
    Invariant(
        "metric-l1d-exceeds-loads",
        "L1DM exceeds InstLd (more load misses than loads)",
        ("L1DM",),
        ("InstLd",),
    ),
    Invariant(
        "metric-retired-dtlb-exceeds-all",
        "DtlbLdReM exceeds DtlbLdM (retired misses are a subset)",
        ("DtlbLdReM",),
        ("DtlbLdM",),
    ),
    Invariant(
        "metric-dtlb-loads-exceed-any",
        "DtlbLdM exceeds Dtlb (load misses are a subset of all misses)",
        ("DtlbLdM",),
        ("Dtlb",),
    ),
    Invariant(
        "metric-retired-dtlb-exceeds-l0",
        "DtlbLdReM exceeds DtlbL0LdM (last-level misses imply L0 misses)",
        ("DtlbLdReM",),
        ("DtlbL0LdM",),
    ),
    Invariant(
        "metric-mix-exceeds-one",
        "instruction-mix fractions sum above 1",
        ("InstLd", "InstSt", "BrMisPr", "BrPred", "InstOther"),
        (),
        bound=1.0,
    ),
    Invariant(
        "metric-split-loads-exceed-loads",
        "L1DSpLd exceeds InstLd (more split loads than loads)",
        ("L1DSpLd",),
        ("InstLd",),
    ),
    Invariant(
        "metric-split-stores-exceed-stores",
        "L1DSpSt exceeds InstSt (more split stores than stores)",
        ("L1DSpSt",),
        ("InstSt",),
    ),
    Invariant(
        "metric-load-blocks-exceed-loads",
        "load-block ratios exceed InstLd",
        ("LdBlSta", "LdBlStd", "LdBlOvSt"),
        ("InstLd",),
    ),
    Invariant(
        "metric-misaligned-exceed-memory",
        "MisalRef exceeds InstLd + InstSt",
        ("MisalRef",),
        ("InstLd", "InstSt"),
    ),
)


def applicable_invariants(
    invariants: Sequence[Invariant], available: Sequence[str]
) -> List[Invariant]:
    """The subset of ``invariants`` whose columns are all present.

    Lint rules use this so a dataset carrying only some Table I metrics
    is not flagged for relations it cannot express (a missing column
    would otherwise read as all-zero and trip ``lhs <= 0`` checks).
    """
    names = set(available)
    return [
        inv
        for inv in invariants
        if names.issuperset(inv.lhs) and names.issuperset(inv.rhs)
    ]


def _column_matrix(columns: ColumnMap) -> Tuple[dict, int]:
    """Normalize a column mapping to float arrays of one shared length."""
    from repro.errors import DataError

    arrays = {}
    n_rows = None
    for name, values in columns.items():
        arr = np.asarray(values, dtype=np.float64).ravel()
        if n_rows is None:
            n_rows = arr.shape[0]
        elif arr.shape[0] != n_rows:
            raise DataError(
                f"column {name!r} has {arr.shape[0]} rows, expected {n_rows}"
            )
        arrays[str(name)] = arr
    if n_rows is None:
        raise DataError("cannot check invariants on zero columns")
    return arrays, n_rows


def check_dataset(
    columns: ColumnMap,
    invariants: Sequence[Invariant] = RAW_COUNT_INVARIANTS,
    check_negative: bool = True,
    negative_message: str = "negative count for {name}",
) -> List[InvariantViolation]:
    """Vectorized invariant check over whole columns.

    Args:
        columns: Mapping of column name to a 1-D value sequence; all
            columns must share one length.  Names an invariant references
            but the mapping lacks are treated as all-zero.
        invariants: The rule table to apply (defaults to the raw-event
            hierarchy; pass :data:`METRIC_INVARIANTS` for section
            datasets of Table I ratios).
        check_negative: Also flag negative values in every column.
        negative_message: Template for the negativity violation.

    Returns:
        One :class:`InvariantViolation` per violated invariant, carrying
        the offending row indices, in rule-table order; negativity
        violations follow in column order.  Empty means clean.
    """
    arrays, n_rows = _column_matrix(columns)
    zeros = np.zeros(n_rows)

    def column(name: str) -> np.ndarray:
        return arrays.get(name, zeros)

    def total(names: Tuple[str, ...]) -> np.ndarray:
        result = np.zeros(n_rows)
        for name in names:
            result = result + column(name)
        return result

    violations: List[InvariantViolation] = []
    for inv in invariants:
        lhs = total(inv.lhs)
        if inv.kind == "positive":
            bad = ~(lhs > 0)
        else:
            rhs = total(inv.rhs) + inv.bound
            tolerance = _EPS * np.maximum(1.0, np.abs(rhs))
            bad = lhs > rhs + tolerance
        if bad.any():
            violations.append(
                InvariantViolation(
                    invariant=inv.name,
                    message=inv.message,
                    rows=tuple(int(i) for i in np.flatnonzero(bad)),
                )
            )
    if check_negative:
        for name, values in arrays.items():
            bad = values < 0
            if bad.any():
                violations.append(
                    InvariantViolation(
                        invariant=f"negative-{name}",
                        message=negative_message.format(name=name),
                        rows=tuple(int(i) for i in np.flatnonzero(bad)),
                    )
                )
    return violations


def check_invariants(counts: CountMap) -> List[str]:
    """Return a list of violated-invariant descriptions (empty = clean).

    A thin per-row wrapper over :func:`check_dataset`: the snapshot
    becomes a one-row column set and messages are returned in the same
    order the original implementation produced them.
    """
    columns = {name: [float(value)] for name, value in counts.items()}
    if not columns:
        columns = {ev.INST_RETIRED_ANY.name: [0.0]}
    return [v.message for v in check_dataset(columns, RAW_COUNT_INVARIANTS)]


def assert_invariants(counts: CountMap) -> None:
    """Raise :class:`repro.errors.DataError` listing any violations."""
    from repro.errors import DataError

    violations = check_invariants(counts)
    if violations:
        raise DataError(
            "counter invariants violated: " + "; ".join(violations)
        )

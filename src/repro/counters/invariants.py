"""Architectural consistency checks over raw counter snapshots.

Real PMU data is full of impossible-looking readings caused by
multiplexing and skid; simulated data must be cleaner.  These invariants
encode the event hierarchy (an L2 load miss implies an L1 load miss; a
retired DTLB load miss is a subset of all DTLB load misses; mix counts
cannot exceed retired instructions) and are checked by the collection
tests — and available to users vetting imported datasets.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.counters import events as ev

CountMap = Mapping[str, float]

#: Tolerance for floating-point count comparisons.
_EPS = 1e-6


def check_invariants(counts: CountMap) -> List[str]:
    """Return a list of violated-invariant descriptions (empty = clean)."""
    violations: List[str] = []

    def get(event) -> float:
        return float(counts.get(event.name, 0.0))

    def require(condition: bool, message: str) -> None:
        if not condition:
            violations.append(message)

    instructions = get(ev.INST_RETIRED_ANY)
    require(instructions > 0, "INST_RETIRED.ANY must be positive")
    require(
        get(ev.CPU_CLK_UNHALTED_CORE) > 0, "CPU_CLK_UNHALTED.CORE must be positive"
    )

    loads = get(ev.INST_RETIRED_LOADS)
    stores = get(ev.INST_RETIRED_STORES)
    branches = get(ev.BR_INST_RETIRED_ANY)
    require(
        loads + stores + branches <= instructions + _EPS,
        "instruction mix exceeds retired instructions",
    )
    require(
        get(ev.BR_INST_RETIRED_MISPRED) <= branches + _EPS,
        "mispredicted branches exceed all branches",
    )

    require(
        get(ev.MEM_LOAD_RETIRED_L2_LINE_MISS)
        <= get(ev.MEM_LOAD_RETIRED_L1D_LINE_MISS) + _EPS,
        "retired load L2 misses exceed L1D misses",
    )
    require(
        get(ev.MEM_LOAD_RETIRED_L1D_LINE_MISS) <= loads + _EPS,
        "retired load L1D misses exceed retired loads",
    )
    require(
        get(ev.MEM_LOAD_RETIRED_DTLB_MISS) <= get(ev.DTLB_MISSES_MISS_LD) + _EPS,
        "retired DTLB load misses exceed all DTLB load misses",
    )
    require(
        get(ev.DTLB_MISSES_MISS_LD) <= get(ev.DTLB_MISSES_ANY) + _EPS,
        "DTLB load misses exceed all DTLB misses",
    )
    require(
        get(ev.MEM_LOAD_RETIRED_DTLB_MISS) <= get(ev.DTLB_MISSES_L0_MISS_LD) + _EPS,
        "last-level DTLB load misses exceed level-0 misses",
    )

    blocked = (
        get(ev.LOAD_BLOCK_STA)
        + get(ev.LOAD_BLOCK_STD)
        + get(ev.LOAD_BLOCK_OVERLAP_STORE)
    )
    require(blocked <= loads + _EPS, "load-block events exceed retired loads")
    require(
        get(ev.L1D_SPLIT_LOADS) <= loads + _EPS, "split loads exceed retired loads"
    )
    require(
        get(ev.L1D_SPLIT_STORES) <= stores + _EPS,
        "split stores exceed retired stores",
    )
    require(
        get(ev.MISALIGN_MEM_REF) <= loads + stores + _EPS,
        "misaligned references exceed memory instructions",
    )
    require(
        get(ev.L1I_MISSES) <= instructions + _EPS,
        "L1I misses exceed instruction fetches",
    )
    require(
        get(ev.ITLB_MISS_RETIRED) <= instructions + _EPS,
        "ITLB misses exceed instruction fetches",
    )
    require(
        get(ev.ILD_STALL) <= instructions + _EPS,
        "LCP stalls exceed retired instructions",
    )

    for name, value in counts.items():
        if value < 0:
            violations.append(f"negative count for {name}")
    return violations


def assert_invariants(counts: CountMap) -> None:
    """Raise :class:`repro.errors.DataError` listing any violations."""
    from repro.errors import DataError

    violations = check_invariants(counts)
    if violations:
        raise DataError(
            "counter invariants violated: " + "; ".join(violations)
        )

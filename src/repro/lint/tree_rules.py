"""Tree rules: structural verification of a fitted or deserialized M5' tree.

The paper reads its micro-architectural conclusions straight off the
tree — split variables answer "what", leaf-model coefficients answer
"how much" — so a structurally broken tree silently produces wrong
explanations.  These rules walk every node of a fitted
:class:`~repro.core.tree.m5.M5Prime` and check the properties a correct
grow/prune/serialize pipeline guarantees.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import (
    Bounds,
    Node,
    SplitNode,
    is_empty_bounds,
)
from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_TREE, rule

Finding = Tuple[str, str]


def _split_location(node: SplitNode) -> str:
    return f"split {node.attribute_name} <= {node.threshold:.6g}"


def _node_location(node: Node) -> str:
    if node.is_leaf:
        return f"leaf LM{node.leaf_id}"
    assert isinstance(node, SplitNode)
    return _split_location(node)


@rule(
    "TREE001",
    FAMILY_TREE,
    Severity.ERROR,
    "split feature index within the model's attribute set",
)
def split_feature_in_range(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    names = model.attributes_
    for node in model.root_.splits():
        if not 0 <= node.attribute_index < len(names):
            yield (
                f"split tests attribute index {node.attribute_index} but the "
                f"model has {len(names)} attributes",
                _split_location(node),
            )
        elif node.attribute_name != names[node.attribute_index]:
            yield (
                f"split names attribute {node.attribute_name!r} but index "
                f"{node.attribute_index} is {names[node.attribute_index]!r}",
                _split_location(node),
            )


def _unreachable_roots(node: Node, bounds: Bounds) -> Iterator[Node]:
    """Maximal subtrees no instance can reach (contradictory thresholds)."""
    if is_empty_bounds(bounds):
        yield node
        return
    if isinstance(node, SplitNode):
        index = node.attribute_index
        low, high = bounds.get(index, (float("-inf"), float("inf")))
        left = dict(bounds)
        left[index] = (low, min(high, node.threshold))
        right = dict(bounds)
        right[index] = (max(low, node.threshold), high)
        yield from _unreachable_roots(node.left, left)
        yield from _unreachable_roots(node.right, right)


@rule(
    "TREE002",
    FAMILY_TREE,
    Severity.ERROR,
    "no branch is made unreachable by contradictory thresholds on its path",
)
def unreachable_branch(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    for node in _unreachable_roots(model.root_, {}):
        yield (
            "unreachable branch: the thresholds along its root path admit "
            "no instance",
            _node_location(node),
        )


@rule(
    "TREE003",
    FAMILY_TREE,
    Severity.WARNING,
    "every leaf holds at least min_instances training instances",
)
def under_populated_leaf(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    for leaf in model.root_.leaves():
        if leaf is model.root_:
            continue  # a tiny training set legitimately yields one small leaf
        if leaf.n_instances < model.min_instances:
            yield (
                f"leaf holds {leaf.n_instances} instances, below "
                f"min_instances={model.min_instances}",
                _node_location(leaf),
            )


@rule(
    "TREE004",
    FAMILY_TREE,
    Severity.ERROR,
    "every node model exists with finite coefficients and a real population",
)
def non_finite_model(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    for node in model.root_.iter_nodes():
        location = _node_location(node)
        linear = node.model
        if linear is None:
            yield ("node lacks a linear model", location)
            continue
        values = (linear.intercept,) + linear.coefficients
        if not all(math.isfinite(v) for v in values):
            yield ("linear model has non-finite coefficients", location)
        if linear.n_training <= 0:
            yield (
                f"linear model reports n_training={linear.n_training}",
                location,
            )
        if not math.isfinite(linear.training_error) or linear.training_error < 0:
            yield (
                f"linear model reports training_error="
                f"{linear.training_error!r}",
                location,
            )


@rule(
    "TREE005",
    FAMILY_TREE,
    Severity.WARNING,
    "leaf-model coefficients stay below the degeneracy bound",
)
def degenerate_coefficients(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    bound = ctx.config.coefficient_bound
    for leaf in model.root_.leaves():
        linear = leaf.model
        if linear is None:
            continue  # TREE004 already reported it
        offenders = [
            f"{name}={coefficient:.3g}"
            for name, coefficient in zip(linear.names, linear.coefficients)
            if math.isfinite(coefficient) and abs(coefficient) > bound
        ]
        if math.isfinite(linear.intercept) and abs(linear.intercept) > bound:
            offenders.append(f"intercept={linear.intercept:.3g}")
        if offenders:
            yield (
                "degenerate coefficients (|value| > "
                f"{bound:g}): {', '.join(offenders)}",
                _node_location(leaf),
            )


@rule(
    "TREE006",
    FAMILY_TREE,
    Severity.WARNING,
    "split thresholds lie inside the recorded training feature range",
)
def threshold_outside_range(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    ranges = model.feature_ranges_
    if ranges is None:
        return  # pre-range artifact: nothing recorded to check against
    for node in model.root_.splits():
        if not 0 <= node.attribute_index < len(ranges):
            continue  # TREE001 already reported it
        low, high = ranges[node.attribute_index]
        if not low <= node.threshold <= high:
            yield (
                f"threshold {node.threshold:.6g} lies outside the training "
                f"range [{low:.6g}, {high:.6g}] of "
                f"{node.attribute_name}",
                _split_location(node),
            )


def _probe_points(model: M5Prime, cap: int) -> np.ndarray:
    """Instances that exercise both sides of every split."""
    assert model.root_ is not None
    n_attributes = len(model.attributes_)
    if model.feature_ranges_ is not None:
        base = np.array(
            [(low + high) / 2.0 for low, high in model.feature_ranges_]
        )
    else:
        base = np.zeros(n_attributes)
    probes: List[np.ndarray] = [base]
    for node in model.root_.splits():
        if not 0 <= node.attribute_index < n_attributes:
            continue
        for value in (
            node.threshold,
            np.nextafter(node.threshold, np.inf),
        ):
            probe = base.copy()
            probe[node.attribute_index] = value
            probes.append(probe)
        if len(probes) >= cap:
            break
    return np.vstack(probes)


@rule(
    "TREE007",
    FAMILY_TREE,
    Severity.ERROR,
    "serialize -> load round trip preserves predictions within tolerance",
)
def roundtrip_drift(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    if any(node.model is None for node in model.root_.iter_nodes()):
        return  # unserializable; TREE004 already reported it
    n_attributes = len(model.attributes_)
    if any(
        not 0 <= node.attribute_index < n_attributes
        for node in model.root_.splits()
    ):
        return  # routing would crash; TREE001 already reported it
    from repro.core.tree.serialize import model_from_dict, model_to_dict

    try:
        clone = model_from_dict(model_to_dict(model))
    except Exception as exc:  # noqa: BLE001 — any failure is the finding
        yield (f"model does not survive a serialize round trip: {exc}", "")
        return
    probes = _probe_points(model, ctx.config.max_probe_points)
    drift = float(
        np.max(np.abs(model.predict(probes) - clone.predict(probes)))
    )
    if not math.isfinite(drift) or drift > ctx.config.roundtrip_tol:
        yield (
            f"round-trip prediction drift {drift:.3g} exceeds tolerance "
            f"{ctx.config.roundtrip_tol:g}",
            "",
        )


@rule(
    "TREE008",
    FAMILY_TREE,
    Severity.WARNING,
    "every split's population equals the sum of its children's",
)
def population_consistency(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    for node in model.root_.splits():
        total = node.left.n_instances + node.right.n_instances
        if node.n_instances != total:
            yield (
                f"split holds {node.n_instances} instances but its children "
                f"sum to {total}",
                _split_location(node),
            )


@rule(
    "TREE009",
    FAMILY_TREE,
    Severity.WARNING,
    "leaves are numbered LM1..LMk left to right",
)
def leaf_id_sequence(ctx: LintContext) -> Iterator[Finding]:
    model = ctx.model
    assert model is not None and model.root_ is not None
    expected = 1
    for leaf in model.root_.leaves():
        if leaf.leaf_id != expected:
            yield (
                f"leaf numbered LM{leaf.leaf_id}, expected LM{expected} "
                "in left-to-right order",
                _node_location(leaf),
            )
        expected += 1

"""Lenient table loading for lint.

:class:`~repro.datasets.dataset.Dataset` validates on construction — it
refuses NaN/Inf outright — which is the correct contract for modeling
but useless for a linter whose job is to *report* such corruption.
:class:`Table` is the permissive view the dataset rules operate on:
same column layout as a dataset (attributes, target last), no value
validation.  Unparseable numeric cells load as NaN so the NaN-scan rule
pinpoints them instead of the loader crashing.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import ParseError

PathLike = Union[str, Path]

_META_PREFIX = "#"


@dataclass
class Table:
    """An unvalidated attribute matrix + target vector.

    Structurally identical to :class:`Dataset` (and every dataset lint
    rule accepts either), but values may be NaN/Inf — that is what the
    rules are there to find.
    """

    attributes: Tuple[str, ...]
    X: np.ndarray
    y: np.ndarray
    target_name: str

    @property
    def n_instances(self) -> int:
        return self.X.shape[0]

    @property
    def n_attributes(self) -> int:
        return self.X.shape[1]

    def __repr__(self) -> str:
        return (
            f"Table(n_instances={self.n_instances}, "
            f"n_attributes={self.n_attributes}, target={self.target_name!r})"
        )


def as_table(data: Union[Dataset, Table]) -> Table:
    """View a :class:`Dataset` (or pass a :class:`Table` through) for lint."""
    if isinstance(data, Table):
        return data
    return Table(
        attributes=tuple(data.attributes),
        X=np.asarray(data.X, dtype=np.float64),
        y=np.asarray(data.y, dtype=np.float64),
        target_name=data.target_name,
    )


def _cell(value: str) -> float:
    try:
        return float(value)
    except ValueError:
        return float("nan")


def load_table(path: PathLike) -> Table:
    """Read a section CSV without value validation.

    Structural problems (empty file, too few columns, ragged rows) still
    raise :class:`ParseError` naming the path — a linter cannot work on
    a table it cannot shape — but every numeric pathology (NaN, Inf,
    unparseable cells) loads as NaN for the rules to report.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ParseError(f"{path}: CSV file is empty") from None
        rows = [row for row in reader if row]
    if len(header) < 2:
        raise ParseError(
            f"{path}: CSV needs at least one attribute plus a target column"
        )
    meta_keys = [h for h in header if h.startswith(_META_PREFIX)]
    n_meta = len(meta_keys)
    attribute_names = header[n_meta:-1]
    target_name = header[-1]
    if not attribute_names:
        raise ParseError(f"{path}: CSV has no attribute columns")
    if not rows:
        raise ParseError(f"{path}: CSV has a header but no rows")
    X = np.empty((len(rows), len(attribute_names)))
    y = np.empty(len(rows))
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise ParseError(
                f"{path}: row {i + 1} has {len(row)} cells, "
                f"expected {len(header)}"
            )
        numeric = row[n_meta:]
        X[i] = [_cell(v) for v in numeric[:-1]]
        y[i] = _cell(numeric[-1])
    return Table(
        attributes=tuple(attribute_names),
        X=X,
        y=y,
        target_name=target_name,
    )

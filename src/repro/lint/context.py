"""The inputs and tunables a lint run carries to every rule."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.tree.m5 import M5Prime
from repro.lint.loading import Table


@dataclass(frozen=True)
class LintConfig:
    """Thresholds the rules judge against.

    Attributes:
        ratio_bound: Upper bound for per-instruction ratio columns; every
            Table I predictor counts a subset of retired instructions, so
            1.0 is the architectural ceiling.
        outlier_z: Robust z-score (median/MAD) beyond which a target value
            counts as an outlier.
        leakage_corr: |correlation| with the target at or above which an
            attribute column is flagged as likely target leakage.
        roundtrip_tol: Maximum |prediction drift| tolerated across a
            serialize -> deserialize round trip.
        coefficient_bound: |coefficient| above which a leaf model is
            considered degenerate (the collinearity-explosion signature).
        range_slack: Fraction of a feature's training span that dataset
            values may exceed the trained range by before the
            compatibility rules flag them.
        max_probe_points: Cap on synthetic probe instances used by the
            round-trip rule.
        calibration_rel_err: Recorded in-sample relative-error p95 above
            which a fastsim calibration draws a quality warning.  The
            stat is measured over the jittered sweep against single
            noisy oracle samples, so it sits well above the jitter=0
            drift the FAST00x gates bound.
    """

    ratio_bound: float = 1.0
    outlier_z: float = 8.0
    leakage_corr: float = 0.9999
    roundtrip_tol: float = 1e-8
    coefficient_bound: float = 1e6
    range_slack: float = 0.10
    max_probe_points: int = 128
    calibration_rel_err: float = 0.20


@dataclass
class LintContext:
    """Everything a rule may inspect: the model, the data, the config.

    ``dataset`` is always the lenient :class:`~repro.lint.loading.Table`
    view by the time rules see it — the runner converts a
    :class:`~repro.datasets.dataset.Dataset` on entry — so rules can
    inspect NaN-bearing tables a validating Dataset would refuse to hold.
    """

    model: Optional[M5Prime] = None
    dataset: Optional[Table] = None
    cache_dir: Optional[Path] = None
    registry_dir: Optional[Path] = None
    #: Fleet config to audit: either the parsed dict itself or a path
    #: to the JSON file (the fleet rules load it leniently — a broken
    #: file is a finding, not a crash).
    fleet_config: Optional[Union[Path, Dict[str, object]]] = None
    #: Fastsim calibration artifact to audit: the serialized payload
    #: dict or a path to the JSON file (the fastsim rules load it
    #: leniently — a broken artifact is a finding, not a crash).
    calibration: Optional[Union[Path, Dict[str, object]]] = None
    config: LintConfig = field(default_factory=LintConfig)

"""The ``verify`` rule family: static arena verification (VERIFY0xx).

Thin lint adapters over the static model verifier
(:mod:`repro.verify`): the verifier runs once per lint context and each
rule surfaces its own slice of the findings, so ``repro lint --model``
and ``repro verify`` agree diagnostic-for-diagnostic.

* ``VERIFY001`` (error): the compiled arena is well-formed — array
  lengths agree, split features and child/term indices are in range,
  ``term_offset`` is a monotone CSR ramp, parent pointers mirror child
  edges, ``max_depth`` does not understate the real depth.
* ``VERIFY002`` (error): the node graph is a tree — single parent per
  node, no cycles, no orphans unreachable from the root.
* ``VERIFY003`` (error): reachable leaves carry the paper's ``LM1..LMk``
  numbering exactly once each; interior nodes carry 0.
* ``VERIFY004`` (error): thresholds, intercepts, coefficients and
  smoothing weights are finite; every reachable leaf carries a model.
* ``VERIFY005`` (error): no dead branches — every path's feasible box
  is non-empty against the training domain and satisfiable under the
  Table I counter invariants.
* ``VERIFY006`` (error): the live leaves partition the input domain —
  no uncovered regions (missing children), no overlapping regions.
* ``VERIFY007`` (warning): no leaf-model coefficient sits on a feature
  the path has pinned to a single value (a constant in disguise).
* ``VERIFY008`` (error): certified per-leaf output intervals are finite
  (warning when no ``feature_ranges_`` exist to bound anything with).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import FAMILY_VERIFY, rule

if TYPE_CHECKING:
    from repro.verify.runner import VerificationResult

#: One verifier run shared by all eight rules of a lint pass.  The
#: runner executes rules sequentially per context, so a single slot
#: keyed by object identities is enough.
_MEMO: Optional[Tuple[int, int, "VerificationResult"]] = None


def _result(context: LintContext) -> "VerificationResult":
    global _MEMO
    from repro.verify.runner import verify_model

    assert context.model is not None
    key = (id(context), id(context.model))
    if _MEMO is None or _MEMO[:2] != key:
        _MEMO = (key[0], key[1], verify_model(context.model))
    return _MEMO[2]


def _slice(context: LintContext, rule_id: str) -> Iterator[Diagnostic]:
    for diagnostic in _result(context).diagnostics:
        if diagnostic.rule_id == rule_id:
            yield diagnostic


@rule(
    "VERIFY001",
    FAMILY_VERIFY,
    Severity.ERROR,
    "the compiled arena must be well-formed (shapes, indices, CSR, depth)",
)
def check_arena(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY001")


@rule(
    "VERIFY002",
    FAMILY_VERIFY,
    Severity.ERROR,
    "the node graph must be a tree (single parent, acyclic, no orphans)",
)
def check_graph(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY002")


@rule(
    "VERIFY003",
    FAMILY_VERIFY,
    Severity.ERROR,
    "reachable leaves must carry the LM1..LMk bijection",
)
def check_leaf_ids(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY003")


@rule(
    "VERIFY004",
    FAMILY_VERIFY,
    Severity.ERROR,
    "thresholds, models, and smoothing weights must be finite",
)
def check_finiteness(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY004")


@rule(
    "VERIFY005",
    FAMILY_VERIFY,
    Severity.ERROR,
    "no branch may be dead under the domain and counter invariants",
)
def check_dead_branches(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY005")


@rule(
    "VERIFY006",
    FAMILY_VERIFY,
    Severity.ERROR,
    "live leaves must partition the input domain (no gaps, no overlap)",
)
def check_partition(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY006")


@rule(
    "VERIFY007",
    FAMILY_VERIFY,
    Severity.WARNING,
    "leaf-model coefficients must not sit on pinned features",
)
def check_pinned_coefficients(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY007")


@rule(
    "VERIFY008",
    FAMILY_VERIFY,
    Severity.ERROR,
    "certified output intervals must exist and be finite",
)
def check_output_bounds(context: LintContext) -> Iterator[Diagnostic]:
    yield from _slice(context, "VERIFY008")

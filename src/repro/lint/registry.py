"""The lint rule registry.

Rules self-register at import time via the :func:`rule` decorator; the
runner iterates :func:`rules_for` per family.  A rule's check function
receives a :class:`repro.lint.context.LintContext` and yields findings
either as ready-made :class:`~repro.lint.diagnostics.Diagnostic` objects
(when it wants to override the registered severity) or as plain
``(message, location)`` tuples, which the runner stamps with the rule's
id and default severity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple, Union

from repro.errors import LintError
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity

#: The nine rule families, in the order they run.
FAMILY_TREE = "tree"
FAMILY_DATASET = "dataset"
FAMILY_COMPAT = "compat"
FAMILY_CACHE = "cache"
FAMILY_SERVE = "serve"
FAMILY_FOREST = "forest"
FAMILY_VERIFY = "verify"
FAMILY_FLEET = "fleet"
FAMILY_FASTSIM = "fastsim"
ALL_FAMILIES: Tuple[str, ...] = (
    FAMILY_TREE, FAMILY_DATASET, FAMILY_COMPAT, FAMILY_CACHE, FAMILY_SERVE,
    FAMILY_FOREST, FAMILY_VERIFY, FAMILY_FLEET, FAMILY_FASTSIM,
)

Finding = Union[Diagnostic, Tuple[str, str]]
CheckFunction = Callable[[LintContext], Iterable[Finding]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: identity, family, default severity, check."""

    rule_id: str
    family: str
    severity: Severity
    summary: str
    check: CheckFunction


_REGISTRY: Dict[str, LintRule] = {}


def rule(
    rule_id: str, family: str, severity: Severity, summary: str
) -> Callable[[CheckFunction], CheckFunction]:
    """Class the decorated function as the named lint rule."""
    if family not in ALL_FAMILIES:
        raise LintError(f"unknown rule family {family!r} for {rule_id}")

    def decorator(check: CheckFunction) -> CheckFunction:
        if rule_id in _REGISTRY:
            raise LintError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            family=family,
            severity=severity,
            summary=summary,
            check=check,
        )
        return check

    return decorator


def all_rules() -> List[LintRule]:
    """Every registered rule, in registration order."""
    return list(_REGISTRY.values())


def rules_for(family: str) -> List[LintRule]:
    """The rules of one family, in registration order."""
    if family not in ALL_FAMILIES:
        raise LintError(f"unknown rule family {family!r}")
    return [r for r in _REGISTRY.values() if r.family == family]


def get_rule(rule_id: str) -> LintRule:
    """Look up one rule by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown lint rule {rule_id!r}") from None

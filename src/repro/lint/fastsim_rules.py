"""The ``fastsim`` rule family: calibration-artifact audit (FASTSIM0xx).

A fastsim calibration artifact is the fast engine's license to operate:
it encodes which machine physics and which workload suite its anchors
and residual tree were fitted against.  Serving predictions from a
stale or corrupt calibration silently substitutes a *different*
machine's CPI for the one being studied, so these rules audit the
serialized artifact statically — before the engine loads it — the same
payload :meth:`~repro.fastsim.calibration.Calibration.from_dict` would
consume:

* ``FASTSIM001`` (error): the artifact is unreadable, not valid JSON,
  or not a JSON object.
* ``FASTSIM002`` (error): the schema tag is not the current
  :data:`~repro.fastsim.calibration.CALIBRATION_SCHEMA`, or a required
  key is missing.
* ``FASTSIM003`` (error): the machine fingerprint does not match the
  current simulator physics — the calibration was fitted against a
  different machine model.
* ``FASTSIM004`` (error): the workload fingerprint does not match the
  current suite — phases were added, removed, or reparameterized since
  the fit.
* ``FASTSIM005`` (error): the residual model does not deserialize to a
  fitted M5' tree, or the anchor/nominal-correction tables are empty
  or carry non-finite values.
* ``FASTSIM006`` (warning): fit-quality stats are missing, or the
  recorded in-sample relative-error p95 exceeds
  ``LintConfig.calibration_rel_err`` — the artifact loads but its
  corrections are suspect.
* ``FASTSIM007`` (error): the stored feature names disagree with the
  analytical layer's current
  :data:`~repro.fastsim.analytic.RESIDUAL_FEATURE_NAMES` — the tree
  would be fed columns in the wrong order.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_FASTSIM, rule

Finding = Tuple[str, str]

#: Keys FASTSIM002 requires (mirrors ``Calibration.from_dict``).
_REQUIRED_KEYS = (
    "machine_fingerprint",
    "workload_fingerprint",
    "seed",
    "n_samples",
    "feature_names",
    "anchors",
    "nominal_corrections",
    "model",
)


def _payload(
    context: LintContext,
) -> Tuple[Optional[Dict[str, Any]], Optional[str], str]:
    """The artifact dict, a load failure message, and a location string."""
    source = context.calibration
    if isinstance(source, dict):
        return source, None, "<calibration>"
    location = str(source)
    try:
        text = Path(location).read_text(encoding="utf-8")
    except OSError as exc:
        return None, f"calibration artifact is unreadable: {exc}", location
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, f"calibration artifact is not valid JSON: {exc}", location
    if not isinstance(document, dict):
        return (
            None,
            "calibration artifact must be a JSON object, got "
            f"{type(document).__name__}",
            location,
        )
    return document, None, location


def _schema_ok(document: Dict[str, Any]) -> bool:
    from repro.fastsim.calibration import CALIBRATION_SCHEMA

    return document.get("schema") == CALIBRATION_SCHEMA and not [
        key for key in _REQUIRED_KEYS if key not in document
    ]


@rule(
    "FASTSIM001",
    FAMILY_FASTSIM,
    Severity.ERROR,
    "the calibration artifact must be a readable JSON object",
)
def check_artifact(context: LintContext) -> Iterator[Finding]:
    _, failure, location = _payload(context)
    if failure is not None:
        yield (failure, location)


@rule(
    "FASTSIM002",
    FAMILY_FASTSIM,
    Severity.ERROR,
    "the artifact must carry the current schema and every required key",
)
def check_schema(context: LintContext) -> Iterator[Finding]:
    from repro.fastsim.calibration import CALIBRATION_SCHEMA

    document, _, location = _payload(context)
    if document is None:
        return
    schema = document.get("schema")
    if schema != CALIBRATION_SCHEMA:
        yield (
            f"calibration schema {schema!r} is not {CALIBRATION_SCHEMA!r}",
            location,
        )
    missing = [key for key in _REQUIRED_KEYS if key not in document]
    if missing:
        yield (
            "calibration artifact lacks required keys: " + ", ".join(missing),
            location,
        )


@rule(
    "FASTSIM003",
    FAMILY_FASTSIM,
    Severity.ERROR,
    "the machine fingerprint must match the current simulator physics",
)
def check_machine_fingerprint(context: LintContext) -> Iterator[Finding]:
    from repro.fastsim.calibration import machine_fingerprint

    document, _, location = _payload(context)
    if document is None or not _schema_ok(document):
        return
    current = machine_fingerprint()
    stored = document["machine_fingerprint"]
    if stored != current:
        yield (
            f"machine fingerprint {stored} does not match the current "
            f"simulator physics {current}: recalibrate before running "
            "the fast engine",
            location,
        )


@rule(
    "FASTSIM004",
    FAMILY_FASTSIM,
    Severity.ERROR,
    "the workload fingerprint must match the current suite",
)
def check_workload_fingerprint(context: LintContext) -> Iterator[Finding]:
    from repro.workloads.suite import workload_fingerprint

    document, _, location = _payload(context)
    if document is None or not _schema_ok(document):
        return
    current = workload_fingerprint(None)
    stored = document["workload_fingerprint"]
    if stored != current:
        yield (
            f"workload fingerprint {stored} does not match the current "
            f"suite {current}: phases changed since the fit",
            location,
        )


@rule(
    "FASTSIM005",
    FAMILY_FASTSIM,
    Severity.ERROR,
    "the residual model and anchor tables must deserialize and be finite",
)
def check_model_and_anchors(context: LintContext) -> Iterator[Finding]:
    from repro.core.tree.serialize import model_from_dict
    from repro.errors import ParseError

    document, _, location = _payload(context)
    if document is None or not _schema_ok(document):
        return
    try:
        model = model_from_dict(document["model"])
    except ParseError as exc:
        yield (f"residual model does not deserialize: {exc}", location)
    else:
        if getattr(model, "root_", None) is None:
            yield ("residual model deserialized to an unfitted tree", location)
    for table_name in ("anchors", "nominal_corrections"):
        table = document[table_name]
        if not isinstance(table, dict) or not table:
            yield (f"{table_name} table is empty or not an object", location)
            continue
        bad = sorted(
            str(key)
            for key, value in table.items()
            if not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not math.isfinite(value)
        )
        if bad:
            yield (
                f"{table_name} table carries non-finite entries for phase "
                "keys: " + ", ".join(bad),
                location,
            )


@rule(
    "FASTSIM006",
    FAMILY_FASTSIM,
    Severity.WARNING,
    "fit-quality stats should exist and sit under the error bound",
)
def check_fit_quality(context: LintContext) -> Iterator[Finding]:
    document, _, location = _payload(context)
    if document is None or not _schema_ok(document):
        return
    stats = document.get("stats")
    if not isinstance(stats, dict) or "rel_err_p95" not in stats:
        yield (
            "calibration carries no fit-quality stats (rel_err_p95): "
            "its accuracy was never measured",
            location,
        )
        return
    rel_err = stats["rel_err_p95"]
    bound = context.config.calibration_rel_err
    if not isinstance(rel_err, (int, float)) or not math.isfinite(rel_err):
        yield (f"rel_err_p95 is not a finite number: {rel_err!r}", location)
    elif rel_err > bound:
        yield (
            f"in-sample relative-error p95 {rel_err:.4f} exceeds "
            f"{bound:.4f}: the calibration fits its own sweep poorly",
            location,
        )


@rule(
    "FASTSIM007",
    FAMILY_FASTSIM,
    Severity.ERROR,
    "stored feature names must match the analytical layer",
)
def check_feature_names(context: LintContext) -> Iterator[Finding]:
    from repro.fastsim.analytic import RESIDUAL_FEATURE_NAMES

    document, _, location = _payload(context)
    if document is None or not _schema_ok(document):
        return
    stored = tuple(str(name) for name in document["feature_names"])
    if stored != RESIDUAL_FEATURE_NAMES:
        yield (
            f"stored feature names ({len(stored)}) disagree with the "
            f"analytical layer's RESIDUAL_FEATURE_NAMES "
            f"({len(RESIDUAL_FEATURE_NAMES)}): the residual tree would "
            "be fed columns in the wrong order",
            location,
        )

"""Dataset rules: vetting section datasets before (or after) modeling.

CounterPoint-style hygiene for counter data: raw hardware-counter
collections routinely violate architectural invariants, and a model fit
on corrupt sections inherits the corruption invisibly.  These rules run
vectorized over a whole :class:`~repro.datasets.dataset.Dataset` and
reuse the same declarative invariant table the per-snapshot collection
checks use (:mod:`repro.counters.invariants`).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.counters.invariants import (
    METRIC_INVARIANTS,
    applicable_invariants,
    check_dataset,
)
from repro.counters.metrics import PREDICTOR_NAMES, TARGET_METRIC
from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_DATASET, rule

Finding = Tuple[str, str]

#: Numerical spread below which a column counts as constant.
_CONSTANT_EPS = 1e-15


def _row_list(rows: Sequence[int], limit: int = 6) -> str:
    shown = ", ".join(str(r) for r in rows[:limit])
    extra = len(rows) - limit
    return shown + (f" (+{extra} more)" if extra > 0 else "")


@rule(
    "DATA001",
    FAMILY_DATASET,
    Severity.ERROR,
    "no NaN or infinite values in attributes or target",
)
def non_finite_values(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    for name, column in zip(dataset.attributes, dataset.X.T):
        bad = np.flatnonzero(~np.isfinite(column))
        if bad.size:
            yield (
                f"{bad.size} non-finite value(s) at rows {_row_list(bad)}",
                f"column {name}",
            )
    bad = np.flatnonzero(~np.isfinite(dataset.y))
    if bad.size:
        yield (
            f"{bad.size} non-finite value(s) at rows {_row_list(bad)}",
            f"column {dataset.target_name}",
        )


@rule(
    "DATA002",
    FAMILY_DATASET,
    Severity.WARNING,
    "no attribute column is constant",
)
def constant_column(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    for name, column in zip(dataset.attributes, dataset.X.T):
        finite = column[np.isfinite(column)]
        if finite.size and np.ptp(finite) <= _CONSTANT_EPS:
            yield (
                f"column is constant at {finite[0]:.6g}; it cannot inform "
                "any split or model term",
                f"column {name}",
            )


@rule(
    "DATA003",
    FAMILY_DATASET,
    Severity.WARNING,
    "no two attribute columns are identical",
)
def duplicate_columns(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    columns = dataset.X.T
    names = dataset.attributes
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            with np.errstate(invalid="ignore"):
                if np.array_equal(columns[i], columns[j], equal_nan=True):
                    yield (
                        f"columns {names[i]} and {names[j]} are identical; "
                        "one is redundant and will destabilize node models",
                        f"column {names[j]}",
                    )


@rule(
    "DATA004",
    FAMILY_DATASET,
    Severity.ERROR,
    "per-instruction ratio columns stay inside [0, bound]",
)
def ratio_out_of_bounds(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    bound = ctx.config.ratio_bound
    known = set(PREDICTOR_NAMES)
    for name, column in zip(dataset.attributes, dataset.X.T):
        if name not in known:
            continue
        finite = np.isfinite(column)
        tolerance = 1e-6 * max(1.0, bound)
        bad = np.flatnonzero(
            finite & ((column < -tolerance) | (column > bound + tolerance))
        )
        if bad.size:
            yield (
                f"{bad.size} value(s) outside [0, {bound:g}] at rows "
                f"{_row_list(bad)}; per-instruction ratios cannot leave "
                "that interval",
                f"column {name}",
            )


@rule(
    "DATA005",
    FAMILY_DATASET,
    Severity.ERROR,
    "the Table I event hierarchy holds across columns",
)
def hierarchy_violation(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    invariants = applicable_invariants(METRIC_INVARIANTS, dataset.attributes)
    if not invariants:
        return
    columns = {
        name: dataset.X[:, i]
        for i, name in enumerate(dataset.attributes)
    }
    for violation in check_dataset(columns, invariants, check_negative=False):
        yield (
            f"{violation.message} at rows {_row_list(violation.rows)}",
            f"invariant {violation.invariant}",
        )


@rule(
    "DATA006",
    FAMILY_DATASET,
    Severity.ERROR,
    "a CPI target is strictly positive",
)
def nonpositive_target(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    if dataset.target_name != TARGET_METRIC.name:
        return  # only CPI carries the physical positivity constraint
    finite = np.isfinite(dataset.y)
    bad = np.flatnonzero(finite & (dataset.y <= 0))
    if bad.size:
        yield (
            f"{bad.size} non-positive CPI value(s) at rows {_row_list(bad)}; "
            "cycles per instruction must be positive",
            f"column {dataset.target_name}",
        )


@rule(
    "DATA007",
    FAMILY_DATASET,
    Severity.WARNING,
    "the target has no extreme outliers (robust z-score)",
)
def target_outliers(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    finite = np.isfinite(dataset.y)
    values = dataset.y[finite]
    if values.size < 8:
        return  # too few rows for a meaningful robust spread
    # CPI-like targets are positive and heavy-tailed (a memory-bound
    # workload legitimately runs at 10x the median CPI), so judge spread
    # on the log scale when possible; fall back to linear otherwise.
    if np.all(values > 0):
        transformed = np.where(finite & (dataset.y > 0), dataset.y, 1.0)
        samples = np.log(transformed)
        reference = np.log(values)
    else:
        samples = dataset.y
        reference = values
    median = float(np.median(reference))
    mad = float(np.median(np.abs(reference - median)))
    if mad <= _CONSTANT_EPS:
        return
    scores = np.abs(samples - median) / (1.4826 * mad)
    bad = np.flatnonzero(finite & (scores > ctx.config.outlier_z))
    if bad.size:
        worst = float(np.max(scores[bad]))
        yield (
            f"{bad.size} outlier(s) beyond {ctx.config.outlier_z:g} robust "
            f"sigma (worst {worst:.1f}) at rows {_row_list(bad)}",
            f"column {dataset.target_name}",
        )


@rule(
    "DATA008",
    FAMILY_DATASET,
    Severity.WARNING,
    "no attribute column is a near-copy of the target (leakage)",
)
def target_leakage(ctx: LintContext) -> Iterator[Finding]:
    dataset = ctx.dataset
    assert dataset is not None
    y = dataset.y
    finite_y = y[np.isfinite(y)]
    if finite_y.size == 0 or np.ptp(finite_y) <= _CONSTANT_EPS:
        return
    for name, column in zip(dataset.attributes, dataset.X.T):
        mask = np.isfinite(column) & np.isfinite(y)
        if mask.sum() < 3 or np.ptp(column[mask]) <= _CONSTANT_EPS:
            continue
        correlation = abs(float(np.corrcoef(column[mask], y[mask])[0, 1]))
        if correlation >= ctx.config.leakage_corr:
            yield (
                f"|correlation| with target {dataset.target_name} is "
                f"{correlation:.6f} (>= {ctx.config.leakage_corr:g}); the "
                "column likely leaks the target",
                f"column {name}",
            )

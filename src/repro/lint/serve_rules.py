"""The ``serve`` rule family: model-registry integrity (SERVE0xx).

A registry entry is a promise — ``cpi-tree@latest`` resolves to a model
whose bytes, schema, and feature set are what the manifest says.  These
rules audit that promise statically (``repro lint --registry``), without
loading models or triggering the runtime's quarantine machinery, so the
check is safe to run against a live serving registry:

* ``SERVE001`` (error): the manifest itself is unreadable or not a
  ``repro-registry/1`` document — nothing can resolve.
* ``SERVE002`` (error): a manifest record points at a blob file that
  does not exist (half-deleted registry, manual cleanup gone wrong).
* ``SERVE003`` (error): a blob's bytes disagree with its ``.sha256``
  sidecar — the corruption ``resolve`` would quarantine.
* ``SERVE004`` (error): the blob's model document disagrees with the
  manifest record (attributes or target) — the manifest was edited or
  the blob swapped; whichever, the registry lies about what it serves.
* ``SERVE005`` (error, needs ``--data``): an entry's feature set does
  not match the dataset's columns — the schema drifted since publish
  and ``/predict`` requests built from this dataset would be refused
  (or worse, silently misaligned by order).
* ``SERVE006`` (warning): quarantined blobs are present — past resolves
  already hit corruption worth investigating.
* ``SERVE007`` (warning): an alias points at a version the manifest no
  longer records, so ``name@alias`` cannot resolve.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.errors import RegistryError
from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_SERVE, rule

if TYPE_CHECKING:
    from repro.serve.registry import ModelRecord, ModelRegistry

Finding = Tuple[str, str]


def _registry(context: LintContext) -> "ModelRegistry":
    from repro.serve.registry import ModelRegistry

    assert context.registry_dir is not None
    return ModelRegistry(context.registry_dir)


def _records(
    registry: "ModelRegistry",
) -> Tuple[List["ModelRecord"], Optional[str]]:
    """Manifest records, or the manifest-level failure message."""
    try:
        return registry.records(), None
    except RegistryError as exc:
        return [], str(exc)


@rule(
    "SERVE001",
    FAMILY_SERVE,
    Severity.ERROR,
    "the registry manifest must parse as a repro-registry/1 document",
)
def check_manifest(context: LintContext) -> Iterator[Finding]:
    registry = _registry(context)
    _, failure = _records(registry)
    if failure is not None:
        yield (failure, str(registry.manifest_path))


@rule(
    "SERVE002",
    FAMILY_SERVE,
    Severity.ERROR,
    "every manifest record must point at an existing blob",
)
def check_missing_blobs(context: LintContext) -> Iterator[Finding]:
    registry = _registry(context)
    records, failure = _records(registry)
    if failure is not None:
        return
    for record in records:
        if not (registry.directory / record.blob).exists():
            yield (
                f"{record.spec}: blob {record.blob!r} is missing from the "
                "registry directory; the version cannot resolve — "
                "republish it",
                record.spec,
            )


@rule(
    "SERVE003",
    FAMILY_SERVE,
    Severity.ERROR,
    "registry blobs must match their checksum sidecars",
)
def check_blob_integrity(context: LintContext) -> Iterator[Finding]:
    registry = _registry(context)
    records, failure = _records(registry)
    if failure is not None:
        return
    for record in records:
        blob = registry.directory / record.blob
        if blob.exists() and not registry.cache._verify(blob):
            yield (
                f"{record.spec}: blob {record.blob!r} does not match its "
                "checksum sidecar — resolving it would quarantine the "
                "blob and fail; republish the model",
                record.spec,
            )


@rule(
    "SERVE004",
    FAMILY_SERVE,
    Severity.ERROR,
    "blob documents must agree with their manifest records",
)
def check_record_blob_agreement(context: LintContext) -> Iterator[Finding]:
    registry = _registry(context)
    records, failure = _records(registry)
    if failure is not None:
        return
    for record in records:
        blob = registry.directory / record.blob
        if not blob.exists():
            continue
        try:
            with open(blob, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            yield (
                f"{record.spec}: blob {record.blob!r} is not valid JSON "
                f"({exc}); republish the model",
                record.spec,
            )
            continue
        if not isinstance(document, dict):
            yield (
                f"{record.spec}: blob {record.blob!r} is not a model "
                "document",
                record.spec,
            )
            continue
        blob_attributes = tuple(
            str(a) for a in document.get("attributes", ())
        )
        if blob_attributes != record.attributes:
            yield (
                f"{record.spec}: manifest records attributes "
                f"{list(record.attributes)} but the blob carries "
                f"{list(blob_attributes)}; the manifest no longer "
                "describes the stored model",
                record.spec,
            )
        blob_target = document.get("target")
        if blob_target != record.target:
            yield (
                f"{record.spec}: manifest records target "
                f"{record.target!r} but the blob predicts "
                f"{blob_target!r}",
                record.spec,
            )


@rule(
    "SERVE005",
    FAMILY_SERVE,
    Severity.ERROR,
    "registry entries should match the dataset's feature set",
)
def check_dataset_schema(context: LintContext) -> Iterator[Finding]:
    if context.dataset is None:
        return
    registry = _registry(context)
    records, failure = _records(registry)
    if failure is not None:
        return
    columns = tuple(context.dataset.attributes)
    for record in records:
        if record.attributes == columns:
            continue
        missing = [a for a in record.attributes if a not in columns]
        extra = [c for c in columns if c not in record.attributes]
        if missing or extra:
            parts = []
            if missing:
                parts.append(f"dataset lacks {missing}")
            if extra:
                parts.append(f"dataset adds {extra}")
            detail = "; ".join(parts)
        else:
            detail = "same names, different order — positional scoring " \
                     "would silently misalign"
        yield (
            f"{record.spec}: feature set no longer matches the dataset "
            f"({detail}); retrain and republish before serving this data",
            record.spec,
        )


@rule(
    "SERVE006",
    FAMILY_SERVE,
    Severity.WARNING,
    "a registry should have no quarantined blobs",
)
def check_quarantine(context: LintContext) -> Iterator[Finding]:
    registry = _registry(context)
    quarantined = registry.cache._quarantined()
    if quarantined:
        names = ", ".join(p.name for p in quarantined[:5])
        suffix = ", ..." if len(quarantined) > 5 else ""
        yield (
            f"{len(quarantined)} quarantined blob"
            f"{'' if len(quarantined) == 1 else 's'} present "
            f"({names}{suffix}); past resolves hit corruption — "
            "republish the affected versions and delete the quarantine",
            str(registry.cache.quarantine_directory),
        )


@rule(
    "SERVE007",
    FAMILY_SERVE,
    Severity.WARNING,
    "aliases must point at recorded versions",
)
def check_aliases(context: LintContext) -> Iterator[Finding]:
    registry = _registry(context)
    try:
        document = registry._read_manifest()
    except RegistryError:
        return
    for name in sorted(document["models"]):
        entry = document["models"][name]
        versions = entry.get("versions", {})
        for alias, version in sorted(entry.get("aliases", {}).items()):
            if str(version) not in versions:
                yield (
                    f"{name}@{alias}: alias points at version {version}, "
                    "which the manifest does not record; the alias "
                    "cannot resolve",
                    f"{name}@{alias}",
                )

"""Text and JSON rendering of lint reports.

The JSON envelope (:func:`json_document`) is shared with other
subcommands (``repro evaluate --format json``) so every machine-readable
``repro`` output carries the same ``format``/``version``/``kind`` header
and can be routed by one consumer.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.diagnostics import LintReport

#: Bump when the JSON envelope changes incompatibly.
REPORT_FORMAT_VERSION = 1


def json_document(kind: str, payload: Dict[str, Any]) -> str:
    """Wrap ``payload`` in the shared machine-readable envelope."""
    document = {
        "format": "repro-report",
        "version": REPORT_FORMAT_VERSION,
        "kind": kind,
    }
    document.update(payload)
    return json.dumps(document, indent=2, sort_keys=True)


def render_text(report: LintReport) -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines = [diagnostic.render() for diagnostic in report.diagnostics]
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable rendering in the shared envelope."""
    return json_document("lint", report.to_dict())

"""The ``cache`` rule family: artifact-cache integrity (CACHE0xx).

Cached datasets and models feed straight into training and analysis, so
a silently corrupted entry poisons results just as surely as a bad tree.
The runtime defends itself — loads verify checksums and quarantine
mismatches — but these rules let ``repro lint --cache-dir`` audit a
cache *statically*: before a run trusts it, after an incident, or in CI.

* ``CACHE001`` (warning): an entry has no checksum sidecar, so loads
  cannot verify it (pre-hardening entry or stripped sidecar).
* ``CACHE002`` (error): an entry's bytes disagree with its sidecar —
  the corruption the runtime would quarantine on load.
* ``CACHE003`` (warning): quarantined entries are present, i.e. past
  loads already hit corruption worth investigating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_CACHE, rule

if TYPE_CHECKING:
    from repro.parallel.cache import ArtifactCache

Finding = Tuple[str, str]


def _cache(context: LintContext) -> "ArtifactCache":
    from repro.parallel.cache import ArtifactCache

    assert context.cache_dir is not None
    return ArtifactCache(context.cache_dir)


@rule(
    "CACHE001",
    FAMILY_CACHE,
    Severity.WARNING,
    "every cache entry should carry a checksum sidecar",
)
def check_missing_checksums(context: LintContext) -> Iterator[Finding]:
    from repro.parallel.cache import STATUS_NO_CHECKSUM

    for entry in _cache(context).scan():
        if entry.status == STATUS_NO_CHECKSUM:
            yield (
                f"cache entry {entry.name!r} has no checksum sidecar; "
                "its integrity cannot be verified on load (re-store it "
                "to gain one)",
                entry.name,
            )


@rule(
    "CACHE002",
    FAMILY_CACHE,
    Severity.ERROR,
    "cache entry bytes must match their checksum sidecar",
)
def check_checksum_mismatches(context: LintContext) -> Iterator[Finding]:
    from repro.parallel.cache import STATUS_MISMATCH

    for entry in _cache(context).scan():
        if entry.status == STATUS_MISMATCH:
            yield (
                f"cache entry {entry.name!r} does not match its checksum "
                "sidecar — the entry is corrupt and a load would "
                "quarantine it",
                entry.name,
            )


@rule(
    "CACHE003",
    FAMILY_CACHE,
    Severity.WARNING,
    "a cache should have no quarantined entries",
)
def check_quarantined_entries(context: LintContext) -> Iterator[Finding]:
    cache = _cache(context)
    quarantined = cache._quarantined()
    if quarantined:
        names = ", ".join(p.name for p in quarantined[:5])
        suffix = ", ..." if len(quarantined) > 5 else ""
        yield (
            f"{len(quarantined)} quarantined entr"
            f"{'y' if len(quarantined) == 1 else 'ies'} present "
            f"({names}{suffix}); past loads hit corruption — inspect "
            "and delete them (`repro cache clear`)",
            str(cache.quarantine_directory),
        )

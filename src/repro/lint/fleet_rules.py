"""The ``fleet`` rule family: fleet-config sanity (FLEET0xx).

A fleet config file (``repro serve --fleet-config fleet.json``) decides
how many workers run, how load is shed, and when the circuit breaker
declares the fleet degraded — a typo here surfaces at 3am as a fleet
that refuses to boot or, worse, boots with no admission control.  These
rules audit the document statically, the same dict
:meth:`~repro.serve.fleet.FleetConfig.from_dict` would consume, without
constructing the config (which would stop at the first problem):

* ``FLEET001`` (error): the document is unreadable, not a JSON object,
  or carries keys :class:`~repro.serve.fleet.FleetConfig` does not
  know — usually a misspelled option silently doing nothing.
* ``FLEET002`` (error): ``workers`` is not a positive integer.
* ``FLEET003`` (error): ``mode`` is not a supported fleet mode, or
  ``reuseport`` is asked to share an OS-assigned port (0), which
  cannot work — every worker must bind the *same* fixed port.
* ``FLEET004`` (error): a timing knob is out of range — timeouts and
  probe intervals must be positive; drain, restart-backoff, and
  breaker-cooldown delays must be non-negative.
* ``FLEET005`` (warning): ``max_inflight`` is null — the fleet will
  admit unbounded concurrent requests and can only shed on deadline;
  an invalid value (not a positive integer) is an error.
* ``FLEET006`` (warning): ``task_timeout`` is not shorter than
  ``router_timeout_s`` — the router would give up on a stalled worker
  before the worker's own deadline sheds the request, turning clean
  503s into client-visible timeouts.
* ``FLEET007`` (error): circuit-breaker settings are out of range
  (``breaker_threshold`` must be a positive integer,
  ``breaker_cooldown_s`` non-negative).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import FAMILY_FLEET, rule

Finding = Tuple[str, str]

#: Keys that must be positive when present (timeouts, rates).
_POSITIVE_KEYS = (
    "max_wait_s",
    "retry_after_s",
    "probe_interval_s",
    "probe_timeout_s",
    "startup_timeout_s",
    "router_timeout_s",
)
#: Keys that must be non-negative when present (delays may be zero).
_NON_NEGATIVE_KEYS = (
    "drain_timeout_s",
    "restart_base_delay_s",
    "restart_max_delay_s",
)


def _known_keys() -> Tuple[str, ...]:
    from repro.serve.fleet import FleetConfig

    return tuple(f.name for f in dataclasses.fields(FleetConfig))


def _document(
    context: LintContext,
) -> Tuple[Optional[Dict[str, Any]], Optional[str], str]:
    """The config dict, a load failure message, and a location string.

    ``context.fleet_config`` is either an in-memory dict (programmatic
    use, tests) or a path to a JSON file; the rules never crash on a
    bad file — FLEET001 reports it.
    """
    source = context.fleet_config
    if isinstance(source, dict):
        return source, None, "<fleet-config>"
    location = str(source)
    try:
        text = Path(location).read_text(encoding="utf-8")
    except OSError as exc:
        return None, f"fleet config is unreadable: {exc}", location
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, f"fleet config is not valid JSON: {exc}", location
    if not isinstance(document, dict):
        return (
            None,
            "fleet config must be a JSON object, got "
            f"{type(document).__name__}",
            location,
        )
    return document, None, location


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@rule(
    "FLEET001",
    FAMILY_FLEET,
    Severity.ERROR,
    "the fleet config must be a JSON object with known keys",
)
def check_document(context: LintContext) -> Iterator[Finding]:
    document, failure, location = _document(context)
    if failure is not None:
        yield (failure, location)
        return
    assert document is not None
    known = _known_keys()
    for key in sorted(set(document) - set(known)):
        yield (
            f"unknown fleet config key {key!r} (known keys: "
            + ", ".join(known) + ")",
            location,
        )


@rule(
    "FLEET002",
    FAMILY_FLEET,
    Severity.ERROR,
    "workers must be a positive integer",
)
def check_workers(context: LintContext) -> Iterator[Finding]:
    document, _, location = _document(context)
    if document is None or "workers" not in document:
        return
    workers = document["workers"]
    if not _is_int(workers) or workers < 1:
        yield (f"workers must be an integer >= 1, got {workers!r}", location)


@rule(
    "FLEET003",
    FAMILY_FLEET,
    Severity.ERROR,
    "mode must be a supported fleet mode with a compatible port",
)
def check_mode(context: LintContext) -> Iterator[Finding]:
    from repro.serve.fleet import MODES

    document, _, location = _document(context)
    if document is None:
        return
    mode = document.get("mode", "router")
    if mode not in MODES:
        yield (
            f"mode must be one of {', '.join(MODES)}; got {mode!r}",
            location,
        )
        return
    if mode == "reuseport" and document.get("port", 8377) == 0:
        yield (
            "reuseport mode needs a fixed port: every worker must bind "
            "the same port, so port 0 (OS-assigned) cannot work",
            location,
        )


@rule(
    "FLEET004",
    FAMILY_FLEET,
    Severity.ERROR,
    "timing knobs must be positive timeouts or non-negative delays",
)
def check_timings(context: LintContext) -> Iterator[Finding]:
    document, _, location = _document(context)
    if document is None:
        return
    for key in _POSITIVE_KEYS:
        if key not in document:
            continue
        value = document[key]
        if not _is_number(value) or value <= 0:
            yield (f"{key} must be a positive number, got {value!r}", location)
    for key in _NON_NEGATIVE_KEYS:
        if key not in document:
            continue
        value = document[key]
        if not _is_number(value) or value < 0:
            yield (
                f"{key} must be a non-negative number, got {value!r}",
                location,
            )
    if "task_timeout" in document and document["task_timeout"] is not None:
        value = document["task_timeout"]
        if not _is_number(value) or value <= 0:
            yield (
                f"task_timeout must be null or a positive number, "
                f"got {value!r}",
                location,
            )


@rule(
    "FLEET005",
    FAMILY_FLEET,
    Severity.WARNING,
    "max_inflight should bound admission (null disables load shedding)",
)
def check_admission(context: LintContext) -> Iterator[Finding]:
    document, _, location = _document(context)
    if document is None or "max_inflight" not in document:
        return
    value = document["max_inflight"]
    if value is None:
        yield (
            "max_inflight is null: no admission control — the fleet "
            "accepts unbounded concurrent requests and can only shed "
            "on deadline",
            location,
        )
    elif not _is_int(value) or value < 1:
        # Worse than missing: the config will not construct at all.
        yield Diagnostic(
            rule_id="FLEET005",
            severity=Severity.ERROR,
            message=(
                f"max_inflight must be null or an integer >= 1, "
                f"got {value!r}"
            ),
            location=location,
        )


@rule(
    "FLEET006",
    FAMILY_FLEET,
    Severity.WARNING,
    "task_timeout should be shorter than the router timeout",
)
def check_timeout_ordering(context: LintContext) -> Iterator[Finding]:
    document, _, location = _document(context)
    if document is None:
        return
    task_timeout = document.get("task_timeout")
    router_timeout = document.get("router_timeout_s", 10.0)
    if not (_is_number(task_timeout) and _is_number(router_timeout)):
        return
    if task_timeout >= router_timeout:
        yield (
            f"task_timeout ({task_timeout:g}s) is not shorter than "
            f"router_timeout_s ({router_timeout:g}s): the router gives "
            "up on a stalled worker before the worker's deadline sheds "
            "the request, turning clean 503s into client timeouts",
            location,
        )


@rule(
    "FLEET007",
    FAMILY_FLEET,
    Severity.ERROR,
    "circuit-breaker settings must be in range",
)
def check_breaker(context: LintContext) -> Iterator[Finding]:
    document, _, location = _document(context)
    if document is None:
        return
    if "breaker_threshold" in document:
        value = document["breaker_threshold"]
        if not _is_int(value) or value < 1:
            yield (
                f"breaker_threshold must be an integer >= 1, "
                f"got {value!r}",
                location,
            )
    if "breaker_cooldown_s" in document:
        value = document["breaker_cooldown_s"]
        if not _is_number(value) or value < 0:
            yield (
                f"breaker_cooldown_s must be a non-negative number, "
                f"got {value!r}",
                location,
            )

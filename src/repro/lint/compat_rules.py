"""Compatibility rules: is this dataset safe to feed to this model?

A serialized tree is only as trustworthy as the match between the data
it was trained on and the data it is asked to classify.  These rules
cross-check a fitted :class:`~repro.core.tree.m5.M5Prime` against a
:class:`~repro.datasets.dataset.Dataset`: name/order agreement first,
then whether the data actually lives in the regime the tree's splits
and training ranges describe.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.datasets.dataset import Dataset
from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_COMPAT, rule

Finding = Tuple[str, str]


def _aligned(model: M5Prime, dataset: Dataset) -> bool:
    return tuple(dataset.attributes) == tuple(model.attributes_)


@rule(
    "COMPAT001",
    FAMILY_COMPAT,
    Severity.ERROR,
    "dataset attributes match the model's training attributes, in order",
)
def attribute_mismatch(ctx: LintContext) -> Iterator[Finding]:
    model, dataset = ctx.model, ctx.dataset
    assert model is not None and dataset is not None
    trained = tuple(model.attributes_)
    given = tuple(dataset.attributes)
    if given == trained:
        return
    missing = [name for name in trained if name not in given]
    extra = [name for name in given if name not in trained]
    if missing:
        yield (
            f"dataset lacks attribute(s) the model was trained on: "
            f"{', '.join(missing)}",
            "",
        )
    if extra:
        yield (
            f"dataset carries attribute(s) unknown to the model: "
            f"{', '.join(extra)}",
            "",
        )
    if not missing and not extra:
        yield (
            "dataset has the model's attributes but in a different order; "
            "column positions would be misread",
            "",
        )


@rule(
    "COMPAT002",
    FAMILY_COMPAT,
    Severity.WARNING,
    "dataset target name matches the model's",
)
def target_mismatch(ctx: LintContext) -> Iterator[Finding]:
    model, dataset = ctx.model, ctx.dataset
    assert model is not None and dataset is not None
    if dataset.target_name != model.target_name_:
        yield (
            f"dataset target is {dataset.target_name!r} but the model "
            f"predicts {model.target_name_!r}",
            "",
        )


def _model_ranges(model: M5Prime) -> Optional[Dict[int, Tuple[float, float]]]:
    """Per-attribute range the model knows: training range, else split span."""
    if model.feature_ranges_ is not None:
        return dict(enumerate(model.feature_ranges_))
    assert model.root_ is not None
    spans: Dict[int, List[float]] = {}
    for node in model.root_.splits():
        spans.setdefault(node.attribute_index, []).append(node.threshold)
    if not spans:
        return None
    return {
        index: (min(thresholds), max(thresholds))
        for index, thresholds in spans.items()
    }


@rule(
    "COMPAT003",
    FAMILY_COMPAT,
    Severity.WARNING,
    "dataset values stay near the ranges the tree was trained on",
)
def data_outside_trained_range(ctx: LintContext) -> Iterator[Finding]:
    model, dataset = ctx.model, ctx.dataset
    assert model is not None and dataset is not None
    if not _aligned(model, dataset):
        return  # COMPAT001 already reported the real problem
    ranges = _model_ranges(model)
    if ranges is None:
        return  # single-leaf pre-range artifact: nothing to compare against
    slack = ctx.config.range_slack
    for index, (low, high) in sorted(ranges.items()):
        if not 0 <= index < dataset.n_attributes:
            continue  # TREE001 territory
        span = high - low
        margin = slack * (span if span > 0 else max(abs(high), 1.0))
        column = dataset.X[:, index]
        finite = np.isfinite(column)
        bad = np.flatnonzero(
            finite & ((column < low - margin) | (column > high + margin))
        )
        if bad.size:
            fraction = bad.size / max(dataset.n_instances, 1)
            yield (
                f"{bad.size} value(s) ({100 * fraction:.1f}%) fall outside "
                f"[{low:.6g}, {high:.6g}] (+{100 * slack:.0f}% slack) the "
                "model was trained on; its predictions extrapolate there",
                f"column {dataset.attributes[index]}",
            )


@rule(
    "COMPAT004",
    FAMILY_COMPAT,
    Severity.WARNING,
    "a multi-leaf tree spreads the dataset over more than one class",
)
def single_leaf_concentration(ctx: LintContext) -> Iterator[Finding]:
    model, dataset = ctx.model, ctx.dataset
    assert model is not None and dataset is not None
    if not _aligned(model, dataset) or model.n_leaves < 2:
        return
    if not np.isfinite(dataset.X).all():
        return  # DATA001 territory; routing NaNs is undefined
    leaf_ids = model.leaf_ids(dataset.X)
    distinct = np.unique(leaf_ids)
    if distinct.size == 1:
        yield (
            f"all {dataset.n_instances} instances route to leaf "
            f"LM{int(distinct[0])} of a {model.n_leaves}-leaf tree; the "
            "dataset does not exercise the model's class structure",
            "",
        )


@rule(
    "COMPAT005",
    FAMILY_COMPAT,
    Severity.ERROR,
    "the model produces finite predictions on the dataset",
)
def non_finite_predictions(ctx: LintContext) -> Iterator[Finding]:
    model, dataset = ctx.model, ctx.dataset
    assert model is not None and dataset is not None
    if not _aligned(model, dataset):
        return  # COMPAT001 already reported the real problem
    if not np.isfinite(dataset.X).all():
        return  # DATA001 territory; NaN inputs trivially break predictions
    predictions = model.predict(dataset.X)
    bad = np.flatnonzero(~np.isfinite(predictions))
    if bad.size:
        shown = ", ".join(str(int(i)) for i in bad[:6])
        extra = bad.size - 6
        rows = shown + (f" (+{extra} more)" if extra > 0 else "")
        yield (
            f"{bad.size} non-finite prediction(s) at rows {rows}",
            "",
        )

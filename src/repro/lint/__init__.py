"""Static analysis of trees, datasets, and model/data compatibility.

The paper's value proposition is *trustworthy interpretation*: split
variables and leaf coefficients are read off as micro-architectural
explanations, so a malformed tree or a corrupt counter dataset silently
poisons the "what" and "how much" answers.  This subsystem verifies the
artifacts statically — before they are trained on, shipped, or loaded —
through three rule families:

* **tree** (``TREE0xx``): structural soundness of a fitted/deserialized
  :class:`~repro.core.tree.m5.M5Prime` — feature indices, reachability,
  leaf populations, coefficient sanity, serialization round trips.
* **dataset** (``DATA0xx``): section-dataset hygiene — non-finite
  values, constant/duplicate columns, per-instruction ratio bounds, the
  Table I event hierarchy, target outliers and leakage.
* **compat** (``COMPAT0xx``): model vs. dataset — attribute name/order
  agreement, values inside the trained regime, finite predictions.
* **cache** (``CACHE0xx``): artifact-cache integrity — entries without
  checksum sidecars, checksum mismatches, quarantined entries.
* **serve** (``SERVE0xx``): model-registry integrity — manifest
  well-formedness, missing/corrupt blobs, manifest-vs-blob agreement,
  registry entries whose feature set no longer matches the dataset.
* **forest** (``FOREST0xx``): published-ensemble integrity — forest
  blobs that parse as ``repro-forest`` documents, tree counts that
  match the declared arena, refined leaf-weight vectors of the right
  length with finite values, dead member trees, single-tree forests.
* **verify** (``VERIFY0xx``): static verification of the compiled tree
  arena (:mod:`repro.verify`) — structural well-formedness plus
  interval abstract interpretation: dead branches, domain coverage,
  bounded predictions.
* **fleet** (``FLEET0xx``): fleet-config sanity — unknown keys, worker
  counts, mode/port compatibility, timing knobs, admission control,
  and circuit-breaker settings, audited before a fleet tries to boot
  with them.
* **fastsim** (``FASTSIM0xx``): fastsim calibration-artifact audit —
  schema and required keys, machine/workload fingerprint freshness,
  residual-model and anchor-table integrity, fit-quality stats, and
  feature-name agreement with the analytical layer, checked before the
  fast engine is allowed to serve predictions from the artifact.

Usage::

    from repro.lint import run_lint
    report = run_lint(model=model, dataset=dataset)
    print(report.summary())
    assert report.exit_code(strict=True) == 0

or from the command line::

    repro lint --model model.json --data sections.csv --strict
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.datasets.dataset import Dataset
from repro.core.tree.m5 import M5Prime
from repro.errors import LintError
from repro.lint.context import LintConfig, LintContext
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.loading import Table, as_table, load_table
from repro.lint.registry import (
    ALL_FAMILIES,
    FAMILY_CACHE,
    FAMILY_COMPAT,
    FAMILY_DATASET,
    FAMILY_FASTSIM,
    FAMILY_FLEET,
    FAMILY_FOREST,
    FAMILY_SERVE,
    FAMILY_TREE,
    FAMILY_VERIFY,
    LintRule,
    all_rules,
    get_rule,
    rule,
    rules_for,
)
from repro.lint.reporters import (
    json_document,
    render_json,
    render_text,
)

# Importing the rule modules registers their rules.
from repro.lint import tree_rules as _tree_rules  # noqa: F401
from repro.lint import data_rules as _data_rules  # noqa: F401
from repro.lint import compat_rules as _compat_rules  # noqa: F401
from repro.lint import cache_rules as _cache_rules  # noqa: F401
from repro.lint import serve_rules as _serve_rules  # noqa: F401
from repro.lint import forest_rules as _forest_rules  # noqa: F401
from repro.lint import verify_rules as _verify_rules  # noqa: F401
from repro.lint import fleet_rules as _fleet_rules  # noqa: F401
from repro.lint import fastsim_rules as _fastsim_rules  # noqa: F401

__all__ = [
    "ALL_FAMILIES",
    "FAMILY_CACHE",
    "FAMILY_FASTSIM",
    "FAMILY_FLEET",
    "FAMILY_FOREST",
    "FAMILY_SERVE",
    "FAMILY_VERIFY",
    "Diagnostic",
    "LintConfig",
    "LintContext",
    "LintReport",
    "LintRule",
    "Severity",
    "Table",
    "all_rules",
    "as_table",
    "get_rule",
    "json_document",
    "load_table",
    "lint_cache",
    "lint_calibration",
    "lint_compatibility",
    "lint_dataset",
    "lint_fleet",
    "lint_forest",
    "lint_model",
    "lint_registry",
    "lint_verify",
    "render_json",
    "render_text",
    "rule",
    "rules_for",
    "run_lint",
]


def _resolve_families(
    model: Optional[M5Prime],
    dataset: Optional[Table],
    cache_dir: Optional[Path],
    registry_dir: Optional[Path],
    fleet_config: Optional[Union[Path, dict]],
    calibration: Optional[Union[Path, dict]],
    families: Optional[Sequence[str]],
) -> tuple:
    available = []
    if model is not None:
        available.append(FAMILY_TREE)
    if dataset is not None:
        available.append(FAMILY_DATASET)
    if model is not None and dataset is not None:
        available.append(FAMILY_COMPAT)
    if cache_dir is not None:
        available.append(FAMILY_CACHE)
    if registry_dir is not None:
        available.append(FAMILY_SERVE)
        available.append(FAMILY_FOREST)
    if model is not None:
        available.append(FAMILY_VERIFY)
    if fleet_config is not None:
        available.append(FAMILY_FLEET)
    if calibration is not None:
        available.append(FAMILY_FASTSIM)
    if families is None:
        return tuple(available)
    needs = {
        FAMILY_TREE: "a model",
        FAMILY_DATASET: "a dataset",
        FAMILY_COMPAT: "both a model and a dataset",
        FAMILY_CACHE: "a cache directory",
        FAMILY_SERVE: "a registry directory",
        FAMILY_FOREST: "a registry directory",
        FAMILY_VERIFY: "a model",
        FAMILY_FLEET: "a fleet config",
        FAMILY_FASTSIM: "a calibration artifact",
    }
    for family in families:
        if family not in ALL_FAMILIES:
            raise LintError(f"unknown rule family {family!r}")
        if family not in available:
            raise LintError(f"family {family!r} needs {needs[family]}")
    return tuple(f for f in ALL_FAMILIES if f in families)


def run_lint(
    model: Optional[M5Prime] = None,
    dataset: Optional[Union[Dataset, Table]] = None,
    config: Optional[LintConfig] = None,
    families: Optional[Sequence[str]] = None,
    cache_dir: Optional[Path] = None,
    registry_dir: Optional[Path] = None,
    fleet_config: Optional[Union[Path, dict]] = None,
    calibration: Optional[Union[Path, dict]] = None,
) -> LintReport:
    """Run every applicable lint rule and collect the findings.

    Args:
        model: A *fitted* :class:`M5Prime` (enables the tree family).
        dataset: A section :class:`Dataset`, or the lenient
            :class:`Table` view from :func:`load_table` for files a
            validating Dataset would refuse (enables the dataset family;
            together with ``model``, the compat family).
        config: Threshold overrides; defaults to :class:`LintConfig`.
        families: Restrict to these families instead of everything the
            inputs allow.
        cache_dir: An artifact-cache directory to audit (enables the
            cache family: missing checksums, mismatches, quarantine).
        registry_dir: A model-registry directory to audit (enables the
            serve family: manifest integrity, blob checksums,
            manifest-vs-blob agreement; with ``dataset``, feature-set
            drift against the data).
        fleet_config: A fleet config to audit — the parsed dict or a
            path to the JSON file (enables the fleet family; a file
            that fails to load is a FLEET001 finding, not a crash).
        calibration: A fastsim calibration artifact to audit — the
            serialized payload dict or a path to the JSON file (enables
            the fastsim family; a file that fails to load is a
            FASTSIM001 finding, not a crash).

    Returns:
        A :class:`LintReport`; ``report.exit_code(strict)`` maps it to
        the CLI contract (0 clean, 1 warnings under strict, 2 errors).

    Raises:
        LintError: No inputs given, an unfitted model, or a requested
            family its inputs cannot support.
    """
    if (model is None and dataset is None and cache_dir is None
            and registry_dir is None and fleet_config is None
            and calibration is None):
        raise LintError(
            "lint needs a model, a dataset, a cache directory, a "
            "registry directory, a fleet config, or a calibration "
            "artifact"
        )
    if model is not None and model.root_ is None:
        raise LintError("cannot lint an unfitted model")
    table = as_table(dataset) if dataset is not None else None
    selected = _resolve_families(
        model, table, cache_dir, registry_dir, fleet_config, calibration,
        families,
    )
    context = LintContext(
        model=model, dataset=table, cache_dir=cache_dir,
        registry_dir=registry_dir, fleet_config=fleet_config,
        calibration=calibration, config=config or LintConfig(),
    )
    report = LintReport(families=selected)
    for family in selected:
        for lint_rule in rules_for(family):
            report.n_rules += 1
            try:
                findings = lint_rule.check(context)
            except LintError:
                raise
            except Exception as exc:
                raise LintError(
                    f"lint rule {lint_rule.rule_id} crashed: {exc!r}"
                ) from exc
            for finding in findings:
                if isinstance(finding, Diagnostic):
                    report.diagnostics.append(finding)
                else:
                    message, location = finding
                    report.diagnostics.append(
                        Diagnostic(
                            rule_id=lint_rule.rule_id,
                            severity=lint_rule.severity,
                            message=message,
                            location=location,
                        )
                    )
    return report


def lint_model(
    model: M5Prime, config: Optional[LintConfig] = None
) -> LintReport:
    """Run the tree rules alone."""
    return run_lint(model=model, config=config, families=(FAMILY_TREE,))


def lint_dataset(
    dataset: Union[Dataset, Table], config: Optional[LintConfig] = None
) -> LintReport:
    """Run the dataset rules alone."""
    return run_lint(dataset=dataset, config=config, families=(FAMILY_DATASET,))


def lint_compatibility(
    model: M5Prime,
    dataset: Union[Dataset, Table],
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Run the model-vs-dataset compatibility rules alone."""
    return run_lint(
        model=model, dataset=dataset, config=config, families=(FAMILY_COMPAT,)
    )


def lint_verify(
    model: M5Prime, config: Optional[LintConfig] = None
) -> LintReport:
    """Run the static-verifier (VERIFY) rules alone."""
    return run_lint(model=model, config=config, families=(FAMILY_VERIFY,))


def lint_cache(
    cache_dir: Path, config: Optional[LintConfig] = None
) -> LintReport:
    """Run the artifact-cache integrity rules alone."""
    return run_lint(
        cache_dir=cache_dir, config=config, families=(FAMILY_CACHE,)
    )


def lint_fleet(
    fleet_config: Union[Path, dict], config: Optional[LintConfig] = None
) -> LintReport:
    """Run the fleet-config rules alone."""
    return run_lint(
        fleet_config=fleet_config, config=config, families=(FAMILY_FLEET,)
    )


def lint_calibration(
    calibration: Union[Path, dict], config: Optional[LintConfig] = None
) -> LintReport:
    """Run the fastsim calibration-artifact rules alone."""
    return run_lint(
        calibration=calibration, config=config, families=(FAMILY_FASTSIM,)
    )


def lint_registry(
    registry_dir: Path,
    dataset: Optional[Union[Dataset, Table]] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Run the model-registry (serve) rules alone.

    With ``dataset``, SERVE005 additionally checks every registry
    entry's feature set against the data it would be asked to score.
    """
    return run_lint(
        dataset=dataset, registry_dir=registry_dir, config=config,
        families=(FAMILY_SERVE,),
    )


def lint_forest(
    registry_dir: Path, config: Optional[LintConfig] = None
) -> LintReport:
    """Run the published-forest integrity (FOREST) rules alone."""
    return run_lint(
        registry_dir=registry_dir, config=config, families=(FAMILY_FOREST,),
    )

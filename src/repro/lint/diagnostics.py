"""Diagnostic and report types for the lint subsystem.

A lint run produces a :class:`LintReport`: a flat list of
:class:`Diagnostic` records, each tagged with the stable id of the rule
that emitted it, a severity, a human-readable message and a location
string ("leaf LM3", "column L2M", "rows 4, 17").  The report knows how
to fold itself into the CI-friendly exit-code contract of ``repro
lint``: 0 clean, 1 warnings under ``--strict``, 2 errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Tuple


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings invalidate the artifact (a model that cannot be
    trusted, data that cannot be modeled); ``WARNING`` findings are
    suspicious but survivable; ``INFO`` is advisory.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one rule.

    Attributes:
        rule_id: Stable identifier of the emitting rule (``"TREE002"``).
        severity: :class:`Severity` of this finding.
        message: Human-readable description of the defect.
        location: Where in the artifact the defect lives, e.g.
            ``"leaf LM3"`` or ``"column L2M"``; empty when the finding is
            about the artifact as a whole.
    """

    rule_id: str
    severity: Severity
    message: str
    location: str = ""

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity.value:<7} {self.rule_id:<9}{where} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
        }


@dataclass
class LintReport:
    """The outcome of one lint run.

    Attributes:
        diagnostics: Every finding, in rule-registration order.
        families: The rule families that actually ran
            (subset of ``("tree", "dataset", "compat")``).
        n_rules: How many rules ran (clean rules included).
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    families: Tuple[str, ...] = ()
    n_rules: int = 0

    @property
    def n_errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def is_clean(self) -> bool:
        return not self.diagnostics

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        """All findings emitted by one rule."""
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def rule_ids(self) -> List[str]:
        """Distinct rule ids with findings, in first-appearance order."""
        seen: List[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.rule_id not in seen:
                seen.append(diagnostic.rule_id)
        return seen

    def exit_code(self, strict: bool = False) -> int:
        """The ``repro lint`` exit-code contract.

        0 when clean (or only ``INFO``), 1 when the worst finding is a
        warning and ``strict`` is set, 2 on any error.
        """
        if self.n_errors:
            return 2
        if self.n_warnings and strict:
            return 1
        return 0

    def summary(self) -> str:
        if self.is_clean:
            return (
                f"clean: {self.n_rules} rules, "
                f"families {', '.join(self.families) or 'none'}"
            )
        return (
            f"{self.n_errors} error(s), {self.n_warnings} warning(s) "
            f"from {self.n_rules} rules "
            f"(families {', '.join(self.families) or 'none'})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "families": list(self.families),
            "n_rules": self.n_rules,
            "n_errors": self.n_errors,
            "n_warnings": self.n_warnings,
            "clean": self.is_clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

"""The ``forest`` rule family: published-ensemble integrity (FOREST00x).

A ``kind: forest`` registry entry promises a multi-tree arena whose
offsets, leaf counts, and refined weights all agree.  These rules audit
that promise statically from the blob JSON — no model loading, no
quarantine side effects — and share their ids with the in-memory
diagnostics :func:`repro.verify.verify_forest` emits, so the same
defect reads the same whether it surfaced at publish time or in a
registry audit:

* ``FOREST001`` (error): a forest blob is unreadable, not a
  ``repro-forest`` document, or its kind disagrees with the manifest.
* ``FOREST002`` (error): the blob's tree list disagrees with its
  declared ``n_trees`` — the arena offsets the document implies are a
  lie.
* ``FOREST003`` (error): refined weight/active vectors whose length
  does not match the total leaf count across members.
* ``FOREST004`` (error): non-finite refined weights among active
  leaves.
* ``FOREST005`` (warning): a member tree whose every leaf the
  refinement pass pruned — it costs routing work and contributes
  nothing.
* ``FOREST006`` (warning): a single-tree "forest" — bagging overhead
  without aggregation benefit.

Like the SERVE family, these run whenever ``--registry`` is given; a
registry with no forest entries yields no findings.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lint.context import LintContext
from repro.lint.diagnostics import Severity
from repro.lint.registry import FAMILY_FOREST, rule
from repro.lint.serve_rules import _records, _registry

Finding = Tuple[str, str]


def _forest_blobs(
    context: LintContext,
) -> Iterator[Tuple[str, Path, Optional[Dict[str, Any]]]]:
    """Every ``kind: forest`` record's ``(spec, path, document)``.

    ``document`` is ``None`` when the blob is missing or unparsable —
    FOREST001 reports that; later rules skip such entries.
    """
    registry = _registry(context)
    records, failure = _records(registry)
    if failure is not None:
        return
    for record in records:
        if record.kind != "forest":
            continue
        path = registry.directory / record.blob
        if not path.exists():
            # SERVE002 already owns the missing-blob finding.
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            yield record.spec, path, None
            continue
        if not isinstance(document, dict):
            yield record.spec, path, None
            continue
        yield record.spec, path, document


def _count_leaves(tree: Any) -> Optional[int]:
    """Leaf count of one serialized tree document (iterative walk)."""
    if not isinstance(tree, dict):
        return None
    leaves = 0
    stack: List[Any] = [tree]
    while stack:
        node = stack.pop()
        if not isinstance(node, dict):
            return None
        kind = node.get("kind")
        if kind == "leaf":
            leaves += 1
        elif kind == "split":
            stack.append(node.get("left"))
            stack.append(node.get("right"))
        else:
            return None
    return leaves


def _total_leaves(document: Dict[str, Any]) -> Optional[int]:
    trees = document.get("trees")
    if not isinstance(trees, list):
        return None
    total = 0
    for tree_document in trees:
        if not isinstance(tree_document, dict):
            return None
        count = _count_leaves(tree_document.get("tree"))
        if count is None:
            return None
        total += count
    return total


def _refined_vectors(
    document: Dict[str, Any],
) -> Optional[Tuple[List[float], List[int]]]:
    """The blob's ``(weights, active)``, or ``None`` when absent/bad."""
    refined = document.get("refined")
    if not isinstance(refined, dict):
        return None
    weights = refined.get("weights")
    active = refined.get("active")
    if not isinstance(weights, list) or not isinstance(active, list):
        return None
    try:
        return (
            [float(w) for w in weights],
            [int(bool(a)) for a in active],
        )
    except (TypeError, ValueError):
        return None


@rule(
    "FOREST001",
    FAMILY_FOREST,
    Severity.ERROR,
    "forest blobs must parse as repro-forest documents",
)
def check_forest_blobs(context: LintContext) -> Iterator[Finding]:
    for spec, path, document in _forest_blobs(context):
        if document is None:
            yield (
                f"{spec}: blob {path.name!r} is not readable JSON; "
                "republish the forest",
                spec,
            )
        elif document.get("format") != "repro-forest":
            yield (
                f"{spec}: manifest kind is 'forest' but the blob's "
                f"format is {document.get('format')!r}; the manifest no "
                "longer describes the stored artifact",
                spec,
            )


@rule(
    "FOREST002",
    FAMILY_FOREST,
    Severity.ERROR,
    "a forest blob's tree list must match its declared n_trees",
)
def check_tree_count(context: LintContext) -> Iterator[Finding]:
    for spec, _, document in _forest_blobs(context):
        if document is None or document.get("format") != "repro-forest":
            continue
        declared = document.get("n_trees")
        trees = document.get("trees")
        found = len(trees) if isinstance(trees, list) else None
        if not isinstance(declared, int) or declared != found:
            yield (
                f"{spec}: document declares {declared!r} trees but "
                f"carries {found!r}; arena offsets built from it would "
                "be wrong — republish the forest",
                spec,
            )


@rule(
    "FOREST003",
    FAMILY_FOREST,
    Severity.ERROR,
    "refined weight vectors must cover every forest leaf exactly once",
)
def check_refined_length(context: LintContext) -> Iterator[Finding]:
    for spec, _, document in _forest_blobs(context):
        if document is None or document.get("format") != "repro-forest":
            continue
        if document.get("refined") is None:
            continue
        vectors = _refined_vectors(document)
        total = _total_leaves(document)
        if vectors is None or total is None:
            yield (
                f"{spec}: refined block or tree list is malformed; the "
                "leaf weights cannot be checked — republish the forest",
                spec,
            )
            continue
        weights, active = vectors
        if len(weights) != total or len(active) != total:
            yield (
                f"{spec}: refined block carries {len(weights)} weights "
                f"and {len(active)} active flags for {total} forest "
                "leaves; the weights were fitted against a different "
                "ensemble — republish the forest",
                spec,
            )


@rule(
    "FOREST004",
    FAMILY_FOREST,
    Severity.ERROR,
    "active refined weights must be finite",
)
def check_refined_finite(context: LintContext) -> Iterator[Finding]:
    for spec, _, document in _forest_blobs(context):
        if document is None or document.get("format") != "repro-forest":
            continue
        vectors = _refined_vectors(document)
        if vectors is None:
            continue
        weights, active = vectors
        if len(weights) != len(active):
            continue
        bad = sum(
            1 for weight, live in zip(weights, active)
            if live and not math.isfinite(weight)
        )
        if bad:
            yield (
                f"{spec}: {bad} active refined weight(s) are NaN or "
                "infinite; refined predictions would be non-finite — "
                "refit the refinement pass and republish",
                spec,
            )


@rule(
    "FOREST005",
    FAMILY_FOREST,
    Severity.WARNING,
    "every member tree should keep at least one active leaf",
)
def check_dead_trees(context: LintContext) -> Iterator[Finding]:
    for spec, _, document in _forest_blobs(context):
        if document is None or document.get("format") != "repro-forest":
            continue
        vectors = _refined_vectors(document)
        trees = document.get("trees")
        if vectors is None or not isinstance(trees, list):
            continue
        _, active = vectors
        offset = 0
        for index, tree_document in enumerate(trees):
            if not isinstance(tree_document, dict):
                break
            count = _count_leaves(tree_document.get("tree"))
            if count is None or offset + count > len(active):
                break
            if count and not any(active[offset:offset + count]):
                yield (
                    f"{spec}: tree[{index}] has no active leaves after "
                    "refinement (dead tree); it costs routing work and "
                    "contributes nothing — consider refitting with "
                    "fewer prunings",
                    spec,
                )
            offset += count


@rule(
    "FOREST006",
    FAMILY_FOREST,
    Severity.WARNING,
    "a forest should aggregate more than one tree",
)
def check_single_tree(context: LintContext) -> Iterator[Finding]:
    for spec, _, document in _forest_blobs(context):
        if document is None or document.get("format") != "repro-forest":
            continue
        trees = document.get("trees")
        if isinstance(trees, list) and len(trees) == 1:
            yield (
                f"{spec}: forest carries a single tree; bagging adds "
                "serving cost without aggregation benefit — publish the "
                "tree directly or raise n_estimators",
                spec,
            )

"""The paper's contribution: the M5' model tree and the analysis layer."""

from repro.core.tree import M5Prime
from repro.core.analysis import PerformanceAnalyzer

__all__ = ["M5Prime", "PerformanceAnalyzer"]

"""Leaf/node linear models with M5-style term dropping.

Each tree node carries a multivariate linear model of the target.  M5
keeps those models small by greedily removing terms as long as the
*pessimistic* error estimate — average absolute error inflated by
``(n + v) / (n - v)`` for ``v`` estimated parameters on ``n`` instances —
does not increase.  The surviving terms are the ones the paper reads off
as per-event performance impacts (its LM8/LM11 examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import format_float
from repro.errors import DataError

#: Pessimistic multiplier used when a model has at least as many
#: parameters as instances (the (n+v)/(n-v) correction is undefined).
_SATURATED_PENALTY = 10.0


@dataclass(frozen=True)
class LinearModel:
    """A fitted linear model over a subset of dataset attributes.

    Attributes:
        intercept: Constant term.
        indices: Column indices (into the training attribute order) of the
            retained terms.
        names: Attribute names matching ``indices``.
        coefficients: Slope per retained term.
        n_training: Instances the model was fitted on.
        training_error: Plain average absolute error on those instances.
    """

    intercept: float
    indices: Tuple[int, ...]
    names: Tuple[str, ...]
    coefficients: Tuple[float, ...]
    n_training: int
    training_error: float

    def __post_init__(self) -> None:
        if not (len(self.indices) == len(self.names) == len(self.coefficients)):
            raise DataError("indices, names and coefficients must align")

    @property
    def n_parameters(self) -> int:
        """Estimated parameters: one per term plus the intercept."""
        return len(self.coefficients) + 1

    @property
    def is_constant(self) -> bool:
        return not self.coefficients

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict for a full-width attribute matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        result = np.full(X.shape[0], self.intercept)
        for index, coefficient in zip(self.indices, self.coefficients):
            result += coefficient * X[:, index]
        return result

    def predict_one(self, x: np.ndarray) -> float:
        """Predict a single full-width attribute row."""
        value = self.intercept
        for index, coefficient in zip(self.indices, self.coefficients):
            value += coefficient * x[index]
        return float(value)

    def adjusted_error(self) -> float:
        """Training error under the M5 (n+v)/(n-v) pessimistic correction."""
        return adjusted_error(self.training_error, self.n_training, self.n_parameters)

    def describe(self, target_name: str = "Y", digits: int = 4) -> str:
        """Render as an equation, e.g. ``CPI = 0.52 + 6.69 * L1IM``."""
        parts = [format_float(self.intercept, digits)]
        for name, coefficient in zip(self.names, self.coefficients):
            sign = "-" if coefficient < 0 else "+"
            parts.append(f"{sign} {format_float(abs(coefficient), digits)} * {name}")
        return f"{target_name} = " + " ".join(parts)


def adjusted_error(average_abs_error: float, n: int, n_parameters: int) -> float:
    """M5's pessimistic error: AAE * (n + v) / (n - v).

    When ``n <= v`` the correction blows up; M5 caps it with a large
    constant so saturated models are strongly discouraged but finite.
    """
    if n <= 0:
        return float("inf")
    if n <= n_parameters:
        return average_abs_error * _SATURATED_PENALTY
    return average_abs_error * (n + n_parameters) / (n - n_parameters)


def select_uncorrelated(
    X: np.ndarray,
    y: np.ndarray,
    candidate_indices: Sequence[int],
    threshold: float = 0.95,
) -> List[int]:
    """Greedily drop near-duplicate candidate attributes.

    Counter sets contain families of almost-identical metrics (the Table I
    DTLB group, or L2M vs DtlbLdM inside a pointer-chasing class); fitting
    both members of a pair correlated above ``threshold`` yields huge
    opposite-signed coefficients that destroy interpretability.  Candidates
    are ranked by |correlation with the target| and kept only if they do
    not correlate beyond ``threshold`` with an already-kept candidate.
    The returned list is in ascending index order.
    """
    if not 0.0 < threshold <= 1.0:
        from repro.errors import ConfigError

        raise ConfigError(f"threshold must lie in (0, 1], got {threshold}")

    def correlation(a: np.ndarray, b: np.ndarray) -> float:
        if np.ptp(a) <= 1e-15 or np.ptp(b) <= 1e-15:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    ranked = sorted(
        candidate_indices, key=lambda j: -abs(correlation(X[:, j], y))
    )
    kept: List[int] = []
    for index in ranked:
        if all(
            abs(correlation(X[:, index], X[:, other])) <= threshold
            for other in kept
        ):
            kept.append(index)
    return sorted(kept)


def fit_linear_model(
    X: np.ndarray,
    y: np.ndarray,
    candidate_indices: Sequence[int],
    attribute_names: Sequence[str],
    ridge: float = 0.0,
    nonnegative: Sequence[int] = (),
) -> LinearModel:
    """Least-squares fit of ``y`` on the candidate attribute columns.

    Degenerate cases (no candidates, constant columns, more parameters
    than instances) fall back gracefully toward the mean model.

    Args:
        ridge: Standardized-ridge strength.  A small positive value
            (1e-4 is the tree default) leaves well-conditioned fits
            essentially untouched but stops the opposite-signed
            coefficient explosions that correlated counters otherwise
            produce in leaf models.  0 is exact least squares.
        nonnegative: Column indices whose coefficients are constrained
            to be >= 0 — the physical reading of stall-event metrics,
            which cannot make the machine faster.  Solved with a bounded
            least-squares solver (scipy) when any constraint applies.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = y.shape[0]
    if n == 0:
        raise DataError("cannot fit a linear model on zero instances")
    if ridge < 0:
        from repro.errors import ConfigError

        raise ConfigError(f"ridge must be non-negative, got {ridge}")

    # Drop candidates with (numerically) constant columns: they are
    # indistinguishable from the intercept.
    usable: List[int] = []
    for index in candidate_indices:
        column = X[:, index]
        if np.ptp(column) > 1e-12:
            usable.append(index)
    # Avoid saturated systems outright.
    max_terms = max(n - 1, 0)
    usable = usable[:max_terms]

    if not usable:
        return _mean_model(y, n)

    columns = X[:, usable]
    constrained = [position for position, idx in enumerate(usable) if idx in set(nonnegative)]
    if constrained:
        coefficients, intercept = _bounded_fit(columns, y, constrained, ridge)
        residual = y - (columns @ coefficients + intercept)
    elif ridge > 0:
        # Center, penalize standardized coefficients, back-transform.
        column_means = columns.mean(axis=0)
        y_mean = float(y.mean())
        centered = columns - column_means
        scales = np.maximum(centered.std(axis=0), 1e-12)
        gram = centered.T @ centered + ridge * n * np.diag(scales**2)
        coefficients = np.linalg.solve(gram, centered.T @ (y - y_mean))
        intercept = y_mean - float(coefficients @ column_means)
        residual = y - (columns @ coefficients + intercept)
    else:
        design = np.column_stack([columns, np.ones(n)])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        coefficients = solution[:-1]
        intercept = float(solution[-1])
        residual = y - design @ solution
    training_error = float(np.mean(np.abs(residual)))
    return LinearModel(
        intercept=intercept,
        indices=tuple(int(i) for i in usable),
        names=tuple(attribute_names[i] for i in usable),
        coefficients=tuple(float(c) for c in coefficients),
        n_training=n,
        training_error=training_error,
    )


def _bounded_fit(
    columns: np.ndarray,
    y: np.ndarray,
    constrained_positions: Sequence[int],
    ridge: float,
):
    """Bounded least squares: selected coefficients >= 0, intercept free.

    The ridge (if any) is folded in as augmented rows, the standard
    trick for solvers without a native penalty term.
    """
    from scipy.optimize import lsq_linear

    n, p = columns.shape
    design = np.column_stack([columns, np.ones(n)])
    target = y.astype(np.float64)
    if ridge > 0:
        scales = np.maximum(columns.std(axis=0), 1e-12)
        penalty = np.zeros((p, p + 1))
        penalty[:, :p] = np.sqrt(ridge * n) * np.diag(scales)
        design = np.vstack([design, penalty])
        target = np.concatenate([target, np.zeros(p)])
    lower = np.full(p + 1, -np.inf)
    for position in constrained_positions:
        lower[position] = 0.0
    result = lsq_linear(design, target, bounds=(lower, np.full(p + 1, np.inf)))
    solution = result.x
    return solution[:-1], float(solution[-1])


def _mean_model(y: np.ndarray, n: int) -> LinearModel:
    mean = float(np.mean(y))
    return LinearModel(
        intercept=mean,
        indices=(),
        names=(),
        coefficients=(),
        n_training=n,
        training_error=float(np.mean(np.abs(y - mean))),
    )


def resolve_opposed_pairs(
    model: LinearModel,
    X: np.ndarray,
    y: np.ndarray,
    attribute_names: Sequence[str],
    ridge: float = 0.0,
    corr_threshold: float = 0.75,
    nonnegative: Sequence[int] = (),
) -> LinearModel:
    """Dissolve opposite-signed terms on strongly correlated attributes.

    When two retained attributes correlate above ``corr_threshold`` and
    their fitted coefficients have opposite signs, the pair is fitting
    the (noisy) *difference* of two near-duplicate counters — the
    classic collinearity explosion (e.g. ``-304*L2M + 298*DtlbLdM``)
    that makes a leaf equation unreadable and its contribution
    decomposition meaningless.  The member less correlated with the
    target is dropped and the model refitted, repeating until no such
    pair remains.  Well-behaved models pass through unchanged.
    """
    current = model
    while True:
        offender = _find_opposed_pair(current, X, y, corr_threshold)
        if offender is None:
            return current
        remaining = [i for i in current.indices if i != offender]
        current = fit_linear_model(
            X, y, remaining, attribute_names, ridge, nonnegative
        )


def _find_opposed_pair(
    model: LinearModel, X: np.ndarray, y: np.ndarray, corr_threshold: float
):
    """The index to drop from the worst opposed pair, or None."""

    def correlation(a: np.ndarray, b: np.ndarray) -> float:
        if np.ptp(a) <= 1e-15 or np.ptp(b) <= 1e-15:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    for position_a in range(len(model.indices)):
        for position_b in range(position_a + 1, len(model.indices)):
            coef_a = model.coefficients[position_a]
            coef_b = model.coefficients[position_b]
            if coef_a * coef_b >= 0:
                continue
            index_a = model.indices[position_a]
            index_b = model.indices[position_b]
            if abs(correlation(X[:, index_a], X[:, index_b])) <= corr_threshold:
                continue
            keep_a = abs(correlation(X[:, index_a], y)) >= abs(
                correlation(X[:, index_b], y)
            )
            return index_b if keep_a else index_a
    return None


def simplify_model(
    model: LinearModel,
    X: np.ndarray,
    y: np.ndarray,
    attribute_names: Sequence[str],
    ridge: float = 0.0,
    nonnegative: Sequence[int] = (),
) -> LinearModel:
    """Greedily drop terms while the pessimistic error does not increase.

    At each step, every remaining term is tentatively removed (with a
    refit); the best resulting model replaces the current one if its
    adjusted error is no worse.  The constant (mean) model is always a
    candidate endpoint.
    """
    current = model
    current_error = current.adjusted_error()
    while current.coefficients:
        best_candidate: Optional[LinearModel] = None
        best_error = current_error
        for drop_position in range(len(current.indices)):
            remaining = [
                idx
                for position, idx in enumerate(current.indices)
                if position != drop_position
            ]
            candidate = fit_linear_model(
                X, y, remaining, attribute_names, ridge, nonnegative
            )
            candidate_error = candidate.adjusted_error()
            if candidate_error <= best_error + 1e-12:
                best_candidate = candidate
                best_error = candidate_error
        if best_candidate is None:
            break
        current = best_candidate
        current_error = best_error
    return current

"""Text rendering of model trees, in the WEKA/Figure 2 style.

Example output::

    L2M <= 0.00208 :
    |   Dtlb <= 0.00051 : LM1 (1234/17.2%)
    |   Dtlb >  0.00051 : LM2 (310/4.3%)
    L2M >  0.00208 : LM3 (812/11.3%)

    LM1: CPI = 0.52 + 6.69 * L1IM + 1.08 * InstLd
    ...
"""

from __future__ import annotations

from typing import List

from repro._util import format_float
from repro.core.tree.node import LeafNode, Node, SplitNode


def render_tree(root: Node, digits: int = 5) -> str:
    """Render the decision structure with leaf populations and shares."""
    total = root.n_instances
    if root.is_leaf:
        return _leaf_label(root, total)  # type: ignore[arg-type]
    lines: List[str] = []
    _render_split(root, 0, total, digits, lines)  # type: ignore[arg-type]
    return "\n".join(lines)


def _render_split(
    node: SplitNode, depth: int, total: int, digits: int, lines: List[str]
) -> None:
    prefix = "|   " * depth
    threshold = format_float(node.threshold, digits)
    for branch, child in (("<=", node.left), (">", node.right)):
        operator = f"{branch:<2}"
        head = f"{prefix}{node.attribute_name} {operator} {threshold} :"
        if child.is_leaf:
            lines.append(f"{head} {_leaf_label(child, total)}")  # type: ignore[arg-type]
        else:
            lines.append(head)
            _render_split(child, depth + 1, total, digits, lines)  # type: ignore[arg-type]


def _leaf_label(leaf: LeafNode, total: int) -> str:
    share = 100.0 * leaf.n_instances / total if total else 0.0
    return f"LM{leaf.leaf_id} ({leaf.n_instances}/{share:.1f}%)"


def render_models(root: Node, target_name: str, digits: int = 5) -> str:
    """Render every leaf's linear model as an equation block."""
    lines = []
    for leaf in root.leaves():
        if leaf.model is None:
            equation = f"{target_name} = <missing model>"
        else:
            equation = leaf.model.describe(target_name, digits)
        lines.append(f"LM{leaf.leaf_id}: {equation}")
    return "\n".join(lines)

"""M5' model trees, implemented from scratch.

The pipeline follows Quinlan's M5 as re-implemented by Wang & Witten
(the WEKA "M5'" the paper uses):

1. **Grow** (:mod:`repro.core.tree.builder`): recursively split on the
   attribute/threshold pair maximizing standard-deviation reduction,
   stopping at a minimum population or when node spread is a small
   fraction of the global spread.
2. **Model** (:mod:`repro.core.tree.linear`): fit a linear model at every
   node, then greedily drop terms under the (n+v)/(n-v) pessimistic
   error correction so leaf equations stay small and interpretable.
3. **Prune** (:mod:`repro.core.tree.pruning`): bottom-up, replace a
   subtree by its node model whenever the model's estimated error is no
   worse than the subtree's.
4. **Smooth** (:mod:`repro.core.tree.smoothing`, optional): blend leaf
   predictions with ancestor models along the path to the root.
"""

from repro.core.tree.linear import (
    LinearModel,
    fit_linear_model,
    select_uncorrelated,
    simplify_model,
)
from repro.core.tree.node import (
    LeafNode,
    Node,
    SplitNode,
    is_empty_bounds,
    iter_nodes_with_bounds,
)
from repro.core.tree.splitting import Split, find_best_split
from repro.core.tree.builder import TreeBuilder
from repro.core.tree.pruning import prune_tree
from repro.core.tree.smoothing import smoothed_predict
from repro.core.tree.m5 import M5Prime
from repro.core.tree.render import render_models, render_tree
from repro.core.tree.serialize import (
    load_model,
    loads_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.core.tree.dot import render_dot

__all__ = [
    "LeafNode",
    "LinearModel",
    "M5Prime",
    "Node",
    "Split",
    "SplitNode",
    "TreeBuilder",
    "find_best_split",
    "is_empty_bounds",
    "iter_nodes_with_bounds",
    "load_model",
    "loads_model",
    "model_from_dict",
    "model_to_dict",
    "fit_linear_model",
    "prune_tree",
    "render_dot",
    "render_models",
    "render_tree",
    "save_model",
    "select_uncorrelated",
    "simplify_model",
    "smoothed_predict",
]

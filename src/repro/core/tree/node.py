"""Tree node structures shared by growing, pruning and prediction."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.tree.linear import LinearModel
from repro.errors import ReproError


class Node:
    """Common state of every tree node.

    Attributes:
        n_instances: Training instances that reached this node.
        sd: Population standard deviation of their targets.
        mean: Mean of their targets.
        model: The (simplified) linear model fitted at this node.
        estimated_error: Pessimistic error used by pruning; set during the
            pruning pass.
        leaf_id: 1-based identifier assigned to leaves after pruning
            (``LM1`` .. ``LMk`` in the paper's notation); 0 elsewhere.
    """

    __slots__ = ("n_instances", "sd", "mean", "model", "estimated_error", "leaf_id")

    def __init__(self, n_instances: int, sd: float, mean: float) -> None:
        self.n_instances = int(n_instances)
        self.sd = float(sd)
        self.mean = float(mean)
        self.model: Optional[LinearModel] = None
        self.estimated_error: float = float("inf")
        self.leaf_id: int = 0

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    def iter_nodes(self) -> Iterator["Node"]:
        """Depth-first, pre-order iteration over the subtree."""
        yield self

    def leaves(self) -> List["LeafNode"]:
        return [node for node in self.iter_nodes() if node.is_leaf]  # type: ignore[list-item]

    def splits(self) -> List["SplitNode"]:
        """All interior (split) nodes of the subtree, pre-order."""
        return [node for node in self.iter_nodes() if not node.is_leaf]  # type: ignore[list-item]

    def depth(self) -> int:
        """Longest root-to-leaf edge count in this subtree."""
        return 0

    def n_leaves(self) -> int:
        return sum(1 for _ in self.leaves())


class LeafNode(Node):
    """A terminal node carrying a linear model."""

    __slots__ = ()

    @property
    def is_leaf(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"LeafNode(LM{self.leaf_id}, n={self.n_instances})"


class SplitNode(Node):
    """An interior node testing ``attribute <= threshold``."""

    __slots__ = ("attribute_index", "attribute_name", "threshold", "left", "right")

    def __init__(
        self,
        n_instances: int,
        sd: float,
        mean: float,
        attribute_index: int,
        attribute_name: str,
        threshold: float,
        left: Node,
        right: Node,
    ) -> None:
        super().__init__(n_instances, sd, mean)
        self.attribute_index = int(attribute_index)
        self.attribute_name = str(attribute_name)
        self.threshold = float(threshold)
        self.left = left
        self.right = right

    @property
    def is_leaf(self) -> bool:
        return False

    def child_for(self, x: np.ndarray) -> Node:
        """The branch instance ``x`` follows (left iff value <= threshold)."""
        return self.left if x[self.attribute_index] <= self.threshold else self.right

    def iter_nodes(self) -> Iterator[Node]:
        yield self
        yield from self.left.iter_nodes()
        yield from self.right.iter_nodes()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def __repr__(self) -> str:
        return (
            f"SplitNode({self.attribute_name} <= {self.threshold:.6g}, "
            f"n={self.n_instances})"
        )


def route(root: Node, x: np.ndarray) -> LeafNode:
    """Walk ``x`` from ``root`` to its leaf."""
    node = root
    while not node.is_leaf:
        node = node.child_for(x)  # type: ignore[attr-defined]
    if not isinstance(node, LeafNode):
        raise ReproError("routing ended on a non-leaf node")
    return node


def path_to_leaf(root: Node, x: np.ndarray) -> List[Node]:
    """All nodes visited routing ``x``, root first, leaf last."""
    node = root
    path = [node]
    while not node.is_leaf:
        node = node.child_for(x)  # type: ignore[attr-defined]
        path.append(node)
    return path


#: Feasible interval per split attribute: ``attribute_index -> (low, high)``.
#: An instance reaches the node iff ``low < x[attribute_index] <= high``
#: for every constrained attribute (splits test ``x <= threshold``).
Bounds = Dict[int, Tuple[float, float]]


def iter_nodes_with_bounds(
    root: Node, bounds: Optional[Bounds] = None
) -> Iterator[Tuple[Node, Bounds]]:
    """Pre-order traversal yielding each node with its ancestor constraints.

    The bounds describe the region of attribute space that can reach the
    node given the split tests *above* it (the node's own split is not
    included).  A node whose interval is empty for some attribute
    (``high <= low``) is unreachable: no instance can satisfy the
    contradictory thresholds along its root path.  This is the path
    metadata the lint rules (:mod:`repro.lint`) walk.
    """
    if bounds is None:
        bounds = {}
    yield root, bounds
    if isinstance(root, SplitNode):
        index = root.attribute_index
        low, high = bounds.get(index, (float("-inf"), float("inf")))
        left_bounds = dict(bounds)
        left_bounds[index] = (low, min(high, root.threshold))
        right_bounds = dict(bounds)
        right_bounds[index] = (max(low, root.threshold), high)
        yield from iter_nodes_with_bounds(root.left, left_bounds)
        yield from iter_nodes_with_bounds(root.right, right_bounds)


def is_empty_bounds(bounds: Bounds) -> bool:
    """True when some attribute interval admits no value (``high <= low``)."""
    return any(high <= low for low, high in bounds.values())


def assign_leaf_ids(root: Node) -> int:
    """Number leaves left-to-right starting at 1; returns the leaf count.

    Matches the paper's ``LM1`` .. ``LMk`` naming, where LM1 is the
    leftmost (all-splits-low) class.
    """
    counter = 0
    for node in root.iter_nodes():
        if node.is_leaf:
            counter += 1
            node.leaf_id = counter
        else:
            node.leaf_id = 0
    return counter

"""The M5Prime estimator: the package's headline model.

Usage::

    model = M5Prime(min_instances=430)
    model.fit(dataset)                 # a repro Dataset, or (X, y, names)
    predictions = model.predict(dataset.X)
    print(model.to_text())             # Figure 2-style tree + LM equations
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._util import as_float_matrix
from repro.core.tree.builder import TreeBuilder
from repro.core.tree.linear import LinearModel
from repro.core.tree.node import (
    Bounds,
    LeafNode,
    Node,
    SplitNode,
    iter_nodes_with_bounds,
    path_to_leaf,
    route,
)
from repro.core.tree.pruning import prune_tree
from repro.core.tree.render import render_models, render_tree
from repro.core.tree.smoothing import DEFAULT_SMOOTHING_K
from repro.datasets.dataset import Dataset
from repro.datasets.unpack import unpack_training_data
from repro.errors import DataError, NotFittedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve -> core)
    from repro.serve.compiled import CompiledTree


class M5Prime:
    """M5' model tree regressor.

    Args:
        min_instances: Minimum training instances per leaf; the node is
            not split below twice this population.  The paper determined
            430 for its full dataset; scale it with yours.
        sd_fraction: Stop splitting once a node's target spread falls
            below this fraction of the global spread (M5 default 0.05).
        prune: Apply bottom-up post-pruning (paper Section IV-B).
        smoothing: Blend predictions with ancestor models (Quinlan's
            smoothing).  Off by default because the paper's analysis
            reads raw leaf equations.
        smoothing_k: Smoothing constant when ``smoothing`` is on.
        model_attributes: Which attributes node models may use — see
            :class:`repro.core.tree.builder.TreeBuilder`.
        simplify: Greedy term dropping in node models (M5's simplification).
        collinearity_threshold: Drop near-duplicate candidate attributes
            (|correlation| above this) before fitting node models, keeping
            the one most correlated with the target.  Counter sets carry
            metric families that are near-identical (Table I's four DTLB
            metrics); without the filter their coefficients explode in
            opposite directions.  Set to 1.0 to disable (classic M5).
        ridge: Standardized-ridge strength for node models; keeps
            coefficients finite on correlated counters below the
            collinearity threshold.  0 restores exact least squares.
        nonnegative_attributes: Attribute names whose node-model
            coefficients are constrained >= 0 (bounded least squares).
            The physical reading for stall-event metrics: a miss cannot
            make the machine faster.  ``repro.counters.STALL_METRICS``
            lists the Table I events this applies to.
    """

    def __init__(
        self,
        min_instances: int = 4,
        sd_fraction: float = 0.05,
        prune: bool = True,
        smoothing: bool = False,
        smoothing_k: float = DEFAULT_SMOOTHING_K,
        model_attributes: str = "path+subtree",
        simplify: bool = True,
        collinearity_threshold: float = 0.95,
        ridge: float = 1e-4,
        nonnegative_attributes=None,
    ) -> None:
        self.min_instances = min_instances
        self.sd_fraction = sd_fraction
        self.prune = prune
        self.smoothing = smoothing
        self.smoothing_k = smoothing_k
        self.model_attributes = model_attributes
        self.simplify = simplify
        self.collinearity_threshold = collinearity_threshold
        self.ridge = ridge
        self.nonnegative_attributes = nonnegative_attributes
        self.root_: Optional[Node] = None
        self.attributes_: Tuple[str, ...] = ()
        self.target_name_: str = "Y"
        #: Per-attribute training (min, max), recorded at fit time and
        #: persisted with the model so validators can check thresholds and
        #: incoming data against the regime the tree was trained on.
        #: ``None`` for models deserialized from pre-range documents.
        self.feature_ranges_: Optional[Tuple[Tuple[float, float], ...]] = None
        # (root, CompiledTree) pair; rebuilt whenever root_ is replaced.
        self._compiled_cache: Optional[Tuple[Node, "CompiledTree"]] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        data: Union[Dataset, np.ndarray, Sequence],
        y: Optional[Sequence] = None,
        attribute_names: Optional[Sequence[str]] = None,
    ) -> "M5Prime":
        """Fit on a :class:`Dataset`, or on ``(X, y, attribute_names)``."""
        X, targets, names, target_name = unpack_training_data(
            data, y, attribute_names
        )
        builder = TreeBuilder(
            min_instances=self.min_instances,
            sd_fraction=self.sd_fraction,
            model_attributes=self.model_attributes,
            simplify=self.simplify,
            collinearity_threshold=self.collinearity_threshold,
            ridge=self.ridge,
            nonnegative_attributes=self.nonnegative_attributes,
        )
        root = builder.build(X, targets, names)
        if self.prune:
            root = prune_tree(root)
        self.root_ = root
        self.attributes_ = names
        self.target_name_ = target_name
        self.feature_ranges_ = tuple(
            (float(np.min(column)), float(np.max(column))) for column in X.T
        )
        return self

    def _require_fitted(self) -> Node:
        if self.root_ is None:
            raise NotFittedError("M5Prime must be fitted before use")
        return self.root_

    def _check_width(self, X: np.ndarray) -> None:
        if X.shape[1] != len(self.attributes_):
            raise DataError(
                f"X has {X.shape[1]} columns but the model was trained "
                f"on {len(self.attributes_)}"
            )

    # ------------------------------------------------------------------
    @property
    def compiled_(self) -> "CompiledTree":
        """The flat-array form of the fitted tree (compiled lazily).

        Compilation is cached per ``root_`` object: refitting, loading,
        or assigning a new tree invalidates it automatically.  Callers
        that mutate nodes *in place* must drop ``_compiled_cache``
        themselves (normal use never does this).
        """
        root = self._require_fitted()
        cached = self._compiled_cache
        if cached is not None and cached[0] is root:
            return cached[1]
        from repro.serve.compiled import compile_tree

        compiled = compile_tree(root, len(self.attributes_))
        self._compiled_cache = (root, compiled)
        return compiled

    def predict(self, X: Union[np.ndarray, Sequence]) -> np.ndarray:
        """Predict targets for an attribute matrix.

        Evaluation runs through the compiled flat-array representation
        (:mod:`repro.serve.compiled`), bit-identical to walking the
        linked tree row by row — including the smoothing path.
        """
        self._require_fitted()
        X = as_float_matrix(X)
        self._check_width(X)
        smoothing_k = self.smoothing_k if self.smoothing else None
        return self.compiled_.predict(X, smoothing_k=smoothing_k)

    def predict_one(self, x: Sequence) -> float:
        """Predict a single instance (1-D attribute vector)."""
        return float(self.predict(np.atleast_2d(np.asarray(x, dtype=float)))[0])

    # ------------------------------------------------------------------
    def leaf_for(self, x: Sequence) -> LeafNode:
        """The leaf (class) an instance falls into."""
        root = self._require_fitted()
        arr = np.asarray(x, dtype=np.float64).ravel()
        if arr.shape[0] != len(self.attributes_):
            raise DataError("instance width does not match training attributes")
        return route(root, arr)

    def decision_path(self, x: Sequence) -> List[Node]:
        """Nodes visited routing ``x`` (root first, leaf last)."""
        root = self._require_fitted()
        arr = np.asarray(x, dtype=np.float64).ravel()
        if arr.shape[0] != len(self.attributes_):
            raise DataError("instance width does not match training attributes")
        return path_to_leaf(root, arr)

    def leaf_ids(self, X: Union[np.ndarray, Sequence]) -> np.ndarray:
        """Leaf (class) id per row of ``X`` (vectorized routing)."""
        self._require_fitted()
        X = as_float_matrix(X)
        self._check_width(X)
        return self.compiled_.leaf_ids(X)

    def leaf_models(self) -> Dict[int, LinearModel]:
        """Leaf id -> linear model, the paper's LM1..LMk."""
        root = self._require_fitted()
        return {leaf.leaf_id: leaf.model for leaf in root.leaves()}  # type: ignore[misc]

    def splits(self) -> List[SplitNode]:
        """All interior (split) nodes, pre-order — the tree's test set."""
        return self._require_fitted().splits()

    def iter_bounds(self):
        """Yield ``(node, bounds)`` pairs over the whole tree.

        ``bounds`` maps attribute index to the feasible ``(low, high)``
        interval implied by the split tests above the node — the metadata
        validators use to detect unreachable branches.  See
        :func:`repro.core.tree.node.iter_nodes_with_bounds`.
        """
        root = self._require_fitted()
        bounds: Bounds = {}
        yield from iter_nodes_with_bounds(root, bounds)

    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        return self._require_fitted().n_leaves()

    @property
    def depth(self) -> int:
        return self._require_fitted().depth()

    def to_text(self, max_digits: int = 5) -> str:
        """Figure 2-style rendering: tree structure plus LM equations."""
        root = self._require_fitted()
        return (
            render_tree(root, digits=max_digits)
            + "\n\n"
            + render_models(root, self.target_name_, digits=max_digits)
        )

    def __repr__(self) -> str:
        state = "fitted" if self.root_ is not None else "unfitted"
        return (
            f"M5Prime(min_instances={self.min_instances}, prune={self.prune}, "
            f"smoothing={self.smoothing}, {state})"
        )

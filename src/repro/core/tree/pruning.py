"""Bottom-up post-pruning.

The tree is traversed depth-first; at every interior node two pessimistic
error estimates are compared — the node's own linear model versus the
instance-weighted error of its (already pruned) children — and the
subtree is collapsed to a leaf whenever the single model is no worse.
This is the paper's Section IV-B procedure and is what keeps the final
tree compact enough to read.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.tree.node import LeafNode, Node, SplitNode, assign_leaf_ids
from repro.errors import ReproError


def prune_tree(root: Node) -> Node:
    """Prune ``root`` and return the (possibly replaced) new root."""
    pruned, _ = _prune(root)
    assign_leaf_ids(pruned)
    return pruned


def _prune(node: Node) -> Tuple[Node, float]:
    if node.model is None:
        raise ReproError("pruning requires a model at every node")
    if node.is_leaf:
        node.estimated_error = node.model.adjusted_error()
        return node, node.estimated_error

    assert isinstance(node, SplitNode)
    node.left, left_error = _prune(node.left)
    node.right, right_error = _prune(node.right)

    n_left = node.left.n_instances
    n_right = node.right.n_instances
    subtree_error = (n_left * left_error + n_right * right_error) / (
        n_left + n_right
    )
    model_error = node.model.adjusted_error()

    if model_error <= subtree_error:
        leaf = LeafNode(node.n_instances, node.sd, node.mean)
        leaf.model = node.model
        leaf.estimated_error = model_error
        return leaf, model_error

    node.estimated_error = subtree_error
    return node, subtree_error

"""Best-split search by standard-deviation reduction (SDR).

M5 treats the standard deviation of the target at a node as its error
measure and picks the attribute/threshold pair that maximizes

    SDR = sd(T) - sum_i |T_i|/|T| * sd(T_i)

over the two children.  Attributes are scanned in vectorized *chunks*:
one ``argsort``/``cumsum``/SDR evaluation services a whole block of
columns at once, so wide datasets pay one NumPy dispatch per chunk
instead of one Python iteration per attribute.  A node costs
O(p * n log n) arithmetic either way; the chunked path just removes the
per-attribute interpreter overhead.  Results are bit-identical to the
historical per-attribute loop for every chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError

#: Columns scanned per vectorized block.  Bounds the scan's working
#: memory at ``O(n * chunk)`` while amortizing NumPy dispatch overhead.
DEFAULT_CHUNK_SIZE = 32


@dataclass(frozen=True)
class Split:
    """A candidate binary split of a node.

    Attributes:
        attribute_index: Column tested.
        threshold: Test value; instances go left iff ``value <= threshold``.
        sdr: Standard-deviation reduction achieved.
        n_left / n_right: Child populations.
    """

    attribute_index: int
    threshold: float
    sdr: float
    n_left: int
    n_right: int


def _scan_chunk(
    Xc: np.ndarray,
    y: np.ndarray,
    boundaries: np.ndarray,
    sd_total: float,
    column_offset: int,
) -> List[Optional[Split]]:
    """Best split per column of ``Xc`` (``None`` where no valid one exists).

    All columns share one sort, one pair of prefix-sum tables and one
    SDR surface; per-column work is only the argmax and the threshold
    arithmetic.
    """
    n = y.shape[0]
    order = np.argsort(Xc, axis=0, kind="stable")
    xs = np.take_along_axis(Xc, order, axis=0)
    ys = y[order]

    # (boundaries, columns): True where the boundary separates distinct
    # attribute values, i.e. where a threshold can actually be placed.
    distinct = xs[boundaries] < xs[boundaries + 1]

    prefix_sum = np.cumsum(ys, axis=0)
    prefix_sumsq = np.cumsum(ys * ys, axis=0)
    total_sum = prefix_sum[-1]
    total_sumsq = prefix_sumsq[-1]

    n_left = (boundaries + 1).astype(np.float64)[:, None]
    n_right = n - n_left
    sum_left = prefix_sum[boundaries]
    sum_right = total_sum - sum_left
    sumsq_left = prefix_sumsq[boundaries]
    sumsq_right = total_sumsq - sumsq_left

    var_left = np.maximum(sumsq_left / n_left - (sum_left / n_left) ** 2, 0.0)
    var_right = np.maximum(
        sumsq_right / n_right - (sum_right / n_right) ** 2, 0.0
    )
    weighted_sd = (
        n_left * np.sqrt(var_left) + n_right * np.sqrt(var_right)
    ) / n
    sdr = sd_total - weighted_sd
    masked = np.where(distinct, sdr, -np.inf)

    candidates: List[Optional[Split]] = []
    for j in range(Xc.shape[1]):
        if not np.any(distinct[:, j]):
            candidates.append(None)
            continue
        position = int(np.argmax(masked[:, j]))
        candidate_sdr = float(sdr[position, j])
        if candidate_sdr <= 0.0:
            candidates.append(None)
            continue
        index = int(boundaries[position])
        threshold = float((xs[index, j] + xs[index + 1, j]) / 2.0)
        if not threshold < xs[index + 1, j]:
            # Adjacent floating-point values: the midpoint rounded up to
            # the right value, which would send every instance left and
            # recurse forever.  Cut exactly at the left value instead.
            threshold = float(xs[index, j])
        candidates.append(
            Split(
                attribute_index=column_offset + j,
                threshold=threshold,
                sdr=candidate_sdr,
                n_left=index + 1,
                n_right=n - index - 1,
            )
        )
    return candidates


def find_best_split(
    X: np.ndarray,
    y: np.ndarray,
    min_leaf: int = 2,
    chunk_size: Optional[int] = None,
) -> Optional[Split]:
    """The SDR-maximizing split, or ``None`` if no valid split exists.

    A split is valid when both children hold at least ``min_leaf``
    instances and the threshold separates distinct attribute values.
    Ties in SDR resolve to the lowest attribute index, then the lowest
    threshold, keeping tree construction deterministic.

    Args:
        chunk_size: Columns evaluated per vectorized block (default
            :data:`DEFAULT_CHUNK_SIZE`).  Any value returns the same
            split; smaller chunks trade speed for peak memory.
    """
    if min_leaf < 1:
        raise ConfigError(f"min_leaf must be at least 1, got {min_leaf}")
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be at least 1, got {chunk_size}")
    n = y.shape[0]
    if n < 2 * min_leaf:
        return None

    sd_total = float(np.std(y))
    if sd_total <= 0.0:
        return None

    boundaries = np.arange(min_leaf - 1, n - min_leaf)
    n_attributes = X.shape[1]

    best: Optional[Split] = None
    for start in range(0, n_attributes, chunk_size):
        stop = min(start + chunk_size, n_attributes)
        for candidate in _scan_chunk(
            X[:, start:stop], y, boundaries, sd_total, start
        ):
            if candidate is None:
                continue
            if best is None or candidate.sdr > best.sdr + 1e-15:
                best = candidate

    return best

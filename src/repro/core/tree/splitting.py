"""Best-split search by standard-deviation reduction (SDR).

M5 treats the standard deviation of the target at a node as its error
measure and picks the attribute/threshold pair that maximizes

    SDR = sd(T) - sum_i |T_i|/|T| * sd(T_i)

over the two children.  For each attribute the scan sorts once and
evaluates every boundary between distinct values with prefix sums, so a
node costs O(p * n log n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class Split:
    """A candidate binary split of a node.

    Attributes:
        attribute_index: Column tested.
        threshold: Test value; instances go left iff ``value <= threshold``.
        sdr: Standard-deviation reduction achieved.
        n_left / n_right: Child populations.
    """

    attribute_index: int
    threshold: float
    sdr: float
    n_left: int
    n_right: int


def find_best_split(
    X: np.ndarray, y: np.ndarray, min_leaf: int = 2
) -> Optional[Split]:
    """The SDR-maximizing split, or ``None`` if no valid split exists.

    A split is valid when both children hold at least ``min_leaf``
    instances and the threshold separates distinct attribute values.
    Ties in SDR resolve to the lowest attribute index, then the lowest
    threshold, keeping tree construction deterministic.
    """
    if min_leaf < 1:
        raise ConfigError(f"min_leaf must be at least 1, got {min_leaf}")
    n = y.shape[0]
    if n < 2 * min_leaf:
        return None

    sd_total = float(np.std(y))
    if sd_total <= 0.0:
        return None

    best: Optional[Split] = None
    boundaries = np.arange(min_leaf - 1, n - min_leaf)

    for attribute in range(X.shape[1]):
        order = np.argsort(X[:, attribute], kind="stable")
        xs = X[order, attribute]
        ys = y[order]

        distinct = xs[boundaries] < xs[boundaries + 1]
        if not np.any(distinct):
            continue
        cut = boundaries[distinct]

        prefix_sum = np.cumsum(ys)
        prefix_sumsq = np.cumsum(ys * ys)
        total_sum = prefix_sum[-1]
        total_sumsq = prefix_sumsq[-1]

        n_left = (cut + 1).astype(np.float64)
        n_right = n - n_left
        sum_left = prefix_sum[cut]
        sum_right = total_sum - sum_left
        sumsq_left = prefix_sumsq[cut]
        sumsq_right = total_sumsq - sumsq_left

        var_left = np.maximum(sumsq_left / n_left - (sum_left / n_left) ** 2, 0.0)
        var_right = np.maximum(
            sumsq_right / n_right - (sum_right / n_right) ** 2, 0.0
        )
        weighted_sd = (
            n_left * np.sqrt(var_left) + n_right * np.sqrt(var_right)
        ) / n
        sdr = sd_total - weighted_sd

        position = int(np.argmax(sdr))
        candidate_sdr = float(sdr[position])
        if candidate_sdr <= 0.0:
            continue
        index = int(cut[position])
        threshold = float((xs[index] + xs[index + 1]) / 2.0)
        if not threshold < xs[index + 1]:
            # Adjacent floating-point values: the midpoint rounded up to
            # the right value, which would send every instance left and
            # recurse forever.  Cut exactly at the left value instead.
            threshold = float(xs[index])
        candidate = Split(
            attribute_index=attribute,
            threshold=threshold,
            sdr=candidate_sdr,
            n_left=index + 1,
            n_right=n - index - 1,
        )
        if best is None or candidate.sdr > best.sdr + 1e-15:
            best = candidate

    return best

"""Tree growing: recursive SDR splitting plus per-node model fitting.

Stopping follows the paper's pre-pruning description: a node is not
split when its population falls below a threshold (the paper determined
430 instances for its dataset) or when its target spread is already a
small fraction of the global spread (the classic M5 5 % rule).

Every node also receives a linear model, because pruning and smoothing
both need one.  Which attributes a node's model may use is a policy:

* ``"subtree"`` — attributes tested below the node (Quinlan's M5);
* ``"path"`` — attributes tested on the way to the node;
* ``"path+subtree"`` — the union (default).  This matches the paper's
  reading of its own leaves: LM17's equation "contain[s] several
  predictors including L2 cache and DTLB misses", which are the split
  variables on LM17's path;
* ``"all"`` — every attribute (WEKA's unrestricted option).
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.core.tree.linear import (
    fit_linear_model,
    resolve_opposed_pairs,
    select_uncorrelated,
    simplify_model,
)
from repro.core.tree.node import LeafNode, Node, SplitNode, assign_leaf_ids
from repro.core.tree.splitting import find_best_split
from repro.errors import ConfigError, DataError

MODEL_ATTRIBUTE_POLICIES = ("subtree", "path", "path+subtree", "all")


class TreeBuilder:
    """Grows an (unpruned) model tree from training data."""

    def __init__(
        self,
        min_instances: int = 4,
        sd_fraction: float = 0.05,
        model_attributes: str = "path+subtree",
        simplify: bool = True,
        collinearity_threshold: float = 0.95,
        ridge: float = 1e-4,
        nonnegative_attributes=None,
    ) -> None:
        if min_instances < 1:
            raise ConfigError(f"min_instances must be at least 1, got {min_instances}")
        if not 0.0 <= sd_fraction < 1.0:
            raise ConfigError(f"sd_fraction must lie in [0, 1), got {sd_fraction}")
        if model_attributes not in MODEL_ATTRIBUTE_POLICIES:
            raise ConfigError(
                f"model_attributes must be one of {MODEL_ATTRIBUTE_POLICIES}, "
                f"got {model_attributes!r}"
            )
        if not 0.0 < collinearity_threshold <= 1.0:
            raise ConfigError(
                "collinearity_threshold must lie in (0, 1], got "
                f"{collinearity_threshold}"
            )
        if ridge < 0:
            raise ConfigError(f"ridge must be non-negative, got {ridge}")
        self.min_instances = int(min_instances)
        self.sd_fraction = float(sd_fraction)
        self.model_attributes = model_attributes
        self.simplify = bool(simplify)
        self.collinearity_threshold = float(collinearity_threshold)
        self.ridge = float(ridge)
        self.nonnegative_attributes = (
            tuple(nonnegative_attributes) if nonnegative_attributes else ()
        )

    # ------------------------------------------------------------------
    def build(
        self, X: np.ndarray, y: np.ndarray, attribute_names: Sequence[str]
    ) -> Node:
        """Grow the full tree and fit a model at every node."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0]:
            raise DataError("X and y disagree on instance count")
        if X.shape[0] == 0:
            raise DataError("cannot grow a tree on zero instances")
        if X.shape[1] != len(attribute_names):
            raise DataError("attribute_names must match X's column count")
        self._names = tuple(attribute_names)
        unknown = set(self.nonnegative_attributes) - set(self._names)
        if unknown:
            raise DataError(
                f"nonnegative_attributes name unknown attributes: {sorted(unknown)}"
            )
        self._nonnegative_indices = tuple(
            self._names.index(name) for name in self.nonnegative_attributes
        )
        self._global_sd = float(np.std(y))
        root, _ = self._grow(X, y, frozenset())
        assign_leaf_ids(root)
        return root

    # ------------------------------------------------------------------
    def _grow(
        self, X: np.ndarray, y: np.ndarray, path_attributes: FrozenSet[int]
    ) -> Tuple[Node, FrozenSet[int]]:
        """Returns the subtree plus the set of attributes it tests."""
        n = y.shape[0]
        sd = float(np.std(y))
        mean = float(np.mean(y))

        split = None
        if (
            n >= 2 * self.min_instances
            and sd > self.sd_fraction * self._global_sd
        ):
            split = find_best_split(X, y, min_leaf=self.min_instances)

        if split is None:
            leaf = LeafNode(n, sd, mean)
            leaf.model = self._fit_model(X, y, path_attributes, frozenset())
            return leaf, frozenset()

        go_left = X[:, split.attribute_index] <= split.threshold
        child_path = path_attributes | {split.attribute_index}
        left, left_attrs = self._grow(X[go_left], y[go_left], child_path)
        right, right_attrs = self._grow(X[~go_left], y[~go_left], child_path)
        subtree_attrs = left_attrs | right_attrs | {split.attribute_index}

        node = SplitNode(
            n_instances=n,
            sd=sd,
            mean=mean,
            attribute_index=split.attribute_index,
            attribute_name=self._names[split.attribute_index],
            threshold=split.threshold,
            left=left,
            right=right,
        )
        node.model = self._fit_model(X, y, path_attributes, subtree_attrs)
        return node, subtree_attrs

    # ------------------------------------------------------------------
    def _fit_model(
        self,
        X: np.ndarray,
        y: np.ndarray,
        path_attributes: FrozenSet[int],
        subtree_attributes: FrozenSet[int],
    ):
        if self.model_attributes == "all":
            candidates = frozenset(range(X.shape[1]))
        elif self.model_attributes == "subtree":
            candidates = subtree_attributes
        elif self.model_attributes == "path":
            candidates = path_attributes
        else:  # path+subtree
            candidates = path_attributes | subtree_attributes
        usable = candidates
        if self.collinearity_threshold < 1.0:
            usable = select_uncorrelated(
                X, y, sorted(candidates), self.collinearity_threshold
            )
        model = fit_linear_model(
            X, y, sorted(usable), self._names, self.ridge,
            self._nonnegative_indices,
        )
        if self.simplify:
            model = simplify_model(
                X=X,
                y=y,
                model=model,
                attribute_names=self._names,
                ridge=self.ridge,
                nonnegative=self._nonnegative_indices,
            )
        if self.collinearity_threshold < 1.0:
            model = resolve_opposed_pairs(
                model, X, y, self._names, self.ridge,
                nonnegative=self._nonnegative_indices,
            )
        return model

"""M5 prediction smoothing.

Along the path from leaf to root, the prediction is blended with each
ancestor's model:

    p' = (n * p + k * q) / (n + k)

where ``n`` is the population of the node below, ``q`` the ancestor
model's prediction and ``k`` a smoothing constant (15 in Quinlan's M5).
Smoothing trades a little interpretability (the effective leaf equation
becomes a blend) for accuracy on small leaves; the paper's analysis
reads raw leaf models, so the estimator keeps smoothing optional.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree.node import Node, path_to_leaf
from repro.errors import ConfigError, ReproError

#: Quinlan's default smoothing constant.
DEFAULT_SMOOTHING_K = 15.0


def smoothed_predict(root: Node, x: np.ndarray, k: float = DEFAULT_SMOOTHING_K) -> float:
    """Predict one instance with path smoothing."""
    if k < 0:
        raise ConfigError(f"smoothing constant k must be non-negative, got {k}")
    path = path_to_leaf(root, x)
    leaf = path[-1]
    if leaf.model is None:
        raise ReproError("smoothing requires a model at the leaf")
    prediction = leaf.model.predict_one(x)
    # Walk upward: blend with each ancestor in turn.
    for position in range(len(path) - 2, -1, -1):
        ancestor = path[position]
        below = path[position + 1]
        if ancestor.model is None:
            raise ReproError("smoothing requires a model at every ancestor")
        ancestor_prediction = ancestor.model.predict_one(x)
        prediction = (below.n_instances * prediction + k * ancestor_prediction) / (
            below.n_instances + k
        )
    return float(prediction)

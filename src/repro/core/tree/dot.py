"""GraphViz (DOT) export of a fitted model tree.

`render_dot` produces standard DOT source: interior nodes as decision
diamonds, leaves as boxes carrying the class id, population and
(optionally) the leaf equation.  Render it with any GraphViz toolchain::

    repro train --data sections.csv --save model.json
    python -c "from repro.core.tree import load_model, render_dot; \
               print(render_dot(load_model('model.json')))" | dot -Tsvg > tree.svg
"""

from __future__ import annotations

from typing import List

from repro._util import format_float
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import Node, SplitNode
from repro.errors import NotFittedError


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def render_dot(
    model: M5Prime,
    include_equations: bool = True,
    max_equation_terms: int = 4,
    digits: int = 4,
) -> str:
    """The fitted tree as GraphViz DOT source."""
    root = model.root_
    if root is None:
        raise NotFittedError("render_dot requires a fitted model")

    lines: List[str] = [
        "digraph m5prime {",
        '  node [fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    counter = [0]

    def emit(node: Node) -> str:
        node_id = f"n{counter[0]}"
        counter[0] += 1
        if node.is_leaf:
            label = f"LM{node.leaf_id}\\nn={node.n_instances}"
            if include_equations and node.model is not None:
                equation = _leaf_equation(node, model.target_name_,
                                          max_equation_terms, digits)
                label += f"\\n{_escape(equation)}"
            lines.append(
                f'  {node_id} [shape=box, style=rounded, label="{label}"];'
            )
        else:
            assert isinstance(node, SplitNode)
            threshold = format_float(node.threshold, digits)
            lines.append(
                f'  {node_id} [shape=diamond, '
                f'label="{_escape(node.attribute_name)}\\n<= {threshold}"];'
            )
            left_id = emit(node.left)
            right_id = emit(node.right)
            lines.append(f'  {node_id} -> {left_id} [label="yes"];')
            lines.append(f'  {node_id} -> {right_id} [label="no"];')
        return node_id

    emit(root)
    lines.append("}")
    return "\n".join(lines)


def _leaf_equation(
    node: Node, target_name: str, max_terms: int, digits: int
) -> str:
    linear = node.model
    assert linear is not None
    parts = [f"{target_name} = {format_float(linear.intercept, digits)}"]
    for name, coefficient in list(zip(linear.names, linear.coefficients))[:max_terms]:
        sign = "-" if coefficient < 0 else "+"
        parts.append(f"{sign} {format_float(abs(coefficient), digits)}*{name}")
    if len(linear.names) > max_terms:
        parts.append("+ ...")
    return " ".join(parts)

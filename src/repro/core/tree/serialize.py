"""Model persistence: fitted M5' trees to and from JSON.

A trained performance model is an artifact worth shipping (the paper's
MATLAB prototype embedded one); this module serializes the complete
tree — structure, thresholds, node statistics and linear models — to a
versioned JSON document, so a model trained once can classify sections
in another process without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.tree.linear import LinearModel
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import LeafNode, Node, SplitNode, assign_leaf_ids
from repro.errors import DataError, NotFittedError, ParseError

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def model_to_dict(model: M5Prime) -> Dict[str, Any]:
    """Serialize a fitted model to plain JSON-compatible structures."""
    if model.root_ is None:
        raise NotFittedError("cannot serialize an unfitted model")
    return {
        "format": "repro-m5prime",
        "version": FORMAT_VERSION,
        "attributes": list(model.attributes_),
        "target": model.target_name_,
        "params": {
            "min_instances": model.min_instances,
            "sd_fraction": model.sd_fraction,
            "prune": model.prune,
            "smoothing": model.smoothing,
            "smoothing_k": model.smoothing_k,
            "model_attributes": model.model_attributes,
            "simplify": model.simplify,
            "collinearity_threshold": model.collinearity_threshold,
            "ridge": model.ridge,
            "nonnegative_attributes": (
                list(model.nonnegative_attributes)
                if model.nonnegative_attributes
                else None
            ),
        },
        "feature_ranges": (
            [[low, high] for low, high in model.feature_ranges_]
            if model.feature_ranges_ is not None
            else None
        ),
        "tree": _node_to_dict(model.root_),
    }


def _node_to_dict(node: Node) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "n_instances": node.n_instances,
        "sd": node.sd,
        "mean": node.mean,
        "model": _model_payload(node),
    }
    if node.is_leaf:
        payload["kind"] = "leaf"
    else:
        assert isinstance(node, SplitNode)
        payload["kind"] = "split"
        payload["attribute_index"] = node.attribute_index
        payload["attribute_name"] = node.attribute_name
        payload["threshold"] = node.threshold
        payload["left"] = _node_to_dict(node.left)
        payload["right"] = _node_to_dict(node.right)
    return payload


def _model_payload(node: Node) -> Dict[str, Any]:
    linear = node.model
    if linear is None:
        raise NotFittedError("tree node lacks a linear model")
    return {
        "intercept": linear.intercept,
        "indices": list(linear.indices),
        "names": list(linear.names),
        "coefficients": list(linear.coefficients),
        "n_training": linear.n_training,
        "training_error": linear.training_error,
    }


def model_from_dict(payload: Dict[str, Any]) -> M5Prime:
    """Rebuild a fitted model from :func:`model_to_dict` output."""
    try:
        if payload.get("format") != "repro-m5prime":
            raise ParseError("not a repro-m5prime document")
        if payload.get("version") != FORMAT_VERSION:
            raise ParseError(
                f"unsupported format version {payload.get('version')!r}"
            )
        params = payload["params"]
        model = M5Prime(**params)
        model.attributes_ = tuple(payload["attributes"])
        model.target_name_ = str(payload["target"])
        ranges = payload.get("feature_ranges")
        if ranges is not None:
            if len(ranges) != len(model.attributes_):
                raise ParseError(
                    f"feature_ranges has {len(ranges)} entries for "
                    f"{len(model.attributes_)} attributes"
                )
            model.feature_ranges_ = tuple(
                (float(low), float(high)) for low, high in ranges
            )
        model.root_ = _node_from_dict(payload["tree"])
    except (KeyError, TypeError, ValueError, OverflowError, DataError) as exc:
        raise ParseError(f"malformed model document: {exc}") from None
    except RecursionError:
        raise ParseError(
            "malformed model document: tree nesting exceeds the "
            "recursion limit"
        ) from None
    assign_leaf_ids(model.root_)
    return model


def _node_from_dict(payload: Dict[str, Any]) -> Node:
    kind = payload["kind"]
    if kind == "leaf":
        node: Node = LeafNode(
            payload["n_instances"], payload["sd"], payload["mean"]
        )
    elif kind == "split":
        node = SplitNode(
            n_instances=payload["n_instances"],
            sd=payload["sd"],
            mean=payload["mean"],
            attribute_index=payload["attribute_index"],
            attribute_name=payload["attribute_name"],
            threshold=payload["threshold"],
            left=_node_from_dict(payload["left"]),
            right=_node_from_dict(payload["right"]),
        )
    else:
        raise ParseError(f"unknown node kind {kind!r}")
    linear = payload["model"]
    node.model = LinearModel(
        intercept=float(linear["intercept"]),
        indices=tuple(int(i) for i in linear["indices"]),
        names=tuple(str(n) for n in linear["names"]),
        coefficients=tuple(float(c) for c in linear["coefficients"]),
        n_training=int(linear["n_training"]),
        training_error=float(linear["training_error"]),
    )
    return node


def save_model(model: M5Prime, path: PathLike) -> None:
    """Write a fitted model to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(model_to_dict(model), handle, indent=1)


def load_model(path: PathLike) -> M5Prime:
    """Read a fitted model from a JSON file.

    Malformed files — invalid JSON, missing keys, an unknown format or
    version — raise :class:`repro.errors.ParseError` naming the
    offending path, never a raw ``KeyError``/``JSONDecodeError``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except UnicodeDecodeError as exc:
        raise ParseError(f"{path}: not valid UTF-8 text: {exc}") from None
    return loads_model(text, source=str(path))


def loads_model(text: str, source: Optional[str] = None) -> M5Prime:
    """Parse a model JSON string (:func:`load_model` without the file).

    ``source`` is prefixed to every error message when given.
    """
    prefix = f"{source}: " if source else ""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"{prefix}invalid JSON: {exc}") from None
    except RecursionError:
        raise ParseError(
            f"{prefix}invalid JSON: nesting exceeds the recursion limit"
        ) from None
    if not isinstance(payload, dict):
        raise ParseError(f"{prefix}expected a JSON object at top level")
    try:
        return model_from_dict(payload)
    except ParseError as exc:
        if prefix:
            raise ParseError(prefix + str(exc)) from None
        raise

"""Section classification utilities.

The paper attributes tree leaves back to benchmarks ("more than 95% of
[436.cactusADM's] sections experience high L2 cache misses combined with
a high rate of L1 instruction misses", "more than 70% of [429.mcf's]
sections are classified in LM17").  These helpers compute exactly those
tables from a fitted model and a labeled dataset.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.datasets.dataset import Dataset
from repro.errors import DataError


def leaf_distribution(model: M5Prime, dataset: Dataset) -> Dict[int, int]:
    """Instance count per leaf id over ``dataset``."""
    ids = model.leaf_ids(dataset.X)
    unique, counts = np.unique(ids, return_counts=True)
    return {int(leaf): int(count) for leaf, count in zip(unique, counts)}


def workload_leaf_table(
    model: M5Prime, dataset: Dataset
) -> Dict[str, Dict[int, float]]:
    """Per-workload distribution of sections over leaves (fractions)."""
    if "workload" not in dataset.meta:
        raise DataError("dataset lacks a 'workload' metadata column")
    ids = model.leaf_ids(dataset.X)
    labels = dataset.meta["workload"]
    table: Dict[str, Dict[int, float]] = {}
    for name in np.unique(labels):
        mask = labels == name
        subset_ids = ids[mask]
        total = int(subset_ids.size)
        unique, counts = np.unique(subset_ids, return_counts=True)
        table[str(name)] = {
            int(leaf): float(count) / total for leaf, count in zip(unique, counts)
        }
    return table


def dominant_leaf(
    model: M5Prime, dataset: Dataset, workload: str
) -> Tuple[int, float]:
    """The leaf holding the largest share of a workload's sections.

    Returns ``(leaf_id, fraction)``; e.g. the paper's cactusADM statement
    corresponds to a dominant leaf holding > 0.95.
    """
    table = workload_leaf_table(model, dataset)
    if workload not in table:
        known = ", ".join(sorted(table))
        raise DataError(f"unknown workload {workload!r}; known: {known}")
    shares = table[workload]
    leaf = max(shares, key=lambda k: shares[k])
    return leaf, shares[leaf]


def leaf_mean_cpi(model: M5Prime, dataset: Dataset) -> Dict[int, float]:
    """Mean measured target per leaf over ``dataset``."""
    ids = model.leaf_ids(dataset.X)
    means: Dict[int, float] = {}
    for leaf in np.unique(ids):
        means[int(leaf)] = float(np.mean(dataset.y[ids == leaf]))
    return means

"""The PerformanceAnalyzer: full what/how-much reports.

Ties classification, leaf-model contributions and split conditions into
one object — the reproduction of the paper's Section IV-C workflow
("data is collected for the different sections of the workload ...
each section then traverses the tree ... the fractional contribution of
a performance event ... [is] readily available at the leaf nodes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro._util import format_float
from repro.core.analysis.contribution import EventContribution, leaf_contributions
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import SplitNode
from repro.datasets.dataset import Dataset
from repro.errors import DataError


@dataclass(frozen=True)
class SplitCondition:
    """One decision on the path to a section's leaf.

    ``high_side`` is True when the section sits above the split point —
    the situation the paper flags as "a source of potential performance
    improvement" for that variable.
    """

    attribute: str
    threshold: float
    high_side: bool

    def describe(self) -> str:
        operator = ">" if self.high_side else "<="
        return f"{self.attribute} {operator} {format_float(self.threshold, 5)}"


@dataclass
class SectionAnalysis:
    """Everything the model says about one section.

    ``extrapolated`` marks sections whose leaf model predicted a
    non-positive target — the section sits outside its class's training
    region, so contribution ratios are undefined and suppressed.
    """

    leaf_id: int
    predicted: float
    conditions: List[SplitCondition]
    contributions: List[EventContribution]
    target_name: str = "CPI"
    extrapolated: bool = False

    @property
    def implicit_issues(self) -> List[str]:
        """Split variables the section is on the high side of ("what")."""
        return [c.attribute for c in self.conditions if c.high_side]

    @property
    def explicit_issues(self) -> List[str]:
        """Leaf-model events with positive predicted cost ("what")."""
        return [c.event for c in self.contributions if c.cycles > 0]

    def top_issues(self, limit: int = 5) -> List[EventContribution]:
        """Highest-cost leaf-model events ("how much"), largest first."""
        positive = [c for c in self.contributions if c.cycles > 0]
        return positive[:limit]

    def render(self) -> str:
        lines = [
            f"class: LM{self.leaf_id}",
            f"predicted {self.target_name}: {self.predicted:.4f}",
        ]
        if self.conditions:
            lines.append("decision path:")
            for condition in self.conditions:
                marker = "  [high]" if condition.high_side else ""
                lines.append(f"  {condition.describe()}{marker}")
        if self.contributions:
            lines.append("event contributions (predicted share of CPI):")
            for contribution in self.contributions:
                lines.append(f"  {contribution.describe()}")
        elif self.extrapolated:
            lines.append(
                "section lies outside its class's training region "
                "(non-positive prediction); contributions suppressed"
            )
        else:
            lines.append(
                "leaf model is constant: performance here is explained "
                "entirely by the decision-path variables above"
            )
        return "\n".join(lines)


class PerformanceAnalyzer:
    """Analyzes sections with a fitted :class:`M5Prime` tree."""

    def __init__(self, model: M5Prime) -> None:
        if model.root_ is None:
            raise DataError("PerformanceAnalyzer requires a fitted model")
        self.model = model

    def analyze_section(self, x: Sequence) -> SectionAnalysis:
        """Classify one section and decompose its predicted CPI."""
        arr = np.asarray(x, dtype=np.float64).ravel()
        path = self.model.decision_path(arr)
        conditions = []
        for node in path[:-1]:
            assert isinstance(node, SplitNode)
            conditions.append(
                SplitCondition(
                    attribute=node.attribute_name,
                    threshold=node.threshold,
                    high_side=bool(arr[node.attribute_index] > node.threshold),
                )
            )
        leaf = path[-1]
        predicted = float(leaf.model.predict_one(arr))  # type: ignore[union-attr]
        extrapolated = predicted <= 0
        contributions: List[EventContribution] = []
        if not extrapolated:
            contributions = leaf_contributions(self.model, arr)
        return SectionAnalysis(
            leaf_id=leaf.leaf_id,
            predicted=predicted,
            conditions=conditions,
            contributions=contributions,
            target_name=self.model.target_name_,
            extrapolated=extrapolated,
        )

    def analyze_dataset(self, dataset: Dataset) -> Dict[int, List[SectionAnalysis]]:
        """Analyze every section, grouped by leaf (class) id."""
        grouped: Dict[int, List[SectionAnalysis]] = {}
        for x in dataset.X:
            analysis = self.analyze_section(x)
            grouped.setdefault(analysis.leaf_id, []).append(analysis)
        return grouped

    def summarize_dataset(self, dataset: Dataset, top: int = 3) -> str:
        """Per-class summary report over a dataset."""
        grouped = self.analyze_dataset(dataset)
        lines = []
        total = dataset.n_instances
        for leaf_id in sorted(grouped):
            sections = grouped[leaf_id]
            mean_predicted = float(np.mean([s.predicted for s in sections]))
            share = 100.0 * len(sections) / total
            lines.append(
                f"LM{leaf_id}: {len(sections)} sections ({share:.1f}%), "
                f"mean predicted {self.model.target_name_} {mean_predicted:.3f}"
            )
            totals: Dict[str, float] = {}
            for section in sections:
                for contribution in section.top_issues(top):
                    totals[contribution.event] = (
                        totals.get(contribution.event, 0.0) + contribution.cycles
                    )
            ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)[:top]
            for event, cycles in ranked:
                lines.append(
                    f"    {event}: mean {cycles / len(sections):.4f} CPI"
                )
        return "\n".join(lines)

"""Impact of split variables ("how much", implicit part).

Split variables steer sections into classes but may not appear in the
leaf equations; the paper (Section V-A2) proposes three estimates of
their impact, all implemented here:

* **simple**: right-subtree mean CPI minus the plain mean of the left
  subtree's per-leaf means (the paper's LdBlSta example: 0.84 -
  mean(0.57, 0.51) = 0.30, about 35 % of CPI);
* **weighted**: the same with instance-weighted subtree means;
* **r2**: the R-squared of a one-variable regression of CPI on the split
  variable over all instances reaching the split node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import Node, SplitNode
from repro.datasets.dataset import Dataset
from repro.errors import DataError, NotFittedError


@dataclass(frozen=True)
class SplitImpact:
    """Impact estimates for one split node.

    Attributes:
        attribute: Split variable name.
        threshold: Split point.
        depth: Node depth (root = 0).
        n_left / n_right: Training populations of the branches.
        mean_left / mean_right: Instance-weighted mean CPI per branch.
        impact_simple: Right mean minus plain mean of left leaf means.
        impact_weighted: ``mean_right - mean_left``.
        impact_fraction: ``impact_weighted / mean_right`` — share of the
            high-side CPI attributable to the variable.
        r_squared: One-variable regression R^2 (None without data).
    """

    attribute: str
    threshold: float
    depth: int
    n_left: int
    n_right: int
    mean_left: float
    mean_right: float
    impact_simple: float
    impact_weighted: float
    impact_fraction: float
    r_squared: Optional[float] = None

    def describe(self) -> str:
        r2 = "" if self.r_squared is None else f", R^2={self.r_squared:.3f}"
        return (
            f"{self.attribute} @ {self.threshold:.5g}: "
            f"left mean {self.mean_left:.3f} (n={self.n_left}), "
            f"right mean {self.mean_right:.3f} (n={self.n_right}), "
            f"impact {self.impact_weighted:+.3f} "
            f"({100 * self.impact_fraction:.0f}% of right-side CPI){r2}"
        )


def split_impacts(
    model: M5Prime, dataset: Optional[Dataset] = None
) -> List[SplitImpact]:
    """Impact estimates for every split node, pre-order.

    Passing the training ``dataset`` additionally computes the R-squared
    estimate, which needs the raw instances.
    """
    root = model.root_
    if root is None:
        raise NotFittedError("split_impacts requires a fitted model")
    if dataset is not None and dataset.n_attributes != len(model.attributes_):
        raise DataError("dataset width does not match the fitted model")

    impacts: List[SplitImpact] = []
    rows = np.arange(dataset.n_instances) if dataset is not None else None
    _walk(root, 0, dataset, rows, impacts)
    return impacts


def _walk(
    node: Node,
    depth: int,
    dataset: Optional[Dataset],
    rows: Optional[np.ndarray],
    impacts: List[SplitImpact],
) -> None:
    if node.is_leaf:
        return
    assert isinstance(node, SplitNode)

    left_leaf_means = [leaf.mean for leaf in node.left.leaves()]
    impact_simple = node.right.mean - float(np.mean(left_leaf_means))
    impact_weighted = node.right.mean - node.left.mean
    impact_fraction = (
        impact_weighted / node.right.mean if node.right.mean else 0.0
    )

    r_squared = None
    left_rows = right_rows = None
    if dataset is not None and rows is not None and rows.size:
        values = dataset.X[rows, node.attribute_index]
        targets = dataset.y[rows]
        r_squared = _single_variable_r2(values, targets)
        mask = values <= node.threshold
        left_rows = rows[mask]
        right_rows = rows[~mask]

    impacts.append(
        SplitImpact(
            attribute=node.attribute_name,
            threshold=node.threshold,
            depth=depth,
            n_left=node.left.n_instances,
            n_right=node.right.n_instances,
            mean_left=node.left.mean,
            mean_right=node.right.mean,
            impact_simple=float(impact_simple),
            impact_weighted=float(impact_weighted),
            impact_fraction=float(impact_fraction),
            r_squared=r_squared,
        )
    )
    _walk(node.left, depth + 1, dataset, left_rows, impacts)
    _walk(node.right, depth + 1, dataset, right_rows, impacts)


def _single_variable_r2(values: np.ndarray, targets: np.ndarray) -> float:
    """R^2 of a one-variable least-squares regression of target on value."""
    if values.size < 3 or np.ptp(values) <= 0 or np.ptp(targets) <= 0:
        return 0.0
    design = np.column_stack([values, np.ones_like(values)])
    solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
    residual = targets - design @ solution
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum((targets - targets.mean()) ** 2))
    if ss_tot <= 0:
        return 0.0
    return max(0.0, 1.0 - ss_res / ss_tot)

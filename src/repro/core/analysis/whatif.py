"""What-if gain estimation with class reassignment.

The paper estimates the gain from fixing an event as its leaf-model
contribution (``coef * X / CPI``).  That linearization ignores a second-
order effect the tree itself encodes: reducing an event's rate can move
the section across a split threshold into a *different class* with a
different model — e.g. eliminating L2 misses moves a section from the
memory-bound class to a core-bound class whose CPI is governed by other
events.  :func:`estimate_gain` re-routes the modified section through
the tree, so the predicted gain accounts for reclassification; the
difference against the paper's linear estimate is itself informative
(how close the section sits to a class boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro._util import ensure_fraction
from repro.core.tree.m5 import M5Prime
from repro.errors import DataError


@dataclass(frozen=True)
class WhatIfResult:
    """Predicted effect of scaling one event's rate for one section.

    Attributes:
        event: The attribute scaled.
        reduction: Fraction removed (1.0 = event eliminated).
        baseline_cpi: Predicted CPI of the unmodified section.
        modified_cpi: Predicted CPI after scaling, with re-routing.
        baseline_leaf / modified_leaf: Class ids before and after.
        linear_gain_fraction: The paper's first-order estimate
            (``coef * removed / baseline``), 0 when the event is not in
            the baseline leaf model.
    """

    event: str
    reduction: float
    baseline_cpi: float
    modified_cpi: float
    baseline_leaf: int
    modified_leaf: int
    linear_gain_fraction: float

    @property
    def gain_fraction(self) -> float:
        """Tree-predicted fractional CPI gain (can differ from linear)."""
        if self.baseline_cpi <= 0:
            return 0.0
        return (self.baseline_cpi - self.modified_cpi) / self.baseline_cpi

    @property
    def reclassified(self) -> bool:
        return self.baseline_leaf != self.modified_leaf

    def describe(self) -> str:
        move = (
            f" (reclassified LM{self.baseline_leaf} -> LM{self.modified_leaf})"
            if self.reclassified
            else ""
        )
        return (
            f"{self.event} -{self.reduction:.0%}: CPI {self.baseline_cpi:.3f} "
            f"-> {self.modified_cpi:.3f} ({self.gain_fraction:+.1%}; linear "
            f"estimate {self.linear_gain_fraction:+.1%}){move}"
        )


#: Physical lower bound on predicted CPI: an ideal 4-wide machine retires
#: at 0.25 CPI; leaf-model extrapolation below this floor is clamped.
CPI_FLOOR = 0.25


def estimate_gain(
    model: M5Prime,
    x: Sequence,
    event: str,
    reduction: float = 1.0,
    floor: float = CPI_FLOOR,
) -> WhatIfResult:
    """Predict the CPI effect of removing ``reduction`` of ``event``.

    Args:
        model: A fitted tree.
        x: One section (full-width attribute vector).
        event: Attribute name whose per-instruction rate is scaled down.
        reduction: Fraction of the event removed, in [0, 1].
        floor: Clamp for the modified prediction — the hypothetical
            section may sit outside the class's training region, and a
            linear model extrapolates without physical bounds.
    """
    ensure_fraction(reduction, "reduction")
    if floor < 0:
        raise DataError(f"floor must be non-negative, got {floor}")
    arr = np.asarray(x, dtype=np.float64).ravel().copy()
    if arr.shape[0] != len(model.attributes_):
        raise DataError("instance width does not match the fitted model")
    if event not in model.attributes_:
        raise DataError(f"unknown event {event!r}")
    index = model.attributes_.index(event)

    baseline_leaf = model.leaf_for(arr)
    baseline_cpi = float(baseline_leaf.model.predict_one(arr))

    removed = arr[index] * reduction
    linear_gain = 0.0
    if event in baseline_leaf.model.names and baseline_cpi > 0:
        position = baseline_leaf.model.names.index(event)
        linear_gain = (
            baseline_leaf.model.coefficients[position] * removed / baseline_cpi
        )

    arr[index] -= removed
    modified_leaf = model.leaf_for(arr)
    modified_cpi = max(float(modified_leaf.model.predict_one(arr)), floor)

    return WhatIfResult(
        event=event,
        reduction=reduction,
        baseline_cpi=baseline_cpi,
        modified_cpi=modified_cpi,
        baseline_leaf=baseline_leaf.leaf_id,
        modified_leaf=modified_leaf.leaf_id,
        linear_gain_fraction=float(linear_gain),
    )


def rank_gains(
    model: M5Prime,
    x: Sequence,
    reduction: float = 1.0,
    events: Optional[Sequence[str]] = None,
) -> List[WhatIfResult]:
    """What-if results for every (or the given) events, best gain first.

    This is the "how much" answer with reclassification: the ordering can
    differ from the linear contribution ranking when fixing one event
    moves the section into a class dominated by another.
    """
    names = events if events is not None else model.attributes_
    results = [estimate_gain(model, x, event, reduction) for event in names]
    results.sort(key=lambda result: result.gain_fraction, reverse=True)
    return results

"""Pairwise interaction cost of events, estimated from the model tree.

Fields et al. ([17] in the paper) define *interaction cost*: the cost of
two events together minus the sum of their individual costs — positive
when they serialize (fixing either alone buys little), negative when
they overlap (fixing one hides the other; fixing both is redundant).
The paper cites this work and argues its statistical model captures the
same phenomenon "without the requirement of dedicated new hardware";
this module makes that concrete using the what-if machinery:

    icost(A, B) = gain(A and B) − gain(A) − gain(B)

expressed as a fraction of the section's baseline CPI.  Positive icost
means the pair is *super-additive* (the class structure charges extra
for the combination, like the paper's L1IM×L2M class LM18); negative
means the events hide under each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.analysis.whatif import CPI_FLOOR
from repro.core.tree.m5 import M5Prime
from repro.errors import DataError


@dataclass(frozen=True)
class InteractionCost:
    """Interaction of one event pair for one section.

    All fractions are of the baseline predicted CPI.
    """

    event_a: str
    event_b: str
    gain_a: float
    gain_b: float
    gain_both: float

    @property
    def cost(self) -> float:
        """gain(A∧B) − gain(A) − gain(B): >0 super-additive, <0 overlap."""
        return self.gain_both - self.gain_a - self.gain_b

    def describe(self) -> str:
        kind = "serialize" if self.cost > 0 else "overlap"
        return (
            f"{self.event_a} x {self.event_b}: gain A={self.gain_a:+.1%} "
            f"B={self.gain_b:+.1%} both={self.gain_both:+.1%} -> "
            f"interaction {self.cost:+.1%} ({kind})"
        )


def _predict_with(model: M5Prime, x: np.ndarray, zeroed: Sequence[int]) -> float:
    modified = x.copy()
    for index in zeroed:
        modified[index] = 0.0
    leaf = model.leaf_for(modified)
    return max(float(leaf.model.predict_one(modified)), CPI_FLOOR)


def interaction_cost(
    model: M5Prime, x: Sequence, event_a: str, event_b: str
) -> InteractionCost:
    """Interaction cost of eliminating ``event_a`` and ``event_b``."""
    arr = np.asarray(x, dtype=np.float64).ravel()
    if arr.shape[0] != len(model.attributes_):
        raise DataError("instance width does not match the fitted model")
    for event in (event_a, event_b):
        if event not in model.attributes_:
            raise DataError(f"unknown event {event!r}")
    if event_a == event_b:
        raise DataError("interaction requires two distinct events")
    index_a = model.attributes_.index(event_a)
    index_b = model.attributes_.index(event_b)

    baseline = max(float(model.leaf_for(arr).model.predict_one(arr)), CPI_FLOOR)
    gain = lambda zeroed: (baseline - _predict_with(model, arr, zeroed)) / baseline  # noqa: E731
    return InteractionCost(
        event_a=event_a,
        event_b=event_b,
        gain_a=gain([index_a]),
        gain_b=gain([index_b]),
        gain_both=gain([index_a, index_b]),
    )


def interaction_matrix(
    model: M5Prime, x: Sequence, events: Sequence[str]
) -> List[InteractionCost]:
    """All unordered pairs of ``events``, strongest |interaction| first."""
    if len(events) < 2:
        raise DataError("need at least two events for interactions")
    results = []
    for i, event_a in enumerate(events):
        for event_b in events[i + 1:]:
            results.append(interaction_cost(model, x, event_a, event_b))
    results.sort(key=lambda r: -abs(r.cost))
    return results

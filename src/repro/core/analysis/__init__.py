"""Performance analysis on top of a fitted model tree.

Answers the paper's two questions:

* **what** limits performance — the split variables on the path to a
  section's leaf (its implicit, categorical factors) plus the terms of
  the leaf's linear model (its explicit factors);
* **how much** each limiter costs — a term's contribution
  ``coef * value / CPI`` and a split variable's cross-branch impact.
"""

from repro.core.analysis.contribution import (
    EventContribution,
    leaf_contributions,
    rank_events,
)
from repro.core.analysis.splitvars import SplitImpact, split_impacts
from repro.core.analysis.classes import (
    dominant_leaf,
    leaf_distribution,
    workload_leaf_table,
)
from repro.core.analysis.report import (
    PerformanceAnalyzer,
    SectionAnalysis,
    SplitCondition,
)
from repro.core.analysis.rules import Rule, RuleCondition, extract_rules, render_rules
from repro.core.analysis.phasetrack import PhaseSegment, detect_phases, render_phases
from repro.core.analysis.whatif import WhatIfResult, estimate_gain, rank_gains
from repro.core.analysis.interaction import (
    InteractionCost,
    interaction_cost,
    interaction_matrix,
)

__all__ = [
    "EventContribution",
    "InteractionCost",
    "PhaseSegment",
    "PerformanceAnalyzer",
    "Rule",
    "RuleCondition",
    "SectionAnalysis",
    "SplitCondition",
    "SplitImpact",
    "WhatIfResult",
    "detect_phases",
    "estimate_gain",
    "interaction_cost",
    "interaction_matrix",
    "dominant_leaf",
    "leaf_contributions",
    "leaf_distribution",
    "extract_rules",
    "rank_events",
    "rank_gains",
    "render_phases",
    "render_rules",
    "split_impacts",
    "workload_leaf_table",
]

"""Rule extraction: the tree as an ordered rule list (M5Rules style).

Each leaf becomes one human-readable rule — the conjunction of split
conditions on its path plus its linear model.  The paper reads its tree
exactly this way ("the class is characterized by the variables used in
decision rules leading to the corresponding leaf"); rules make that
reading explicit and greppable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro._util import format_float
from repro.core.tree.linear import LinearModel
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import Node, SplitNode
from repro.errors import NotFittedError


@dataclass(frozen=True)
class RuleCondition:
    """One conjunct: ``attribute <= threshold`` or ``attribute > threshold``."""

    attribute: str
    operator: str  # "<=" or ">"
    threshold: float

    def describe(self, digits: int = 5) -> str:
        return f"{self.attribute} {self.operator} {format_float(self.threshold, digits)}"


@dataclass(frozen=True)
class Rule:
    """IF conditions THEN linear model, covering ``n_instances`` sections."""

    leaf_id: int
    conditions: Tuple[RuleCondition, ...]
    model: LinearModel
    n_instances: int
    mean: float

    def describe(self, target_name: str = "CPI", digits: int = 5) -> str:
        if self.conditions:
            condition_text = " AND ".join(c.describe(digits) for c in self.conditions)
        else:
            condition_text = "TRUE"
        return (
            f"RULE {self.leaf_id} (n={self.n_instances}, mean "
            f"{format_float(self.mean, 3)}):\n"
            f"  IF   {condition_text}\n"
            f"  THEN {self.model.describe(target_name, digits)}"
        )

    @property
    def high_side_attributes(self) -> Tuple[str, ...]:
        """Attributes this class sits above the split point of ("what")."""
        return tuple(c.attribute for c in self.conditions if c.operator == ">")


def extract_rules(model: M5Prime) -> List[Rule]:
    """All leaf rules, in leaf-id (left-to-right) order."""
    root = model.root_
    if root is None:
        raise NotFittedError("extract_rules requires a fitted model")
    rules: List[Rule] = []
    _collect(root, (), rules)
    rules.sort(key=lambda rule: rule.leaf_id)
    return rules


def _collect(
    node: Node, conditions: Tuple[RuleCondition, ...], rules: List[Rule]
) -> None:
    if node.is_leaf:
        assert node.model is not None
        rules.append(
            Rule(
                leaf_id=node.leaf_id,
                conditions=conditions,
                model=node.model,
                n_instances=node.n_instances,
                mean=node.mean,
            )
        )
        return
    assert isinstance(node, SplitNode)
    _collect(
        node.left,
        conditions + (RuleCondition(node.attribute_name, "<=", node.threshold),),
        rules,
    )
    _collect(
        node.right,
        conditions + (RuleCondition(node.attribute_name, ">", node.threshold),),
        rules,
    )


def render_rules(model: M5Prime, digits: int = 5) -> str:
    """All rules as one readable block."""
    rules = extract_rules(model)
    return "\n\n".join(rule.describe(model.target_name_, digits) for rule in rules)

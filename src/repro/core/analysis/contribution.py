"""Per-event contribution of leaf-model terms ("how much", explicit part).

The paper's worked example (its LM8, Equation 4): with a predicted CPI of
1.0 and ``L1IM = 0.03``, the L1I term ``6.69 * L1IM`` contributes
``6.69 * 0.03 / 1.0 = 0.20`` — addressing all L1I misses is predicted to
buy ~20 %.  :func:`leaf_contributions` computes exactly that ratio for
every term of the leaf model a section lands in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.errors import DataError


@dataclass(frozen=True)
class EventContribution:
    """One leaf-model term's predicted share of a section's CPI.

    Attributes:
        event: Attribute (metric) name.
        coefficient: Leaf-model slope for the event.
        value: The section's per-instruction event ratio.
        cycles: Predicted CPI attributable to the term (coef * value).
        fraction: ``cycles / predicted_cpi`` — the paper's contribution
            ratio; also the predicted fractional gain from eliminating
            the event entirely.
    """

    event: str
    coefficient: float
    value: float
    cycles: float
    fraction: float

    @property
    def potential_gain_percent(self) -> float:
        """Predicted % CPI improvement from removing all such events."""
        return 100.0 * self.fraction

    def describe(self) -> str:
        return (
            f"{self.event}: {self.coefficient:.4g} * {self.value:.4g} = "
            f"{self.cycles:.4g} CPI ({self.potential_gain_percent:.1f}%)"
        )


def leaf_contributions(model: M5Prime, x: Sequence) -> List[EventContribution]:
    """Contributions of every leaf-model term for one section.

    Sorted by descending contribution, so the head of the list is the
    answer to "what should be optimized first".  Negative-cycle terms
    (events whose coefficient is negative, e.g. correctly predicted
    branches standing in for a favourable mix) sort last.
    """
    arr = np.asarray(x, dtype=np.float64).ravel()
    leaf = model.leaf_for(arr)
    linear = leaf.model
    if linear is None:
        raise DataError("leaf carries no model")
    predicted = linear.predict_one(arr)
    if predicted <= 0:
        raise DataError(
            f"predicted {model.target_name_} is non-positive ({predicted:.4g}); "
            "contributions are undefined"
        )
    contributions = []
    for name, index, coefficient in zip(
        linear.names, linear.indices, linear.coefficients
    ):
        value = float(arr[index])
        cycles = coefficient * value
        contributions.append(
            EventContribution(
                event=name,
                coefficient=float(coefficient),
                value=value,
                cycles=float(cycles),
                fraction=float(cycles / predicted),
            )
        )
    contributions.sort(key=lambda c: c.cycles, reverse=True)
    return contributions


def rank_events(model: M5Prime, X: Sequence) -> List[EventContribution]:
    """Average contributions over many sections (e.g. a whole workload).

    Sections are weighted equally; the result ranks events by their mean
    predicted CPI cost across ``X``, answering "what" at workload scope.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    if X.shape[0] == 0:
        raise DataError("need at least one section to rank events")
    totals: dict = {}
    for x in X:
        for contribution in leaf_contributions(model, x):
            record = totals.setdefault(
                contribution.event, {"cycles": 0.0, "value": 0.0, "coef": 0.0, "n": 0}
            )
            record["cycles"] += contribution.cycles
            record["value"] += contribution.value
            record["coef"] += contribution.coefficient
            record["n"] += 1
    mean_predicted = float(np.mean(model.predict(X)))
    ranked = []
    n_sections = X.shape[0]
    for event, record in totals.items():
        mean_cycles = record["cycles"] / n_sections
        ranked.append(
            EventContribution(
                event=event,
                coefficient=record["coef"] / record["n"],
                value=record["value"] / n_sections,
                cycles=mean_cycles,
                fraction=mean_cycles / mean_predicted if mean_predicted > 0 else 0.0,
            )
        )
    ranked.sort(key=lambda c: c.cycles, reverse=True)
    return ranked

"""Phase tracking over section timelines.

The paper leans on Sherwood et al.'s phase model ([7]): a workload's
execution is a sequence of phases, and the model tree's leaves are the
behaviour classes those phases fall into.  This module closes the loop:
given the *timeline* of a workload's sections, it segments the run into
phases by smoothing the per-section class labels and cutting where the
dominant class changes — recovering the paper's "workloads that contain
multiple execution phases" structure from counters alone.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.tree.m5 import M5Prime
from repro.datasets.dataset import Dataset
from repro.errors import ConfigError, DataError


@dataclass(frozen=True)
class PhaseSegment:
    """One detected phase: a run of sections dominated by a single class.

    Attributes:
        start / end: Section index range, ``[start, end)``.
        leaf_id: Dominant tree class in the segment.
        mean_cpi: Mean measured CPI over the segment.
        purity: Fraction of the segment's sections in the dominant class.
    """

    start: int
    end: int
    leaf_id: int
    mean_cpi: float
    purity: float

    @property
    def length(self) -> int:
        return self.end - self.start

    def describe(self) -> str:
        return (
            f"sections [{self.start:>4}, {self.end:>4}): class LM{self.leaf_id}, "
            f"mean CPI {self.mean_cpi:.3f}, purity {self.purity:.0%}"
        )


def _majority_filter(labels: np.ndarray, window: int) -> np.ndarray:
    """Replace each label by the majority in a centered window."""
    if window <= 1:
        return labels.copy()
    half = window // 2
    smoothed = np.empty_like(labels)
    n = len(labels)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        smoothed[i] = Counter(labels[lo:hi].tolist()).most_common(1)[0][0]
    return smoothed


def detect_phases(
    model: M5Prime,
    timeline: Dataset,
    smoothing_window: int = 5,
    min_segment: int = 3,
) -> List[PhaseSegment]:
    """Segment a workload's section timeline into phases.

    Args:
        model: A fitted tree; its leaves define the behaviour classes.
        timeline: Sections of ONE workload, in execution order.
        smoothing_window: Majority-filter width over class labels;
            suppresses single-section flicker between adjacent classes.
        min_segment: Shorter runs are merged into their neighbour.

    Returns:
        Contiguous segments covering the whole timeline.
    """
    if smoothing_window < 1:
        raise ConfigError("smoothing_window must be at least 1")
    if min_segment < 1:
        raise ConfigError("min_segment must be at least 1")
    if timeline.n_instances == 0:
        raise DataError("timeline has no sections")

    labels = model.leaf_ids(timeline.X)
    smoothed = _majority_filter(labels, smoothing_window)

    # Cut wherever the smoothed label changes.
    boundaries = [0]
    for i in range(1, len(smoothed)):
        if smoothed[i] != smoothed[i - 1]:
            boundaries.append(i)
    boundaries.append(len(smoothed))

    # Merge short segments into the previous one.
    merged: List[List[int]] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if merged and (end - start) < min_segment:
            merged[-1][1] = end
        else:
            merged.append([start, end])
    # A short leading segment merges forward.
    if len(merged) >= 2 and merged[0][1] - merged[0][0] < min_segment:
        merged[1][0] = merged[0][0]
        merged.pop(0)

    segments = []
    for start, end in merged:
        segment_labels = labels[start:end]
        dominant, count = Counter(segment_labels.tolist()).most_common(1)[0]
        segments.append(
            PhaseSegment(
                start=int(start),
                end=int(end),
                leaf_id=int(dominant),
                mean_cpi=float(np.mean(timeline.y[start:end])),
                purity=count / (end - start),
            )
        )
    return segments


def render_phases(segments: Sequence[PhaseSegment]) -> str:
    """Human-readable phase table."""
    if not segments:
        return "(no segments)"
    return "\n".join(segment.describe() for segment in segments)

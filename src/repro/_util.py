"""Small shared helpers: RNG normalization and input validation."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import DataError

RandomState = Union[None, int, np.random.Generator]


def check_random_state(seed: RandomState) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a freshly seeded generator, an ``int`` a deterministic
    one, and an existing ``Generator`` is passed through unchanged so that
    callers can share a stream across components.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed)!r}")


def as_float_matrix(X: Sequence, name: str = "X") -> np.ndarray:
    """Validate and convert ``X`` to a 2-D float64 array with finite values."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return arr


def as_float_vector(y: Sequence, name: str = "y") -> np.ndarray:
    """Validate and convert ``y`` to a 1-D float64 array with finite values."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    if arr.size and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return arr


def check_matching_lengths(X: np.ndarray, y: np.ndarray) -> None:
    """Raise :class:`DataError` unless ``X`` and ``y`` agree on row count."""
    if X.shape[0] != y.shape[0]:
        raise DataError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} values"
        )


def sample_sd(values: np.ndarray) -> float:
    """Population standard deviation used by the M5 family of algorithms.

    M5/M5' measure node impurity with the biased (population) standard
    deviation; for single-element sets the spread is zero by definition.
    """
    if values.size <= 1:
        return 0.0
    return float(np.std(values))


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly for reports (no trailing zero noise)."""
    text = f"{value:.{digits}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text if text not in ("-0", "") else "0"


def stable_hash(parts: Sequence[Union[str, int, float]]) -> str:
    """Deterministic short hex digest for cache keys (not security)."""
    import hashlib

    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).hexdigest()
    return digest[:16]


def ensure_positive(value: float, name: str) -> None:
    """Raise :class:`repro.errors.ConfigError` unless ``value > 0``."""
    from repro.errors import ConfigError

    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def ensure_fraction(value: float, name: str) -> None:
    """Raise :class:`repro.errors.ConfigError` unless ``0 <= value <= 1``."""
    from repro.errors import ConfigError

    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")


def optional_int(value: Optional[int], name: str) -> Optional[int]:
    """Validate an optional non-negative integer parameter."""
    from repro.errors import ConfigError

    if value is None:
        return None
    if not isinstance(value, (int, np.integer)) or value < 0:
        raise ConfigError(f"{name} must be a non-negative int or None")
    return int(value)

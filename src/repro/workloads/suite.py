"""Suite runner: workload profiles -> section dataset.

This is the reproduction of the paper's data-collection campaign: run
every workload, cut its execution into equal-instruction sections, and
record the Table I counters per section.  Everything is seeded, so the
same call always yields bit-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.counters.derive import sections_to_dataset
from repro.datasets.dataset import Dataset
from repro.errors import ConfigError, RetryExhaustedError
from repro.resilience import RunPolicy, TaskFailure
from repro.resilience.faults import maybe_inject
from repro.simulator.config import MachineConfig
from repro.simulator.core import SimulatedCore
from repro.workloads.phases import perturbed
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec import spec_like_suite
from repro.workloads.stream import synthesize_block

ProgressCallback = Callable[[str, int, int], None]

#: Fraction of a cache's capacity prewarm fills with a phase's working set,
#: leaving room for the conflict misses a real warm execution still has.
_PREWARM_FILL = 0.8


def prewarm(core: SimulatedCore, params) -> None:
    """Bring the memory hierarchy to a steady state for a phase.

    The paper's counters come from long-running executions whose caches
    and TLBs are warm; replaying only a sampled slice per section would
    otherwise overstate compulsory misses.  Prewarming fills each
    structure with the phase's working set (or an evenly spaced sample of
    it when the set exceeds capacity — future uniform accesses hit with
    the same probability either way), cold regions first so the hot set
    ends up most-recently used.
    """
    config = core.config
    line = config.l1d.line_bytes
    page = config.dtlb.page_bytes

    def fill_lines(cache, base: int, span: int, budget: int) -> None:
        total = max(span // line, 1)
        step = max(total // max(budget, 1), 1)
        for index in range(0, total, step):
            cache.fill(base + index * line)

    def fill_pages(tlb, base: int, span: int, budget: int) -> None:
        total = max(span // page, 1)
        step = max(total // max(budget, 1), 1)
        for index in range(0, total, step):
            tlb.access(base + index * page)

    l2_budget = int(config.l2.size_bytes // line * _PREWARM_FILL)
    l1d_budget = int(config.l1d.size_bytes // line * _PREWARM_FILL)
    l1i_budget = int(config.l1i.size_bytes // line * _PREWARM_FILL)

    from repro.simulator.isa import CODE_REGION_BASE

    # Cold data into L2 (sampled to capacity), then hot code, then the hot
    # data set last so it sits at the MRU end of both levels.
    fill_lines(core.l2, 0, params.data_footprint, int(l2_budget * 0.75))
    fill_lines(
        core.l2, CODE_REGION_BASE, params.code_footprint, int(l2_budget * 0.25)
    )
    fill_lines(core.l1i, CODE_REGION_BASE, params.code_hot_bytes, l1i_budget)
    fill_lines(core.l2, 0, params.hot_set_bytes, l2_budget)
    fill_lines(core.l1d, 0, params.hot_set_bytes, l1d_budget)

    fill_pages(core.dtlb.level1, 0, params.data_footprint, config.dtlb.entries)
    fill_pages(core.dtlb.level1, 0, params.hot_set_bytes, config.dtlb.entries)
    fill_pages(core.dtlb.level0, 0, params.hot_set_bytes, config.dtlb0.entries)
    fill_pages(
        core.itlb, CODE_REGION_BASE, params.code_footprint, config.itlb.entries
    )
    fill_pages(
        core.itlb, CODE_REGION_BASE, params.code_hot_bytes, config.itlb.entries
    )
    core.dtlb.level1.reset_stats()
    core.dtlb.level0.reset_stats()
    core.itlb.reset_stats()


@dataclass
class SuiteResult:
    """Output of a suite simulation run.

    Attributes:
        dataset: One row per section, Table I attributes, CPI target,
            metadata columns ``workload``, ``section`` and ``phase``.
        cpi_by_workload: Mean measured CPI per workload, a quick sanity
            panel for calibration.
        failures: Workloads that exhausted their retries under a
            capturing failure policy; their sections are absent from
            ``dataset``.  Empty on a clean or policy-free run.
    """

    dataset: Dataset
    cpi_by_workload: Dict[str, float]
    failures: List[TaskFailure] = field(default_factory=list)

    def summary(self) -> str:
        """Human-readable per-workload CPI panel."""
        lines = ["workload          sections  mean CPI"]
        labels = self.dataset.meta["workload"]
        for name, cpi in sorted(self.cpi_by_workload.items()):
            count = int(np.count_nonzero(labels == name))
            lines.append(f"{name:<18}{count:>8}  {cpi:8.3f}")
        for failure in self.failures:
            lines.append(f"FAILED {failure.render()}")
        return "\n".join(lines)


def workload_fingerprint(profiles: Optional[Sequence[WorkloadProfile]] = None) -> str:
    """A stable digest of the profile definitions (for dataset caching).

    Any change to a phase parameter or schedule weight changes the
    fingerprint, so cached datasets can never silently outlive the
    workloads that produced them.
    """
    from repro._util import stable_hash

    parts = []
    for profile in profiles if profiles is not None else spec_like_suite():
        parts.append(profile.name)
        for params, weight in zip(profile.schedule.phases, profile.schedule.weights):
            parts.append(f"{weight:.6f}")
            parts.append(repr(params))
    return stable_hash(parts)


class _ProfileRun:
    """One workload's full simulation, self-contained for any executor.

    Each profile draws only from its own pre-spawned seed sequence, so
    profile runs are order- and worker-independent: a parallel suite is
    bit-identical to a serial one.
    """

    def __init__(
        self,
        machine: MachineConfig,
        sections_per_workload: int,
        instructions_per_section: int,
        jitter: float,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.machine = machine
        self.sections_per_workload = sections_per_workload
        self.instructions_per_section = instructions_per_section
        self.jitter = jitter
        self.progress = progress

    def __call__(self, job):
        profile, seq = job
        maybe_inject("sim", profile.name)
        rng = np.random.default_rng(seq)
        core = SimulatedCore(self.machine, rng=rng)
        counts = []
        section_ids: List[int] = []
        phase_ids: List[int] = []
        cycles_total = 0.0
        previous_params = None
        for index in range(self.sections_per_workload):
            params = profile.section_params(index, self.sections_per_workload)
            if params is not previous_params:
                prewarm(core, params)
                previous_params = params
            section_params = perturbed(params, rng, self.jitter)
            block = synthesize_block(
                section_params, self.instructions_per_section, rng
            )
            result = core.run_block(block)
            counts.append(result.counts)
            section_ids.append(index)
            phase_ids.append(
                profile.phase_index(index, self.sections_per_workload)
            )
            cycles_total += result.cycles
            if self.progress is not None:
                progress = self.progress
                progress(profile.name, index + 1, self.sections_per_workload)
        cpi = cycles_total / (
            self.sections_per_workload * self.instructions_per_section
        )
        return counts, section_ids, phase_ids, cpi


class _CheckpointedProfileRun:
    """A profile run that persists its outcome as soon as it succeeds.

    Writing from inside the task makes a killed suite run resumable:
    every workload simulated before the kill is already durable, and a
    ``--resume`` run recomputes only the missing ones.
    """

    def __init__(self, inner: _ProfileRun, store, run_key: str) -> None:
        self.inner = inner
        self.store = store
        self.run_key = run_key

    def __call__(self, job):
        profile, _seq = job
        counts, section_ids, phase_ids, cpi = self.inner(job)
        self.store.store(
            self.run_key,
            f"wl-{profile.name}",
            {
                "counts": counts,
                "sections": section_ids,
                "phases": phase_ids,
                "cpi": cpi,
            },
        )
        return counts, section_ids, phase_ids, cpi


def _payload_to_outcome(payload) -> Tuple[list, list, list, float]:
    """Reconstruct a profile run outcome from its checkpoint payload."""
    return (
        list(payload["counts"]),
        [int(s) for s in payload["sections"]],
        [int(p) for p in payload["phases"]],
        float(payload["cpi"]),
    )


def simulate_suite(
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    sections_per_workload: int = 120,
    instructions_per_section: int = 2048,
    config: Optional[MachineConfig] = None,
    seed: int = 2007,
    jitter: float = 0.08,
    progress: Optional[ProgressCallback] = None,
    n_jobs: Optional[int] = None,
    policy: Optional[RunPolicy] = None,
    engine: str = "trace",
    calibration=None,
) -> SuiteResult:
    """Simulate every profile and assemble the section dataset.

    Args:
        profiles: Workloads to run (defaults to the SPEC-like suite).
        sections_per_workload: Sections collected per workload.
        instructions_per_section: Instructions replayed per section.  Real
            sections span millions of instructions; replaying a sampled
            slice of this length per section yields the same per-
            instruction ratios with realistic sampling noise.
        config: Machine model (defaults to the Core 2 Duo configuration).
        seed: Master seed; all randomness derives from it.
        jitter: Section-to-section lognormal spread of phase parameters.
        progress: Optional callback ``(workload, done_sections, total)``.
            Fires per section only on the serial, policy-free trace
            path; in every other mode (``n_jobs > 1``, a ``policy``, or
            the fast engine) it fires in the parent once per workload
            that actually produced sections — a workload a policy
            skipped after exhausting retries gets no callback in any
            mode.
        n_jobs: Workload-level parallelism — ``1`` serial, ``N`` workers,
            ``-1`` all cores, ``None`` defers to ``REPRO_JOBS``.  The
            dataset is bit-identical at any worker count because every
            profile simulates from its own pre-spawned seed.  Trace
            engine only (the fast engine is a single vectorized pass).
        policy: Optional :class:`~repro.resilience.RunPolicy`: per-
            workload retries/timeouts, failure-policy handling, and —
            with a checkpoint store — durable per-workload results a
            resumed run reuses.  Since each profile simulates from its
            own pre-spawned seed, a resumed or retried run that
            completes is bit-identical to an uninterrupted one.
            ``None`` keeps the historical behavior exactly.  Trace
            engine only.
        engine: ``"trace"`` replays synthesized instruction blocks
            (the oracle, historical behavior); ``"fast"`` predicts the
            dataset from the analytical layer plus the calibrated
            residual model (:func:`repro.fastsim.fast_suite`) without
            touching a trace.
        calibration: Fast engine only — a
            :class:`~repro.fastsim.Calibration` to use (fit or loaded
            elsewhere).  ``None`` fits one on the fly.

    Returns:
        A :class:`SuiteResult` with the dataset, per-workload CPI, and
        any per-workload failures the policy captured.
    """
    from repro.parallel import parallel_map, resolve_jobs

    if engine not in ("trace", "fast"):
        raise ConfigError(
            f"engine must be 'trace' or 'fast', got {engine!r}"
        )
    if engine == "fast":
        if policy is not None:
            raise ConfigError(
                "the fast engine does not replay per-workload tasks; "
                "run policies apply to the trace engine only"
            )
        from repro.fastsim.engine import fast_suite

        return fast_suite(
            profiles,
            sections_per_workload=sections_per_workload,
            instructions_per_section=instructions_per_section,
            config=config,
            seed=seed,
            jitter=jitter,
            calibration=calibration,
            progress=progress,
        )
    if calibration is not None:
        raise ConfigError(
            "calibration only applies to the fast engine; "
            "pass engine='fast' or drop it"
        )

    if profiles is None:
        profiles = spec_like_suite()
    if not profiles:
        raise ConfigError("need at least one workload profile")
    if sections_per_workload < 1:
        raise ConfigError("sections_per_workload must be at least 1")
    if instructions_per_section < 64:
        raise ConfigError("instructions_per_section must be at least 64")
    machine = config or MachineConfig()

    jobs = resolve_jobs(n_jobs)
    seeds = np.random.SeedSequence(seed).spawn(len(profiles))
    # Per-section callbacks cannot cross a process boundary, and under a
    # policy a workload may fail after some sections already fired —
    # both of those modes report in the parent instead, once per
    # workload that produced sections.
    per_section_progress = jobs <= 1 and policy is None
    run = _ProfileRun(
        machine,
        sections_per_workload,
        instructions_per_section,
        jitter,
        progress=progress if per_section_progress else None,
    )
    all_jobs = list(zip(profiles, seeds))
    unit_names = [f"wl-{profile.name}" for profile in profiles]
    outcomes: List[Optional[tuple]] = [None] * len(profiles)
    failures: List[TaskFailure] = []

    if policy is None:
        outcomes = list(parallel_map(run, all_jobs, n_jobs=jobs))
    else:
        task = run
        if policy.checkpointing:
            assert policy.checkpoint is not None
            run_key = policy.require_run_key()
            if policy.resume:
                for index, unit in enumerate(unit_names):
                    payload = policy.checkpoint.load(run_key, unit)
                    if payload is not None:
                        outcomes[index] = _payload_to_outcome(payload)
            task = _CheckpointedProfileRun(run, policy.checkpoint, run_key)
        pending = [i for i in range(len(profiles)) if outcomes[i] is None]
        mapped = parallel_map(
            task,
            [all_jobs[i] for i in pending],
            n_jobs=jobs,
            retry=policy.retry,
            fail_policy=policy.fail_policy,
            task_timeout=policy.task_timeout,
            keys=[unit_names[i] for i in pending],
        )
        for index, outcome in zip(pending, mapped):
            if isinstance(outcome, TaskFailure):
                failures.append(outcome)
            else:
                outcomes[index] = outcome

    all_counts = []
    labels: List[str] = []
    section_ids: List[int] = []
    phase_ids: List[int] = []
    cpi_by_workload: Dict[str, float] = {}
    for profile, outcome in zip(profiles, outcomes):
        if outcome is None:
            continue
        counts, sections, phases, cpi = outcome
        all_counts.extend(counts)
        labels.extend([profile.name] * len(counts))
        section_ids.extend(sections)
        phase_ids.extend(phases)
        cpi_by_workload[profile.name] = cpi
        if progress is not None and not per_section_progress:
            progress(profile.name, sections_per_workload, sections_per_workload)

    if not all_counts:
        raise RetryExhaustedError(
            f"all {len(profiles)} workload simulations failed; "
            "no dataset can be assembled"
        )
    dataset = sections_to_dataset(all_counts, workloads=labels)
    dataset = dataset.with_meta(
        section=np.asarray(section_ids, dtype=object),
        phase=np.asarray(phase_ids, dtype=object),
    )
    return SuiteResult(
        dataset=dataset,
        cpi_by_workload=cpi_by_workload,
        failures=failures,
    )

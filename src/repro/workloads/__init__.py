"""Synthetic SPEC CPU2006-like workloads.

SPEC CPU2006 is proprietary, so the paper's training suite is replaced by
parameterized synthetic workloads whose micro-architectural signatures
mimic the benchmarks the paper names (429.mcf, 436.cactusADM, 403.gcc,
...).  Each workload is a :class:`WorkloadProfile`: a phase schedule over
:class:`PhaseParams`, rendered into instruction blocks by
:mod:`repro.workloads.stream` and replayed by the simulator.
"""

from repro.workloads.phases import PhaseParams, PhaseSchedule, perturbed
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.stream import synthesize_block
from repro.workloads.spec import spec_like_suite, workload_by_name
from repro.workloads.extended import extended_suite
from repro.workloads.suite import SuiteResult, simulate_suite

__all__ = [
    "PhaseParams",
    "PhaseSchedule",
    "SuiteResult",
    "WorkloadProfile",
    "extended_suite",
    "perturbed",
    "simulate_suite",
    "spec_like_suite",
    "synthesize_block",
    "workload_by_name",
]

"""SPEC CPU2006-like workload profiles.

Each profile mimics the micro-architectural *signature* of a SPEC
CPU2006 component the paper names or that is well documented in the
characterization literature — not its computation.  Footprints are chosen
against the Core 2 Duo geometry of :class:`repro.simulator.MachineConfig`
(32 KB L1s, 4 MB L2, 1 MB of DTLB reach), because the paper's tree
structure hinges on those capacity relationships: e.g. workloads whose
data fits L2 but overflows the DTLB populate the left-subtree DTLB
classes, and 436.cactusADM's combination of L1I and L2 misses lands in
the constant-CPI leaf LM18.
"""

from __future__ import annotations

import dataclasses

from typing import Dict, List

from repro.errors import ConfigError
from repro.workloads.phases import PhaseParams, PhaseSchedule
from repro.workloads.profiles import WorkloadProfile

KIB = 1024
MIB = 1024 * KIB


def mcf_like() -> WorkloadProfile:
    """429.mcf: pointer-chasing over a huge graph; L2 and DTLB bound."""
    chasing = PhaseParams(
        load_fraction=0.32,
        store_fraction=0.08,
        branch_fraction=0.17,
        data_footprint=64 * MIB,
        hot_fraction=0.80,
        hot_set_bytes=8 * KIB,
        stride_fraction=0.05,
        dependent_miss_fraction=0.95,
        ilp=0.20,
        code_footprint=16 * KIB,
        code_hot_fraction=0.95,
        code_hot_bytes=8 * KIB,
        basic_block_length=14,
        branch_bias=0.88,
        hard_branch_fraction=0.12,
    )
    relaxed = PhaseParams(
        load_fraction=0.30,
        store_fraction=0.10,
        branch_fraction=0.16,
        data_footprint=8 * MIB,
        hot_fraction=0.94,
        hot_set_bytes=16 * KIB,
        stride_fraction=0.30,
        dependent_miss_fraction=0.50,
        ilp=0.40,
        code_footprint=16 * KIB,
        code_hot_fraction=0.95,
        code_hot_bytes=8 * KIB,
        basic_block_length=16,
        branch_bias=0.90,
        hard_branch_fraction=0.10,
    )
    return WorkloadProfile(
        "mcf_like",
        PhaseSchedule([(chasing, 0.75), (relaxed, 0.25)]),
        "Pointer-chasing network simplex: serialized L2 misses plus page walks",
    )


def cactus_like() -> WorkloadProfile:
    """436.cactusADM: the paper's LM18 case — L1I misses on top of L2 misses."""
    stencil = PhaseParams(
        load_fraction=0.34,
        store_fraction=0.14,
        branch_fraction=0.14,
        data_footprint=24 * MIB,
        hot_fraction=0.84,
        hot_set_bytes=24 * KIB,
        stride_fraction=0.15,
        dependent_miss_fraction=0.30,
        ilp=0.55,
        code_footprint=2 * MIB,
        code_hot_fraction=0.32,
        code_hot_bytes=256 * KIB,
        basic_block_length=64,
        branch_bias=0.97,
        hard_branch_fraction=0.02,
    )
    setup = PhaseParams(
        load_fraction=0.30,
        store_fraction=0.12,
        branch_fraction=0.14,
        data_footprint=4 * MIB,
        hot_fraction=0.92,
        hot_set_bytes=32 * KIB,
        stride_fraction=0.60,
        dependent_miss_fraction=0.30,
        ilp=0.55,
        code_footprint=256 * KIB,
        code_hot_fraction=0.80,
        code_hot_bytes=24 * KIB,
        basic_block_length=24,
        branch_bias=0.93,
        hard_branch_fraction=0.05,
    )
    return WorkloadProfile(
        "cactus_like",
        PhaseSchedule([(stencil, 0.95), (setup, 0.05)]),
        "Large stencil kernel whose code footprint defeats L1I while data defeats L2",
    )


def gcc_like() -> WorkloadProfile:
    """403.gcc: branchy integer code with an LCP-stall-prone phase (LM10)."""
    compile_phase = PhaseParams(
        load_fraction=0.26,
        store_fraction=0.13,
        branch_fraction=0.22,
        data_footprint=4 * MIB,
        hot_fraction=0.88,
        hot_set_bytes=16 * KIB,
        stride_fraction=0.40,
        dependent_miss_fraction=0.45,
        ilp=0.45,
        code_footprint=640 * KIB,
        code_hot_fraction=0.85,
        code_hot_bytes=16 * KIB,
        basic_block_length=10,
        branch_bias=0.90,
        hard_branch_fraction=0.10,
        lcp_fraction=0.002,
        store_load_alias_fraction=0.10,
        sta_fraction=0.15,
        std_fraction=0.12,
    )
    # Identical to the compile phase except for LCP density, so LCP is
    # the distinguishing variable of this class (the paper's LM10).
    lcp_phase = dataclasses.replace(compile_phase, lcp_fraction=0.18)
    return WorkloadProfile(
        "gcc_like",
        PhaseSchedule([(compile_phase, 0.8), (lcp_phase, 0.2)]),
        "Compiler: branchy, moderate misses, ~20% of sections hit by LCP stalls",
    )


def calm_like() -> WorkloadProfile:
    """444.namd-like compute phase: everything hits, branches predict."""
    params = PhaseParams(
        load_fraction=0.28,
        store_fraction=0.10,
        branch_fraction=0.10,
        data_footprint=192 * KIB,
        hot_fraction=0.985,
        hot_set_bytes=24 * KIB,
        stride_fraction=0.90,
        dependent_miss_fraction=0.05,
        ilp=0.85,
        code_footprint=24 * KIB,
        code_hot_fraction=0.98,
        code_hot_bytes=8 * KIB,
        basic_block_length=40,
        branch_bias=0.985,
        hard_branch_fraction=0.01,
    )
    return WorkloadProfile.single_phase(
        "calm_like", params, "Cache-resident FP kernel: the low-CPI anchor class"
    )


def bzip_like() -> WorkloadProfile:
    """401.bzip2: data fits L2 but overflows DTLB reach; branchy."""
    compress = PhaseParams(
        load_fraction=0.30,
        store_fraction=0.12,
        branch_fraction=0.19,
        data_footprint=2500 * KIB,
        hot_fraction=0.80,
        hot_set_bytes=48 * KIB,
        stride_fraction=0.45,
        dependent_miss_fraction=0.35,
        ilp=0.50,
        code_footprint=48 * KIB,
        code_hot_fraction=0.92,
        code_hot_bytes=12 * KIB,
        basic_block_length=14,
        branch_bias=0.85,
        hard_branch_fraction=0.22,
    )
    huffman = PhaseParams(
        load_fraction=0.27,
        store_fraction=0.10,
        branch_fraction=0.24,
        data_footprint=1536 * KIB,
        hot_fraction=0.85,
        hot_set_bytes=32 * KIB,
        stride_fraction=0.50,
        dependent_miss_fraction=0.30,
        ilp=0.45,
        code_footprint=32 * KIB,
        code_hot_fraction=0.94,
        code_hot_bytes=8 * KIB,
        basic_block_length=10,
        branch_bias=0.82,
        hard_branch_fraction=0.30,
    )
    return WorkloadProfile(
        "bzip_like",
        PhaseSchedule([(compress, 0.6), (huffman, 0.4)]),
        "Compressor: DTLB pressure without L2 misses, plus hard branches",
    )


def lbm_like() -> WorkloadProfile:
    """470.lbm: streaming stores with wide, split-prone accesses."""
    params = PhaseParams(
        load_fraction=0.30,
        store_fraction=0.24,
        branch_fraction=0.05,
        data_footprint=32 * MIB,
        hot_fraction=0.72,
        hot_set_bytes=32 * KIB,
        stride_fraction=0.96,
        dependent_miss_fraction=0.05,
        ilp=0.70,
        code_footprint=12 * KIB,
        code_hot_fraction=0.98,
        code_hot_bytes=4 * KIB,
        basic_block_length=56,
        branch_bias=0.99,
        hard_branch_fraction=0.01,
        misalign_fraction=0.05,
        wide_access_fraction=0.30,
    )
    return WorkloadProfile.single_phase(
        "lbm_like", params, "Lattice-Boltzmann streaming: high-MLP misses, splits"
    )


def perl_like() -> WorkloadProfile:
    """400.perlbench: interpreter — code footprint, aliasing store traffic.

    The second phase models regex/pack-style byte twiddling whose
    generated code is dense with 16-bit-immediate instructions, the
    classic source of length-changing-prefix stalls on Core 2.
    """
    interpret = PhaseParams(
        load_fraction=0.29,
        store_fraction=0.14,
        branch_fraction=0.21,
        data_footprint=1 * MIB,
        hot_fraction=0.90,
        hot_set_bytes=40 * KIB,
        stride_fraction=0.35,
        dependent_miss_fraction=0.40,
        ilp=0.45,
        code_footprint=1 * MIB,
        code_hot_fraction=0.80,
        code_hot_bytes=24 * KIB,
        basic_block_length=12,
        branch_bias=0.89,
        hard_branch_fraction=0.12,
        store_load_alias_fraction=0.20,
        sta_fraction=0.28,
        std_fraction=0.22,
        overlap_alias_fraction=0.15,
    )
    # The regex phase mirrors the interpreter phase but is dense with
    # 16-bit-immediate instructions (LCP stalls).
    regex = dataclasses.replace(interpret, lcp_fraction=0.16)
    return WorkloadProfile(
        "perl_like",
        PhaseSchedule([(interpret, 0.65), (regex, 0.35)]),
        "Interpreter: ITLB/L1I pressure, load blocks, LCP-dense regex phase",
    )


def astar_like() -> WorkloadProfile:
    """473.astar: path search over a mid-size graph; mixed behaviour."""
    params = PhaseParams(
        load_fraction=0.31,
        store_fraction=0.09,
        branch_fraction=0.18,
        data_footprint=10 * MIB,
        hot_fraction=0.85,
        hot_set_bytes=24 * KIB,
        stride_fraction=0.25,
        dependent_miss_fraction=0.75,
        ilp=0.40,
        code_footprint=32 * KIB,
        code_hot_fraction=0.93,
        code_hot_bytes=8 * KIB,
        basic_block_length=14,
        branch_bias=0.87,
        hard_branch_fraction=0.16,
    )
    return WorkloadProfile.single_phase(
        "astar_like", params, "Graph search: moderate serialized misses, hard branches"
    )


def libq_like() -> WorkloadProfile:
    """462.libquantum: perfectly streaming loads — many L2 misses, all hidden."""
    params = PhaseParams(
        load_fraction=0.34,
        store_fraction=0.11,
        branch_fraction=0.12,
        data_footprint=16 * MIB,
        hot_fraction=0.70,
        hot_set_bytes=16 * KIB,
        stride_fraction=0.99,
        dependent_miss_fraction=0.02,
        ilp=0.80,
        code_footprint=8 * KIB,
        code_hot_fraction=0.98,
        code_hot_bytes=4 * KIB,
        basic_block_length=48,
        branch_bias=0.99,
        hard_branch_fraction=0.005,
    )
    return WorkloadProfile.single_phase(
        "libq_like", params, "Streaming vector sweep: the high-MLP counterexample"
    )


def h264_like() -> WorkloadProfile:
    """464.h264ref: motion estimation — misaligned and line-split accesses."""
    params = PhaseParams(
        load_fraction=0.33,
        store_fraction=0.13,
        branch_fraction=0.14,
        data_footprint=768 * KIB,
        hot_fraction=0.94,
        hot_set_bytes=64 * KIB,
        stride_fraction=0.70,
        dependent_miss_fraction=0.15,
        ilp=0.65,
        code_footprint=96 * KIB,
        code_hot_fraction=0.90,
        code_hot_bytes=16 * KIB,
        basic_block_length=20,
        branch_bias=0.92,
        hard_branch_fraction=0.08,
        misalign_fraction=0.10,
        wide_access_fraction=0.35,
    )
    return WorkloadProfile.single_phase(
        "h264_like", params, "Video encoder: unaligned block reads, cache-resident"
    )


def sphinx_like() -> WorkloadProfile:
    """482.sphinx3: speech recognition — mid-size data, mixed phases."""
    search = PhaseParams(
        load_fraction=0.32,
        store_fraction=0.08,
        branch_fraction=0.17,
        data_footprint=3 * MIB,
        hot_fraction=0.84,
        hot_set_bytes=32 * KIB,
        stride_fraction=0.55,
        dependent_miss_fraction=0.40,
        ilp=0.50,
        code_footprint=64 * KIB,
        code_hot_fraction=0.88,
        code_hot_bytes=12 * KIB,
        basic_block_length=16,
        branch_bias=0.88,
        hard_branch_fraction=0.14,
    )
    gaussian = PhaseParams(
        load_fraction=0.36,
        store_fraction=0.06,
        branch_fraction=0.08,
        data_footprint=1 * MIB,
        hot_fraction=0.92,
        hot_set_bytes=48 * KIB,
        stride_fraction=0.85,
        dependent_miss_fraction=0.10,
        ilp=0.75,
        code_footprint=24 * KIB,
        code_hot_fraction=0.97,
        code_hot_bytes=8 * KIB,
        basic_block_length=36,
        branch_bias=0.97,
        hard_branch_fraction=0.02,
    )
    return WorkloadProfile(
        "sphinx_like",
        PhaseSchedule([(gaussian, 0.55), (search, 0.45)]),
        "Speech decoder: a compute phase alternating with a searchy phase",
    )


def spec_like_suite() -> List[WorkloadProfile]:
    """The full evaluation suite, mirroring the paper's SPEC subset."""
    return [
        mcf_like(),
        cactus_like(),
        gcc_like(),
        calm_like(),
        bzip_like(),
        lbm_like(),
        perl_like(),
        astar_like(),
        libq_like(),
        h264_like(),
        sphinx_like(),
    ]


def workload_by_name(name: str) -> WorkloadProfile:
    """Look up a suite workload by its profile name."""
    catalogue: Dict[str, WorkloadProfile] = {p.name: p for p in spec_like_suite()}
    try:
        return catalogue[name]
    except KeyError:
        known = ", ".join(sorted(catalogue))
        raise ConfigError(f"unknown workload {name!r}; known: {known}") from None

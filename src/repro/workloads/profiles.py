"""Workload profiles: a named phase schedule plus provenance notes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.workloads.phases import PhaseParams, PhaseSchedule


@dataclass(frozen=True)
class WorkloadProfile:
    """A complete synthetic workload.

    Attributes:
        name: Identifier used in dataset metadata (``"mcf_like"``).
        schedule: Phase schedule governing its sections.
        description: What real benchmark signature this profile mimics.
    """

    name: str
    schedule: PhaseSchedule
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("workload name must be non-empty")

    def section_params(self, section_index: int, n_sections: int) -> PhaseParams:
        """Phase parameters governing one section of this workload."""
        return self.schedule.params_for(section_index, n_sections)

    def phase_index(self, section_index: int, n_sections: int) -> int:
        """Phase number governing one section (for labeling)."""
        return self.schedule.phase_index_for(section_index, n_sections)

    @classmethod
    def single_phase(
        cls, name: str, params: PhaseParams, description: str = ""
    ) -> "WorkloadProfile":
        """Convenience constructor for a one-phase workload."""
        return cls(name, PhaseSchedule([(params, 1.0)]), description)

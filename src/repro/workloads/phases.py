"""Phase parameters and phase schedules.

The paper (citing Sherwood et al. [7]) assumes workloads move through
distinct *phases*, each with its own performance behaviour, and relies on
the model tree to recover those classes from counter data.  A
:class:`PhaseSchedule` makes phases explicit on the generation side: it
assigns contiguous runs of sections to :class:`PhaseParams`, so a
workload's execution timeline has the same piecewise structure real
programs show.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._util import RandomState, check_random_state
from repro.errors import ConfigError


@dataclass(frozen=True)
class PhaseParams:
    """Generator knobs describing one execution phase.

    Every fraction lies in [0, 1].  Footprints are in bytes.

    Attributes:
        load_fraction / store_fraction / branch_fraction: Instruction mix
            (the remainder are plain ALU/FP instructions).
        data_footprint: Total data region the phase touches.
        hot_fraction: Probability a memory access hits the hot set.
        hot_set_bytes: Size of the hot (cache-resident) set.
        stride_fraction: Fraction of cold accesses that stream
            sequentially (high spatial locality) instead of jumping
            randomly through the footprint.
        dependent_miss_fraction: Fraction of long misses that are serially
            dependent (pointer chasing) — throttles MLP in the pipeline.
        ilp: Available instruction-level parallelism in [0, 1].
        code_footprint: Bytes of code the phase executes from.
        code_hot_fraction: Probability a basic-block run starts inside the
            hot code region (inner loops); the rest start anywhere in the
            code footprint (cold paths, virtual dispatch, unwinding).
        code_hot_bytes: Size of the hot code region.
        basic_block_length: Mean instructions per sequential code run.
        branch_bias: Favored-direction probability of ordinary branches.
        hard_branch_fraction: Fraction of branches that are 50/50 coin
            flips (unpredictable by any direction predictor).
        lcp_fraction: Instructions carrying a length-changing prefix.
        misalign_fraction: Memory accesses pushed off natural alignment.
        wide_access_fraction: Memory accesses of 16 bytes (split-prone).
        store_load_alias_fraction: Loads that read a recently stored
            address (store-forwarding traffic).
        sta_fraction / std_fraction: Stores whose address / data are late,
            turning aliasing loads into LOAD_BLOCK events.
        overlap_alias_fraction: Aliasing loads that only partially overlap
            the store (forwarding-impossible -> LOAD_BLOCK.OVERLAP_STORE).
    """

    load_fraction: float = 0.28
    store_fraction: float = 0.12
    branch_fraction: float = 0.15
    data_footprint: int = 1 << 20
    hot_fraction: float = 0.9
    hot_set_bytes: int = 16 << 10
    stride_fraction: float = 0.5
    dependent_miss_fraction: float = 0.2
    ilp: float = 0.5
    code_footprint: int = 32 << 10
    code_hot_fraction: float = 0.92
    code_hot_bytes: int = 8 << 10
    basic_block_length: int = 24
    branch_bias: float = 0.92
    hard_branch_fraction: float = 0.05
    lcp_fraction: float = 0.0
    misalign_fraction: float = 0.01
    wide_access_fraction: float = 0.05
    store_load_alias_fraction: float = 0.05
    sta_fraction: float = 0.1
    std_fraction: float = 0.1
    overlap_alias_fraction: float = 0.1

    def __post_init__(self) -> None:
        fractions = (
            "load_fraction",
            "store_fraction",
            "branch_fraction",
            "hot_fraction",
            "stride_fraction",
            "dependent_miss_fraction",
            "ilp",
            "code_hot_fraction",
            "branch_bias",
            "hard_branch_fraction",
            "lcp_fraction",
            "misalign_fraction",
            "wide_access_fraction",
            "store_load_alias_fraction",
            "sta_fraction",
            "std_fraction",
            "overlap_alias_fraction",
        )
        for name in fractions:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {value}")
        mix = self.load_fraction + self.store_fraction + self.branch_fraction
        if mix > 1.0 + 1e-9:
            raise ConfigError(f"instruction mix fractions sum to {mix} > 1")
        for name in (
            "data_footprint",
            "hot_set_bytes",
            "code_footprint",
            "code_hot_bytes",
        ):
            if getattr(self, name) < 64:
                raise ConfigError(f"{name} must be at least 64 bytes")
        if self.hot_set_bytes > self.data_footprint:
            raise ConfigError("hot_set_bytes cannot exceed data_footprint")
        if self.code_hot_bytes > self.code_footprint:
            raise ConfigError("code_hot_bytes cannot exceed code_footprint")
        if self.basic_block_length < 1:
            raise ConfigError("basic_block_length must be at least 1")


#: Jitter scale multiplier per continuous field.  Fields whose effect is
#: invisible to the counters (ILP, pointer-chasing serialization, stream
#: shape) stay nearly fixed within a phase: real phases have a fixed
#: access pattern, and jittering them freely would inject unexplainable
#: variance that no counter-based model (the paper's included) could
#: recover.
_JITTERED_FIELDS: Dict[str, float] = {
    "load_fraction": 1.0,
    "store_fraction": 1.0,
    "branch_fraction": 1.0,
    "hot_fraction": 1.0,
    "stride_fraction": 0.25,
    "dependent_miss_fraction": 0.1,
    "ilp": 0.1,
    "code_hot_fraction": 1.0,
    "branch_bias": 1.0,
    "hard_branch_fraction": 1.0,
    "lcp_fraction": 1.0,
    "misalign_fraction": 1.0,
    "wide_access_fraction": 1.0,
    "store_load_alias_fraction": 1.0,
    "sta_fraction": 1.0,
    "std_fraction": 1.0,
    "overlap_alias_fraction": 1.0,
}


def perturbed(
    params: PhaseParams, rng: RandomState = None, scale: float = 0.08
) -> PhaseParams:
    """A jittered copy of ``params`` for section-to-section diversity.

    Real sections of one phase are similar but not identical; each
    continuous fraction is scaled by a lognormal factor of spread
    ``scale`` and clipped back into validity.
    """
    if scale < 0:
        raise ConfigError("scale must be non-negative")
    if scale == 0:
        return params
    generator = check_random_state(rng)
    updates = {}
    for name, multiplier in _JITTERED_FIELDS.items():
        factor = float(np.exp(generator.normal(0.0, scale * multiplier)))
        updates[name] = float(np.clip(getattr(params, name) * factor, 0.0, 1.0))
    mix = updates["load_fraction"] + updates["store_fraction"] + updates["branch_fraction"]
    if mix > 1.0:
        for name in ("load_fraction", "store_fraction", "branch_fraction"):
            updates[name] /= mix
    return dataclasses.replace(params, **updates)


#: Field order and per-field spreads for the vectorized jitter path.
_JITTER_NAMES: Tuple[str, ...] = tuple(_JITTERED_FIELDS)
_JITTER_SCALES = np.array(list(_JITTERED_FIELDS.values()))
_MIX_COLUMNS = [
    _JITTER_NAMES.index(name)
    for name in ("load_fraction", "store_fraction", "branch_fraction")
]


def perturbed_batch(
    params: PhaseParams,
    rng: RandomState = None,
    scale: float = 0.08,
    n_draws: int = 1,
) -> List[PhaseParams]:
    """``n_draws`` jittered copies of ``params`` in one vectorized pass.

    Distributionally identical to ``n_draws`` calls of :func:`perturbed`
    — same lognormal spreads, same clipping, same instruction-mix
    renormalization — but every factor comes from a single generator
    call, so a caller jittering hundreds of sections (the fast engine)
    pays one numpy dispatch instead of seventeen per section.  The two
    functions consume the generator differently, so their exact draws
    are not interchangeable; each is deterministic under a fixed seed.
    """
    if scale < 0:
        raise ConfigError("scale must be non-negative")
    if n_draws < 0:
        raise ConfigError("n_draws must be non-negative")
    if scale == 0 or n_draws == 0:
        return [params] * n_draws
    generator = check_random_state(rng)
    base = np.array([getattr(params, name) for name in _JITTER_NAMES])
    factors = np.exp(
        generator.normal(0.0, 1.0, size=(n_draws, len(_JITTER_NAMES)))
        * (scale * _JITTER_SCALES)
    )
    values = np.clip(base * factors, 0.0, 1.0)
    mix = values[:, _MIX_COLUMNS].sum(axis=1)
    over = mix > 1.0
    if np.any(over):
        for column in _MIX_COLUMNS:
            values[over, column] /= mix[over]
    return [
        dataclasses.replace(params, **dict(zip(_JITTER_NAMES, row.tolist())))
        for row in values
    ]


class PhaseSchedule:
    """Contiguous assignment of a workload's sections to phases."""

    def __init__(self, phases: Sequence[Tuple[PhaseParams, float]]) -> None:
        if not phases:
            raise ConfigError("a schedule needs at least one phase")
        weights = [w for _, w in phases]
        if any(w <= 0 for w in weights):
            raise ConfigError("phase weights must be positive")
        total = float(sum(weights))
        self.phases: List[PhaseParams] = [p for p, _ in phases]
        self.weights: List[float] = [w / total for w in weights]

    def __len__(self) -> int:
        return len(self.phases)

    def params_for(self, section_index: int, n_sections: int) -> PhaseParams:
        """The phase governing ``section_index`` of ``n_sections`` total.

        Sections are allocated to phases in schedule order, proportionally
        to weight, so phases are temporally contiguous.
        """
        if not 0 <= section_index < n_sections:
            raise ConfigError(
                f"section_index {section_index} out of range for {n_sections}"
            )
        boundary = 0.0
        position = (section_index + 0.5) / n_sections
        for params, weight in zip(self.phases, self.weights):
            boundary += weight
            if position <= boundary + 1e-12:
                return params
        return self.phases[-1]

    def phase_index_for(self, section_index: int, n_sections: int) -> int:
        """Index of the phase governing a section (for labeling/tests)."""
        params = self.params_for(section_index, n_sections)
        return self.phases.index(params)

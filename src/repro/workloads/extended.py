"""Additional SPEC CPU2006-like profiles beyond the paper's subset.

The paper evaluates on a subset of the suite; these extra profiles cover
more of CPU2006's documented behaviour space for users who want a richer
training population.  They are *not* part of the default
:func:`repro.workloads.spec_like_suite` — the reproduction experiments
are calibrated against the paper's subset — but
:func:`extended_suite` appends them for larger studies.
"""

from __future__ import annotations

from typing import List

from repro.workloads.phases import PhaseParams, PhaseSchedule
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec import spec_like_suite

KIB = 1024
MIB = 1024 * KIB


def povray_like() -> WorkloadProfile:
    """453.povray: ray tracing — FP compute, tiny data, superb prediction."""
    params = PhaseParams(
        load_fraction=0.30,
        store_fraction=0.09,
        branch_fraction=0.12,
        data_footprint=256 * KIB,
        hot_fraction=0.97,
        hot_set_bytes=28 * KIB,
        stride_fraction=0.60,
        dependent_miss_fraction=0.15,
        ilp=0.80,
        code_footprint=192 * KIB,
        code_hot_fraction=0.93,
        code_hot_bytes=16 * KIB,
        basic_block_length=28,
        branch_bias=0.96,
        hard_branch_fraction=0.03,
    )
    return WorkloadProfile.single_phase(
        "povray_like", params, "Ray tracer: compute-dense, cache-friendly"
    )


def omnetpp_like() -> WorkloadProfile:
    """471.omnetpp: discrete-event simulation — pointer soup, DTLB-bound."""
    events = PhaseParams(
        load_fraction=0.31,
        store_fraction=0.13,
        branch_fraction=0.19,
        data_footprint=16 * MIB,
        hot_fraction=0.88,
        hot_set_bytes=20 * KIB,
        stride_fraction=0.12,
        dependent_miss_fraction=0.80,
        ilp=0.35,
        code_footprint=384 * KIB,
        code_hot_fraction=0.86,
        code_hot_bytes=20 * KIB,
        basic_block_length=12,
        branch_bias=0.89,
        hard_branch_fraction=0.12,
        store_load_alias_fraction=0.12,
        sta_fraction=0.20,
        std_fraction=0.15,
    )
    return WorkloadProfile.single_phase(
        "omnetpp_like", events, "Event-queue simulator: serialized heap walks"
    )


def xalanc_like() -> WorkloadProfile:
    """483.xalancbmk: XSLT — branchy tree walking over a mid-size DOM."""
    transform = PhaseParams(
        load_fraction=0.30,
        store_fraction=0.11,
        branch_fraction=0.23,
        data_footprint=3 * MIB,
        hot_fraction=0.87,
        hot_set_bytes=24 * KIB,
        stride_fraction=0.25,
        dependent_miss_fraction=0.55,
        ilp=0.40,
        code_footprint=768 * KIB,
        code_hot_fraction=0.84,
        code_hot_bytes=24 * KIB,
        basic_block_length=9,
        branch_bias=0.88,
        hard_branch_fraction=0.14,
        store_load_alias_fraction=0.15,
        sta_fraction=0.22,
        std_fraction=0.18,
    )
    parse = PhaseParams(
        load_fraction=0.28,
        store_fraction=0.16,
        branch_fraction=0.21,
        data_footprint=1 * MIB,
        hot_fraction=0.92,
        hot_set_bytes=32 * KIB,
        stride_fraction=0.55,
        dependent_miss_fraction=0.25,
        ilp=0.50,
        code_footprint=256 * KIB,
        code_hot_fraction=0.90,
        code_hot_bytes=16 * KIB,
        basic_block_length=11,
        branch_bias=0.90,
        hard_branch_fraction=0.10,
    )
    return WorkloadProfile(
        "xalanc_like",
        PhaseSchedule([(parse, 0.3), (transform, 0.7)]),
        "XSLT processor: parse phase then branchy DOM transformation",
    )


def soplex_like() -> WorkloadProfile:
    """450.soplex: simplex LP — sparse algebra alternating dense sweeps."""
    factorize = PhaseParams(
        load_fraction=0.35,
        store_fraction=0.12,
        branch_fraction=0.10,
        data_footprint=8 * MIB,
        hot_fraction=0.82,
        hot_set_bytes=40 * KIB,
        stride_fraction=0.80,
        dependent_miss_fraction=0.20,
        ilp=0.65,
        code_footprint=96 * KIB,
        code_hot_fraction=0.92,
        code_hot_bytes=12 * KIB,
        basic_block_length=30,
        branch_bias=0.95,
        hard_branch_fraction=0.04,
    )
    pricing = PhaseParams(
        load_fraction=0.33,
        store_fraction=0.08,
        branch_fraction=0.18,
        data_footprint=6 * MIB,
        hot_fraction=0.86,
        hot_set_bytes=24 * KIB,
        stride_fraction=0.30,
        dependent_miss_fraction=0.55,
        ilp=0.45,
        code_footprint=64 * KIB,
        code_hot_fraction=0.93,
        code_hot_bytes=12 * KIB,
        basic_block_length=14,
        branch_bias=0.88,
        hard_branch_fraction=0.13,
    )
    return WorkloadProfile(
        "soplex_like",
        PhaseSchedule([(factorize, 0.45), (pricing, 0.55)]),
        "LP solver: streaming factorization alternating with sparse pricing",
    )


def milc_like() -> WorkloadProfile:
    """433.milc: lattice QCD — strided sweeps over a huge lattice."""
    params = PhaseParams(
        load_fraction=0.36,
        store_fraction=0.18,
        branch_fraction=0.04,
        data_footprint=40 * MIB,
        hot_fraction=0.68,
        hot_set_bytes=16 * KIB,
        stride_fraction=0.92,
        dependent_miss_fraction=0.08,
        ilp=0.70,
        code_footprint=16 * KIB,
        code_hot_fraction=0.97,
        code_hot_bytes=8 * KIB,
        basic_block_length=44,
        branch_bias=0.99,
        hard_branch_fraction=0.005,
        wide_access_fraction=0.25,
    )
    return WorkloadProfile.single_phase(
        "milc_like", params, "Lattice sweep: bandwidth-bound, prefetch-friendly"
    )


def extended_suite() -> List[WorkloadProfile]:
    """The default suite plus the extra profiles above (16 workloads)."""
    return spec_like_suite() + [
        povray_like(),
        omnetpp_like(),
        xalanc_like(),
        soplex_like(),
        milc_like(),
    ]

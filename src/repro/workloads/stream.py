"""Instruction-stream synthesis: PhaseParams -> InstructionBlock.

All generation is vectorized numpy so block synthesis stays negligible
next to the simulator's sequential replay loop.  The generator controls
every Table I event channel:

* data addresses (hot set / cold footprint / streaming) drive the cache
  and DTLB models;
* program-counter runs over a code footprint drive L1I and ITLB;
* per-branch bias drives the direction predictor;
* aliasing loads against flagged stores drive the LOAD_BLOCK events;
* alignment offsets and wide accesses drive MISALIGN/L1D_SPLIT;
* LCP flags drive ILD_STALL.
"""

from __future__ import annotations

import numpy as np

from repro._util import RandomState, check_random_state
from repro.errors import ConfigError
from repro.simulator.isa import (
    CODE_REGION_BASE,
    InstructionBlock,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
)
from repro.workloads.phases import PhaseParams

#: Stride of streaming (sequential) cold accesses, in bytes.
_STREAM_STRIDE = 16


def synthesize_block(
    params: PhaseParams,
    n_instructions: int,
    rng: RandomState = None,
) -> InstructionBlock:
    """Generate one instruction block realizing ``params``."""
    if n_instructions < 1:
        raise ConfigError("n_instructions must be at least 1")
    generator = check_random_state(rng)
    n = int(n_instructions)

    kind = _draw_kinds(params, n, generator)
    is_load = kind == KIND_LOAD
    is_store = kind == KIND_STORE
    is_memory = is_load | is_store

    size = np.zeros(n, dtype=np.int64)
    n_memory = int(np.count_nonzero(is_memory))
    if n_memory:
        wide = generator.random(n_memory) < params.wide_access_fraction
        base_sizes = np.where(generator.random(n_memory) < 0.5, 4, 8)
        size[is_memory] = np.where(wide, 16, base_sizes)

    addr = np.zeros(n, dtype=np.int64)
    if n_memory:
        addr[is_memory] = _draw_addresses(params, n_memory, size[is_memory], generator)
    _apply_store_load_aliasing(params, kind, addr, size, generator)

    pc = _draw_pcs(params, n, generator)
    taken = np.zeros(n, dtype=bool)
    n_branches = int(np.count_nonzero(kind == KIND_BRANCH))
    if n_branches:
        hard = generator.random(n_branches) < params.hard_branch_fraction
        bias = np.where(hard, 0.5, params.branch_bias)
        taken[kind == KIND_BRANCH] = generator.random(n_branches) < bias

    lcp = generator.random(n) < params.lcp_fraction
    sta = np.zeros(n, dtype=bool)
    std = np.zeros(n, dtype=bool)
    n_stores = int(np.count_nonzero(is_store))
    if n_stores:
        sta[is_store] = generator.random(n_stores) < params.sta_fraction
        std[is_store] = generator.random(n_stores) < params.std_fraction

    return InstructionBlock(
        kind=kind,
        pc=pc,
        addr=addr,
        size=size,
        taken=taken,
        lcp=lcp,
        sta=sta,
        std=std,
        ilp=params.ilp,
        dependent_miss_fraction=params.dependent_miss_fraction,
    )


def _draw_kinds(params: PhaseParams, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample instruction kinds from the phase's mix."""
    other = 1.0 - params.load_fraction - params.store_fraction - params.branch_fraction
    probabilities = np.array(
        [params.load_fraction, params.store_fraction, params.branch_fraction, max(other, 0.0)]
    )
    probabilities /= probabilities.sum()
    return rng.choice(
        np.array([KIND_LOAD, KIND_STORE, KIND_BRANCH, KIND_OTHER], dtype=np.uint8),
        size=n,
        p=probabilities,
    ).astype(np.uint8)


def _draw_addresses(
    params: PhaseParams,
    n_memory: int,
    sizes: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Data addresses: hot-set hits, streaming runs, or cold jumps."""
    hot = rng.random(n_memory) < params.hot_fraction
    addresses = np.empty(n_memory, dtype=np.int64)

    n_hot = int(np.count_nonzero(hot))
    if n_hot:
        addresses[hot] = rng.integers(0, max(params.hot_set_bytes // 8, 1), n_hot) * 8

    cold = ~hot
    n_cold = int(np.count_nonzero(cold))
    if n_cold:
        streaming = rng.random(n_cold) < params.stride_fraction
        cold_addr = np.empty(n_cold, dtype=np.int64)
        n_stream = int(np.count_nonzero(streaming))
        if n_stream:
            # One sequential run through the footprint from a random start.
            start = int(rng.integers(0, max(params.data_footprint // 8, 1))) * 8
            offsets = np.arange(n_stream, dtype=np.int64) * _STREAM_STRIDE
            cold_addr[streaming] = (start + offsets) % params.data_footprint
        n_jump = n_cold - n_stream
        if n_jump:
            cold_addr[~streaming] = (
                rng.integers(0, max(params.data_footprint // 8, 1), n_jump) * 8
            )
        addresses[cold] = cold_addr

    # Natural alignment, then deliberate misalignment of a small fraction.
    safe_sizes = np.maximum(sizes, 1)
    addresses -= addresses % safe_sizes
    misaligned = rng.random(n_memory) < params.misalign_fraction
    n_mis = int(np.count_nonzero(misaligned))
    if n_mis:
        addresses[misaligned] += rng.integers(1, 4, n_mis)
    return addresses


def _apply_store_load_aliasing(
    params: PhaseParams,
    kind: np.ndarray,
    addr: np.ndarray,
    size: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Point a fraction of loads at recently stored addresses (in place).

    Aliasing loads normally copy a preceding store's address and size
    (forwarding, blocked only when the store is flagged late); a
    configurable slice instead overlaps the store partially, which the
    store buffer classifies as LOAD_BLOCK.OVERLAP_STORE.
    """
    store_positions = np.flatnonzero(kind == KIND_STORE)
    load_positions = np.flatnonzero(kind == KIND_LOAD)
    if store_positions.size == 0 or load_positions.size == 0:
        return
    chosen = load_positions[
        rng.random(load_positions.size) < params.store_load_alias_fraction
    ]
    if chosen.size == 0:
        return
    # Latest store strictly before each chosen load.
    predecessor = np.searchsorted(store_positions, chosen) - 1
    valid = predecessor >= 0
    chosen = chosen[valid]
    predecessor = predecessor[valid]
    if chosen.size == 0:
        return
    sources = store_positions[predecessor]
    addr[chosen] = addr[sources]
    size[chosen] = size[sources]
    overlap = rng.random(chosen.size) < params.overlap_alias_fraction
    if np.any(overlap):
        # Shift past the store's start and widen beyond its end so the
        # store cannot cover the load.
        targets = chosen[overlap]
        addr[targets] = addr[targets] + 2
        size[targets] = np.maximum(size[targets], 8)


def _draw_pcs(params: PhaseParams, n: int, rng: np.random.Generator) -> np.ndarray:
    """Program counters: sequential runs, mostly from the hot code region.

    Real programs spend most fetches in inner loops (the hot region at
    the base of the code footprint) and only occasionally jump to cold
    paths; without that reuse every run start would be an L1I miss.
    """
    run_length = max(int(params.basic_block_length), 1)
    n_runs = (n + run_length - 1) // run_length
    hot_slots = max(params.code_hot_bytes // 16, 1)
    cold_slots = max(params.code_footprint // 16, 1)
    hot_run = rng.random(n_runs) < params.code_hot_fraction
    starts = np.where(
        hot_run,
        rng.integers(0, hot_slots, n_runs),
        rng.integers(0, cold_slots, n_runs),
    ) * 16
    run_ids = np.arange(n) // run_length
    within = np.arange(n) - run_ids * run_length
    pcs = starts[run_ids] + within * 4
    return (pcs % params.code_footprint) + CODE_REGION_BASE

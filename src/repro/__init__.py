"""repro — model trees for computer architecture performance analysis.

A from-scratch reproduction of Ould-Ahmed-Vall et al., *Using Model Trees
for Computer Architecture Performance Analysis of Software Applications*
(ISPASS 2007).

The package bundles everything the paper depends on:

* :mod:`repro.counters` — the Table I hardware-event and metric catalogue.
* :mod:`repro.simulator` — a trace-driven Core 2 Duo-like processor model
  that stands in for the paper's physical PMU-instrumented machine.
* :mod:`repro.workloads` — synthetic SPEC CPU2006-like workload profiles.
* :mod:`repro.datasets` — section datasets, ARFF/CSV interchange, splits.
* :mod:`repro.core` — the M5' model-tree learner and the performance
  analysis layer ("what" / "how much" questions).
* :mod:`repro.baselines` — CART, OLS, k-NN, MLP, epsilon-SVR and the naive
  fixed-penalty model used for comparison.
* :mod:`repro.evaluation` — metrics and 10-fold cross validation.
* :mod:`repro.experiments` — one entry point per paper table/figure.
* :mod:`repro.lint` — static verification of trees, datasets, and
  model/data compatibility (``repro lint``).
"""

from repro.counters import PREDICTOR_METRICS, TARGET_METRIC
from repro.core.analysis import PerformanceAnalyzer
from repro.core.tree import M5Prime
from repro.datasets import Dataset
from repro.evaluation import EvaluationResult, cross_validate, evaluate_predictions
from repro.lint import Diagnostic, LintReport, run_lint
from repro.simulator import MachineConfig, SimulatedCore
from repro.workloads import WorkloadProfile, simulate_suite, spec_like_suite

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "Diagnostic",
    "EvaluationResult",
    "LintReport",
    "M5Prime",
    "MachineConfig",
    "PREDICTOR_METRICS",
    "PerformanceAnalyzer",
    "SimulatedCore",
    "TARGET_METRIC",
    "WorkloadProfile",
    "__version__",
    "cross_validate",
    "evaluate_predictions",
    "run_lint",
    "simulate_suite",
    "spec_like_suite",
]

"""Command-line interface.

Subcommands mirror the paper's workflow:

* ``repro collect``     — simulate the suite and write the section dataset
* ``repro train``       — fit an M5' tree (or, with ``--bagging``, a
  compiled-arena forest with optional ``--refine`` leaf re-weighting)
* ``repro analyze``     — classify sections and print what/how-much reports
* ``repro evaluate``    — cross-validate one learner on a dataset
* ``repro compare``     — the full method comparison table
* ``repro experiments`` — run registered paper-artifact experiments
* ``repro lint``        — statically verify models, datasets, compatibility
* ``repro verify``      — abstract interpretation over compiled tree arenas
* ``repro serve``       — batched HTTP model server over the registry
  (``--workers N`` runs a supervised multi-process fleet)
* ``repro loadtest``    — sustained-RPS load generator with an SLO gate
* ``repro workloads``   — list the synthetic suite
* ``repro bench``       — time the hot paths, write a BENCH_<date>.json
* ``repro cache``       — inspect or clear the on-disk artifact cache
* ``repro faults``      — describe the active fault-injection spec
* ``repro conformance`` — oracle differential + metamorphic conformance run
* ``repro fuzz``        — deterministic mutation fuzzing of the parsers
* ``repro fastsim``     — analytical+ML fast suite engine: ``calibrate``
  the residual model against the trace oracle, ``predict`` a section
  dataset without replaying traces, ``check`` drift (FAST00x gates)

Commands with repeated independent fits take ``--jobs N`` (``-1`` for
all cores); the ``REPRO_JOBS`` environment variable sets the default.
Results are bit-identical at any worker count.

The long-running commands (``collect``, ``evaluate``, ``compare``) are
fault-tolerant: failing units (workloads, folds) are retried with
backoff, ``--fail-policy`` decides what exhausted units mean, every
completed unit is checkpointed, and ``--resume`` reuses checkpoints
from an interrupted run — bit-identically (see ``docs/resilience.md``).

Example::

    repro collect --out sections.csv --sections 120 --jobs 4
    repro train --data sections.csv --min-instances 25
    repro evaluate --data sections.csv --learner m5p --jobs 4 --resume
    repro compare --data sections.csv --fail-policy min_success:0.8
    repro lint --model model.json --data sections.csv --strict
    repro experiments --id F2 --preset quick
    repro bench --preset quick --jobs 4
    repro train --data sections.csv --publish cpi-tree
    repro serve --model cpi-tree@latest --port 8377
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError


def _add_jobs_argument(command_parser: argparse.ArgumentParser) -> None:
    command_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel workers (-1 = all cores; default: $REPRO_JOBS or 1). "
        "Results are bit-identical at any worker count.",
    )


def _add_resilience_arguments(command_parser: argparse.ArgumentParser) -> None:
    command_parser.add_argument(
        "--resume", action="store_true",
        help="reuse per-unit checkpoints from an interrupted run "
        "(results are bit-identical to an uninterrupted run)",
    )
    command_parser.add_argument(
        "--fail-policy", default="fail_fast", metavar="POLICY",
        help="what exhausted retries mean: fail_fast (abort, default), "
        "collect_errors (record and continue), or min_success:FRACTION "
        "(continue unless fewer than FRACTION of units succeed)",
    )
    command_parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock budget; a unit past it counts as failed "
        "(and is retried)",
    )
    command_parser.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per unit before it counts as failed (default 3)",
    )


def _build_policy(args: argparse.Namespace, run_key: str):
    """The :class:`~repro.resilience.RunPolicy` the flags describe."""
    from repro.resilience import (
        CheckpointStore,
        FailPolicy,
        RetryPolicy,
        RunPolicy,
    )

    return RunPolicy(
        retry=RetryPolicy(max_attempts=args.retries),
        fail_policy=FailPolicy.parse(args.fail_policy),
        task_timeout=args.task_timeout,
        checkpoint=CheckpointStore(),
        run_key=run_key,
        resume=args.resume,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Model trees for computer architecture performance "
        "analysis (ISPASS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="simulate the suite, write a dataset")
    collect.add_argument("--out", required=True, help="output CSV path")
    collect.add_argument("--sections", type=int, default=120,
                         help="sections per workload (default 120)")
    collect.add_argument("--instructions", type=int, default=2048,
                         help="instructions per section (default 2048)")
    collect.add_argument("--seed", type=int, default=2007)
    collect.add_argument("--arff", action="store_true",
                         help="also write a WEKA .arff next to the CSV")
    _add_jobs_argument(collect)
    _add_resilience_arguments(collect)

    train = sub.add_parser(
        "train",
        help="fit an M5' tree (or a bagged forest) and print it",
    )
    train.add_argument("--data", required=True, help="dataset CSV path")
    train.add_argument("--min-instances", type=int, default=25)
    train.add_argument("--no-prune", action="store_true")
    train.add_argument("--smoothing", action="store_true")
    train.add_argument("--bagging", action="store_true",
                       help="fit a BaggedM5 forest instead of a single "
                       "tree (served through the compiled arena)")
    train.add_argument("--trees", type=int, default=10, metavar="N",
                       help="forest size with --bagging (default 10)")
    train.add_argument("--refine", action="store_true",
                       help="with --bagging: run the global leaf "
                       "re-weighting + prune-and-refit pass")
    train.add_argument("--prune-pct", type=float, default=0.1,
                       metavar="FRACTION",
                       help="with --refine: leaf fraction pruned per "
                       "round (default 0.1)")
    train.add_argument("--n-prunings", type=int, default=2, metavar="N",
                       help="with --refine: prune-and-refit rounds "
                       "(default 2)")
    train.add_argument("--seed", type=int, default=0,
                       help="bootstrap seed with --bagging (default 0)")
    train.add_argument("--save", help="write the fitted model to this JSON path")
    train.add_argument("--rules", action="store_true",
                       help="print the tree as an ordered rule list")
    train.add_argument("--dot", help="write GraphViz DOT source to this path")
    train.add_argument("--publish", metavar="NAME",
                       help="publish the fitted model to the registry under "
                       "this name (serve it with `repro serve --model NAME`)")
    train.add_argument("--registry", metavar="DIR", default=None,
                       help="registry directory for --publish "
                       "(default: <cache>/registry)")
    _add_jobs_argument(train)

    analyze = sub.add_parser("analyze", help="what/how-much report for sections")
    analyze.add_argument("--data", required=True, help="dataset CSV to analyze")
    analyze.add_argument("--train", help="training CSV (default: same as --data)")
    analyze.add_argument("--model", help="load a saved model JSON instead of training")
    analyze.add_argument("--min-instances", type=int, default=25)
    analyze.add_argument("--section", type=int,
                         help="analyze a single section index in detail")
    analyze.add_argument("--top", type=int, default=3,
                         help="events listed per class in the summary")

    evaluate = sub.add_parser("evaluate", help="cross-validate one learner")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--learner", default="m5p",
                          choices=["m5p", "cart", "ols", "knn", "mlp", "svr", "naive"])
    evaluate.add_argument("--folds", type=int, default=10)
    evaluate.add_argument("--min-instances", type=int, default=25)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--residuals", action="store_true",
                          help="break residuals down by workload and class")
    evaluate.add_argument("--format", default="text", choices=["text", "json"],
                          help="output format (json shares the repro-report "
                          "envelope with `repro lint`)")
    _add_jobs_argument(evaluate)
    _add_resilience_arguments(evaluate)

    lint = sub.add_parser(
        "lint",
        help="statically verify a saved model and/or a dataset",
        description="Run the tree, dataset, and compatibility rule "
        "families over a saved model and/or a section dataset. "
        "Exit codes: 0 clean, 1 warnings with --strict, 2 errors.",
    )
    lint.add_argument("--model", help="saved model JSON to verify")
    lint.add_argument("--data", help="dataset CSV to verify")
    lint.add_argument("--cache-dir", help="artifact cache directory to verify")
    lint.add_argument("--registry", metavar="DIR", nargs="?", const="",
                      default=None,
                      help="model registry directory to verify (no value: "
                      "the default registry); with --data, also checks "
                      "entries' feature sets against the dataset")
    lint.add_argument("--fleet-config", metavar="PATH", default=None,
                      help="fleet configuration JSON to audit (the FLEET "
                      "rule family)")
    lint.add_argument("--calibration", metavar="PATH", default=None,
                      help="fastsim calibration artifact JSON to audit "
                      "(the FASTSIM rule family)")
    lint.add_argument("--format", default="text", choices=["text", "json"])
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 when warnings are the worst finding")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    verify = sub.add_parser(
        "verify",
        help="static verification of compiled tree arenas",
        description="Abstract interpretation over the compiled tree "
        "arena: structural well-formedness, dead branches, domain "
        "coverage, and certified per-leaf output bounds.  Targets: a "
        "saved model JSON, registry entries (stored certificates must "
        "match recomputation), and/or the conformance corpus (certified "
        "bounds cross-checked against empirical predictions).  "
        "Exit codes: 0 clean, 1 warnings with --strict, 2 errors.",
    )
    verify.add_argument("--model", help="saved model JSON to verify")
    verify.add_argument("--registry", metavar="DIR", nargs="?", const="",
                        default=None,
                        help="verify every model in this registry "
                        "directory (no value: the default registry)")
    verify.add_argument("--corpus", metavar="TIER", default=None,
                        choices=["quick", "deep"],
                        help="fit, verify, and empirically bound-check "
                        "every model of this conformance corpus tier")
    verify.add_argument("--seed", type=int, default=2007,
                        help="corpus master seed (default 2007)")
    verify.add_argument("--rows", type=int, default=10000,
                        help="rows per empirical bound-check batch "
                        "(default 10000)")
    verify.add_argument("--max-cases", type=int, default=None, metavar="N",
                        help="truncate the corpus (debugging convenience)")
    verify.add_argument("--format", default="text", choices=["text", "json"])
    verify.add_argument("--strict", action="store_true",
                        help="exit 1 when warnings are the worst finding")

    compare = sub.add_parser("compare", help="method comparison table")
    compare.add_argument("--data", required=True)
    compare.add_argument("--folds", type=int, default=10)
    compare.add_argument("--min-instances", type=int, default=25)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--format", default="text", choices=["text", "json"],
                         help="output format (json lists failed units in a "
                         "repro-report envelope)")
    _add_jobs_argument(compare)
    _add_resilience_arguments(compare)

    bench = sub.add_parser(
        "bench",
        help="time the hot paths, write a BENCH_<date>.json",
        description="Run the fixed micro-benchmark set (fit, predict, "
        "cross validation, suite simulation) and emit a stable-schema "
        "JSON document for regression tracking.",
    )
    bench.add_argument("--preset", default="quick",
                       choices=["tiny", "quick", "paper"])
    bench.add_argument("--rounds", type=int, default=3,
                       help="timing rounds per benchmark (default 3)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default BENCH_<date>.json)")
    _add_jobs_argument(bench)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the on-disk artifact cache",
        description="The artifact cache stores simulated section "
        "datasets and fitted-model JSON, content-addressed by "
        "configuration and code fingerprints.  Location: "
        "$REPRO_CACHE_DIR or ~/.cache/repro.",
    )
    cache.add_argument("action", choices=["info", "clear"],
                       help="info: list entries; clear: delete them all")

    faults = sub.add_parser(
        "faults",
        help="describe the active fault-injection spec",
        description="Fault injection makes deliberately-broken runs "
        "reproducible: $REPRO_FAULTS names sites and failure rates "
        "(e.g. 'sim:0.2,cache_read:0.1,seed=7') and every decision is "
        "a pure function of the spec's seed.",
    )
    faults.add_argument("--spec", default=None,
                        help="describe this spec instead of $REPRO_FAULTS")

    experiments = sub.add_parser("experiments", help="run paper-artifact experiments")
    experiments.add_argument("--id", action="append", dest="ids",
                             help="experiment id (repeatable); default: all")
    experiments.add_argument("--preset", default="quick",
                             choices=["tiny", "quick", "paper"])
    experiments.add_argument("--list", action="store_true",
                             help="list experiment ids and exit")

    describe = sub.add_parser("describe", help="profile a dataset's distributions")
    describe.add_argument("--data", required=True, help="dataset CSV path")

    report = sub.add_parser(
        "report", help="run all experiments, write a markdown report"
    )
    report.add_argument("--out", required=True, help="output markdown path")
    report.add_argument("--preset", default="quick",
                        choices=["tiny", "quick", "paper"])

    serve = sub.add_parser(
        "serve",
        help="serve registry models over batched JSON HTTP",
        description="Answer /predict, /explain, /models, /healthz and "
        "/metrics from published registry models, coalescing concurrent "
        "requests into compiled-tree batches.  Publish with "
        "`repro train --publish NAME` first.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8377,
                       help="bind port (default 8377; 0 picks a free port)")
    serve.add_argument("--model", metavar="SPEC", default=None,
                       help="model spec to load at startup and use when "
                       "requests name none (e.g. cpi-tree@latest)")
    serve.add_argument("--registry", metavar="DIR", default=None,
                       help="registry directory (default: <cache>/registry)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="rows per coalesced predictor batch (default 256)")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       metavar="SECONDS",
                       help="how long a batch holds for stragglers "
                       "(default 0.002)")
    serve.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock budget; past it the "
                       "request fails with 503 (default: none)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes; above 1 runs the "
                       "supervised fleet (router + health-checked "
                       "workers; default 1 = single in-process server)")
    serve.add_argument("--mode", default=None,
                       choices=["router", "reuseport"],
                       help="fleet topology: router (front proxy with "
                       "crash retry, the default) or reuseport (kernel-"
                       "balanced SO_REUSEPORT sharing)")
    serve.add_argument("--fleet-config", metavar="PATH", default=None,
                       help="fleet configuration JSON; its values "
                       "override the command-line fleet settings "
                       "(audit it with `repro lint --fleet-config`)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="how long SIGTERM lets in-flight requests "
                       "finish before exiting (default 5)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="shed requests beyond this many in flight "
                       "with 503 + Retry-After (default: fleet 64, "
                       "single server unlimited)")
    serve.add_argument("--check", action="store_true",
                       help="run the startup preflight (registry, "
                       "integrity, compiled-vs-interpreted parity) and "
                       "exit instead of serving")
    _add_jobs_argument(serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="sustained-RPS load generator with an SLO gate",
        description="Drive /predict at a fixed open-loop rate against "
        "a running server or fleet, tally successes, shed 503s, "
        "failures, and connection resets, and report latency "
        "percentiles in the repro-report envelope.  "
        "Exit codes: 0 SLO met, 2 missed.",
    )
    loadtest.add_argument("--host", default="127.0.0.1",
                          help="target address (default 127.0.0.1)")
    loadtest.add_argument("--port", type=int, default=8377,
                          help="target port (default 8377)")
    loadtest.add_argument("--data", required=True,
                          help="dataset CSV whose rows become request "
                          "payloads (seeded selection)")
    loadtest.add_argument("--model", metavar="SPEC", default=None,
                          help="model spec to name in each payload")
    loadtest.add_argument("--rps", type=float, default=200.0,
                          help="open-loop request rate (default 200)")
    loadtest.add_argument("--duration", type=float, default=10.0,
                          metavar="SECONDS",
                          help="run length (default 10)")
    loadtest.add_argument("--concurrency", type=int, default=16,
                          help="client threads (default 16)")
    loadtest.add_argument("--timeout", type=float, default=5.0,
                          metavar="SECONDS",
                          help="per-request client timeout; overruns "
                          "count as resets (default 5)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="row-selection seed (default 0)")
    loadtest.add_argument("--slo", type=float, default=0.99,
                          help="minimum success rate the gate demands "
                          "(default 0.99)")
    loadtest.add_argument("--out", metavar="PATH", default=None,
                          help="also write the JSON report here")
    loadtest.add_argument("--format", default="text",
                          choices=["text", "json"])

    conformance = sub.add_parser(
        "conformance",
        help="differential + metamorphic conformance run",
        description="Fit a deliberately naive reference M5' and the "
        "production implementation on a seeded corpus, assert "
        "bit-identical trees/predictions/leaf ids across every "
        "execution path (compiled, interpreted, JSON round trip, "
        "parallel CV), then check the metamorphic relations.  "
        "Exit codes: 0 fully conformant, 2 on any divergence.",
    )
    conformance.add_argument("--tier", default="quick",
                             choices=["quick", "deep"],
                             help="corpus size (quick: PR budget, "
                             "deep: dispatch budget)")
    conformance.add_argument("--seed", type=int, default=2007,
                             help="master seed (every case derives "
                             "from it; default 2007)")
    conformance.add_argument("--max-cases", type=int, default=None,
                             metavar="N",
                             help="truncate the differential corpus "
                             "(debugging convenience)")
    conformance.add_argument("--skip-metamorphic", action="store_true",
                             help="run only the differential corpus")
    conformance.add_argument("--skip-certified", action="store_true",
                             help="skip the certified-bounds cross-check "
                             "(static verification + empirical interval "
                             "containment on every corpus model)")
    conformance.add_argument("--format", default="text",
                             choices=["text", "json"],
                             help="output format (json shares the "
                             "repro-report envelope with `repro lint`)")

    fuzz = sub.add_parser(
        "fuzz",
        help="deterministic mutation fuzzing of the parsers",
        description="Mutate valid ARFF/CSV/model-JSON documents with "
        "seeded edits and hold the loaders to their contract: bad "
        "input raises ParseError, never anything else.  Crashing "
        "inputs are quarantined under the artifact cache.  "
        "Exit codes: 0 no crashes, 2 otherwise.",
    )
    fuzz.add_argument("--target", action="append", dest="targets",
                      choices=["arff", "csv", "model"],
                      help="loader to fuzz (repeatable; default: all)")
    fuzz.add_argument("--iterations", type=int, default=None, metavar="N",
                      help="per-target iteration budget (default 200 "
                      "when no --seconds)")
    fuzz.add_argument("--seconds", type=float, default=None,
                      help="wall-clock budget across all targets")
    fuzz.add_argument("--seed", type=int, default=2007,
                      help="master seed; fully determines every "
                      "mutated document (default 2007)")
    fuzz.add_argument("--format", default="text", choices=["text", "json"])

    sub.add_parser("workloads", help="list the synthetic SPEC-like suite")

    fastsim = sub.add_parser(
        "fastsim",
        help="analytical+ML fast suite engine (calibrate/predict/check)",
        description="The fast engine predicts per-section Table I rates "
        "and CPI from closed-form cache/branch/pipeline models plus a "
        "trace-calibrated residual correction — orders of magnitude "
        "faster than replaying traces.  Calibrate once against the "
        "trace oracle, then predict datasets or gate drift in CI.",
    )
    fastsub = fastsim.add_subparsers(dest="fastsim_command", required=True)

    fcal = fastsub.add_parser(
        "calibrate",
        help="fit the calibration against the trace oracle",
        description="Measure per-phase anchors and fit the M5' residual "
        "tree against the noise-free trace simulator, then store the "
        "artifact content-addressed in the artifact cache.",
    )
    fcal.add_argument("--seed", type=int, default=2007,
                      help="calibration sweep master seed (default 2007)")
    fcal.add_argument("--out", metavar="PATH", default=None,
                      help="also write the artifact JSON to this path "
                      "(audit it with `repro lint --calibration`)")
    fcal.add_argument("--publish", metavar="NAME", nargs="?", const="",
                      default=None,
                      help="publish the residual model to the registry "
                      "under this name (default: fastsim-residual)")
    fcal.add_argument("--registry", metavar="DIR", default=None,
                      help="registry directory for --publish "
                      "(default: <cache>/registry)")
    fcal.add_argument("--no-cache", action="store_true",
                      help="refit even if a cached artifact exists, and "
                      "do not store the result")
    fcal.add_argument("--format", default="text", choices=["text", "json"],
                      help="output format (json shares the repro-report "
                      "envelope with `repro lint`)")

    fpred = fastsub.add_parser(
        "predict",
        help="predict a section dataset without replaying traces",
        description="Run the fast engine over the suite and write the "
        "predicted section dataset; the calibration is loaded from the "
        "artifact cache (fitting it on a miss).",
    )
    fpred.add_argument("--out", required=True, help="output CSV path")
    fpred.add_argument("--sections", type=int, default=120,
                       help="sections per workload (default 120)")
    fpred.add_argument("--instructions", type=int, default=2048,
                       help="instructions per section (default 2048)")
    fpred.add_argument("--seed", type=int, default=2007)
    fpred.add_argument("--jitter", type=float, default=0.08,
                       help="per-section parameter jitter (default 0.08)")
    fpred.add_argument("--arff", action="store_true",
                       help="also write a WEKA .arff next to the CSV")

    fchk = fastsub.add_parser(
        "check",
        help="FAST00x drift gates against the trace oracle",
        description="Run the fastsim conformance harness: calibration "
        "freshness, determinism, Table I invariants, and per-section / "
        "per-workload CPI drift against noise-averaged trace oracle "
        "runs on the seeded phase corpus.  "
        "Exit codes: 0 within tolerance, 2 on any divergence.",
    )
    fchk.add_argument("--tier", default="quick", choices=["quick", "deep"],
                      help="oracle replication budget (deep doubles it)")
    fchk.add_argument("--seed", type=int, default=2007,
                      help="master seed (default 2007)")
    fchk.add_argument("--format", default="text", choices=["text", "json"])
    return parser


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.datasets.arff import save_arff
    from repro.datasets.csvio import save_csv
    from repro.experiments.data import collect_run_key
    from repro.workloads import simulate_suite

    policy = _build_policy(args, collect_run_key(
        args.sections, args.instructions, args.seed
    ))
    result = simulate_suite(
        sections_per_workload=args.sections,
        instructions_per_section=args.instructions,
        seed=args.seed,
        n_jobs=args.jobs,
        policy=policy,
    )
    save_csv(result.dataset, args.out)
    print(result.summary())
    print(f"wrote {result.dataset.n_instances} sections to {args.out}")
    if args.arff:
        arff_path = args.out.rsplit(".", 1)[0] + ".arff"
        save_arff(result.dataset, arff_path)
        print(f"wrote WEKA dataset to {arff_path}")
    if result.failures:
        print(f"{len(result.failures)} workload(s) failed; the dataset "
              "is partial (rerun with --resume to fill it in)",
              file=sys.stderr)
        return 1
    return 0


def _load(path: str):
    from repro.datasets.csvio import load_csv

    return load_csv(path)


def _set_default_jobs(n_jobs) -> None:
    """Make ``--jobs`` the process-wide default via ``REPRO_JOBS``.

    Commands whose parallelism lives below the direct call (ensemble
    members, future nested fits) pick the value up through
    :func:`repro.parallel.resolve_jobs`.
    """
    import os

    from repro.parallel import JOBS_ENV, resolve_jobs

    if n_jobs is not None:
        os.environ[JOBS_ENV] = str(resolve_jobs(n_jobs))


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.analysis import render_rules
    from repro.core.tree import M5Prime, save_model

    _set_default_jobs(args.jobs)
    dataset = _load(args.data)
    if args.bagging:
        return _train_forest(args, dataset)
    if args.refine:
        raise ReproError("--refine requires --bagging")
    model = M5Prime(
        min_instances=args.min_instances,
        prune=not args.no_prune,
        smoothing=args.smoothing,
    )
    model.fit(dataset)
    if args.rules:
        print(render_rules(model))
    else:
        print(model.to_text())
    print()
    print(f"{model.n_leaves} leaves, depth {model.depth}, "
          f"{dataset.n_instances} training sections")
    if args.save:
        save_model(model, args.save)
        print(f"saved model to {args.save}")
    if args.publish:
        from repro.serve import ModelRegistry

        registry = ModelRegistry(Path(args.registry) if args.registry else None)
        record = registry.publish(args.publish, model)
        print(f"published {record.spec} to {registry.directory}")
    if args.dot:
        from repro.core.tree import render_dot

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(render_dot(model))
        print(f"wrote GraphViz source to {args.dot}")
    return 0


def _train_forest(args: argparse.Namespace, dataset) -> int:
    """The ``repro train --bagging`` path: fit, refine, save, publish."""
    from repro.baselines.bagging import BaggedM5

    for flag, name in ((args.rules, "--rules"), (args.dot, "--dot"),
                       (args.smoothing, "--smoothing"),
                       (args.no_prune, "--no-prune")):
        if flag:
            raise ReproError(f"{name} is a single-tree option; it does "
                             "not combine with --bagging")
    if args.trees < 1:
        raise ReproError("--trees must be at least 1")
    forest = BaggedM5(
        n_estimators=args.trees,
        min_instances=args.min_instances,
        seed=args.seed,
        n_jobs=args.jobs,
    ).fit(dataset)
    compiled = forest.compiled_
    print(f"bagged forest: {compiled.n_trees} trees, "
          f"{compiled.n_nodes} arena nodes, "
          f"{compiled.total_leaves} leaves "
          f"(mean {forest.mean_leaves_:.1f}/tree), "
          f"{dataset.n_instances} training sections")
    if args.refine:
        from repro.serve.refine import RefinedForest

        refinement = RefinedForest(
            forest, prune_pct=args.prune_pct, n_prunings=args.n_prunings
        ).fit(dataset)
        refined = refinement.refined_
        print(f"refined: {refined.n_active}/{compiled.total_leaves} "
              f"active leaves after {refined.n_prunings} pruning "
              f"round(s), training MAE {refined.train_mae:.5f}")
    if args.save:
        from repro.serve.forest_io import save_forest

        save_forest(forest, args.save)
        print(f"saved forest to {args.save}")
    if args.publish:
        from repro.serve import ModelRegistry

        registry = ModelRegistry(Path(args.registry) if args.registry else None)
        record = registry.publish(args.publish, forest)
        print(f"published {record.spec} to {registry.directory}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.analysis import PerformanceAnalyzer
    from repro.core.tree import M5Prime, load_model

    dataset = _load(args.data)
    if args.model:
        model = load_model(args.model)
    else:
        training = _load(args.train) if args.train else dataset
        model = M5Prime(min_instances=args.min_instances).fit(training)
    analyzer = PerformanceAnalyzer(model)
    if args.section is not None:
        if not 0 <= args.section < dataset.n_instances:
            raise ReproError(
                f"section {args.section} out of range "
                f"(dataset has {dataset.n_instances})"
            )
        print(analyzer.analyze_section(dataset.X[args.section]).render())
    else:
        print(analyzer.summarize_dataset(dataset, top=args.top))
    return 0


def _make_learner(name: str, min_instances: int, seed: int):
    import functools

    from repro.baselines import (
        EpsilonSVR,
        KNNRegressor,
        LinearRegressionBaseline,
        MLPRegressor,
        NaiveFixedPenaltyModel,
        RegressionTree,
    )
    from repro.core.tree import M5Prime

    # functools.partial (not lambda) keeps every factory picklable, so
    # cross-validation folds can run in a process pool.
    factories = {
        "m5p": functools.partial(M5Prime, min_instances=min_instances),
        "cart": functools.partial(RegressionTree, min_instances=min_instances),
        "ols": LinearRegressionBaseline,
        "knn": functools.partial(KNNRegressor, k=5),
        "mlp": functools.partial(MLPRegressor, seed=seed),
        "svr": functools.partial(EpsilonSVR, seed=seed),
        "naive": NaiveFixedPenaltyModel,
    }
    return factories[name]


def _evaluation_run_key(prefix: str, dataset, args: argparse.Namespace) -> str:
    """Checkpoint namespace for one CV identity over one dataset.

    Content-fingerprinted (not path-based): the same data under a new
    filename still resumes, and edited data never reuses stale folds.
    """
    from repro._util import stable_hash
    from repro.resilience import dataset_fingerprint

    return prefix + "-" + stable_hash([
        dataset_fingerprint(dataset),
        getattr(args, "learner", "all"),
        args.folds,
        args.seed,
        args.min_instances,
    ])


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluation import cross_validate, residual_report

    dataset = _load(args.data)
    factory = _make_learner(args.learner, args.min_instances, args.seed)
    policy = _build_policy(args, _evaluation_run_key("evaluate", dataset, args))
    result = cross_validate(
        factory, dataset, n_folds=args.folds, rng=args.seed,
        n_jobs=args.jobs, policy=policy,
    )
    if args.format == "json":
        from repro.lint import json_document

        print(json_document("evaluate", {
            "learner": args.learner,
            "data": args.data,
            "folds": result.n_folds,
            "seed": args.seed,
            "mean": result.mean.to_dict(),
            "pooled": result.pooled.to_dict(),
            "per_fold": [fold.to_dict() for fold in result.folds],
            "failed_units": [failure.to_dict() for failure in result.failures],
        }))
        return 0
    print(result.describe())
    if args.residuals:
        model = factory()
        model.fit(dataset)
        tree = model if hasattr(model, "leaf_ids") else None
        print()
        print(residual_report(dataset, result.predictions, model=tree).render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        all_rules,
        load_table,
        render_json,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for lint_rule in all_rules():
            print(f"{lint_rule.rule_id:<10} {lint_rule.family:<8} "
                  f"{lint_rule.severity.value:<8} {lint_rule.summary}")
        return 0
    if (not args.model and not args.data and not args.cache_dir
            and args.registry is None and not args.fleet_config
            and not args.calibration):
        raise ReproError(
            "lint needs --model, --data, --cache-dir, --registry, "
            "--fleet-config, and/or --calibration (or --list-rules)"
        )
    model = None
    if args.model:
        from repro.core.tree import load_model

        model = load_model(args.model)
    # load_table, not _load: lint must *report* NaN/Inf cells, not crash
    # on the validating Dataset constructor.
    dataset = load_table(args.data) if args.data else None
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    registry_dir = None
    if args.registry is not None:
        if args.registry:
            registry_dir = Path(args.registry)
        else:
            from repro.serve import ModelRegistry

            registry_dir = ModelRegistry().directory
    fleet_config = Path(args.fleet_config) if args.fleet_config else None
    calibration = Path(args.calibration) if args.calibration else None
    report = run_lint(
        model=model, dataset=dataset, cache_dir=cache_dir,
        registry_dir=registry_dir, fleet_config=fleet_config,
        calibration=calibration,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(strict=args.strict)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.lint import json_document
    from repro.verify import verify_forest, verify_model

    def _verify_any(model):
        """Dispatch on artifact kind: forests get the FOREST00x pass."""
        if hasattr(model, "estimators_"):
            return verify_forest(model)
        return verify_model(model)

    if not args.model and args.registry is None and args.corpus is None:
        raise ReproError("verify needs --model, --registry, and/or --corpus")
    targets = []
    failures = []
    if args.model:
        from repro.serve.forest_io import load_any_model

        targets.append((args.model, _verify_any(load_any_model(args.model))))
    if args.registry is not None:
        from repro.serve import ModelRegistry

        registry = ModelRegistry(Path(args.registry) if args.registry else None)
        names = sorted(registry.names())
        if not names:
            failures.append((str(registry.directory), "registry is empty"))
        for name in names:
            spec = f"{name}@latest"
            try:
                model, record = registry.resolve(spec)
            except ReproError as exc:
                failures.append((spec, str(exc)))
                continue
            result = _verify_any(model)
            try:
                stored = registry.load_certificate(record)
            except ReproError as exc:
                failures.append((record.spec, str(exc)))
            else:
                if stored is not None and stored != result.certificate:
                    failures.append((
                        record.spec,
                        "stored certificate disagrees with the recomputed "
                        "one; the blob or certificate changed after "
                        "publish — republish the model",
                    ))
            targets.append((record.spec, result))
    corpus_report = None
    if args.corpus is not None:
        from repro.conformance import run_certified

        corpus_report = run_certified(
            seed=args.seed, tier=args.corpus, rows=args.rows,
            max_cases=args.max_cases,
        )
    any_errors = (
        bool(failures)
        or any(not result.ok for _, result in targets)
        or (corpus_report is not None and corpus_report.exit_code() != 0)
    )
    any_warnings = any(
        result.report.n_warnings > 0 for _, result in targets
    )
    if args.format == "json":
        payload = {
            "targets": [
                {
                    "target": label,
                    "ok": result.ok,
                    "diagnostics": [
                        d.to_dict() for d in result.diagnostics
                    ],
                    "certificate": (
                        result.certificate.to_dict()
                        if result.certificate is not None else None
                    ),
                }
                for label, result in targets
            ],
            "failures": [
                {"target": label, "message": message}
                for label, message in failures
            ],
        }
        if corpus_report is not None:
            payload["corpus"] = corpus_report.to_dict()
        print(json_document("verify", payload))
    else:
        for label, result in targets:
            print(f"{label}:")
            for diagnostic in result.diagnostics:
                print(f"  {diagnostic.render()}")
            print(f"  {result.summary()}")
        for label, message in failures:
            print(f"{label}: FAIL {message}")
        if corpus_report is not None:
            print(corpus_report.render_text())
    if any_errors:
        return 2
    if args.strict and any_warnings:
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.evaluation import compare_estimators

    dataset = _load(args.data)
    names = ["m5p", "cart", "ols", "knn", "mlp", "svr", "naive"]
    factories = {
        name: _make_learner(name, args.min_instances, args.seed) for name in names
    }
    policy = _build_policy(args, _evaluation_run_key("compare", dataset, args))
    result = compare_estimators(
        factories, dataset, n_folds=args.folds, seed=args.seed,
        n_jobs=args.jobs, policy=policy,
    )
    if args.format == "json":
        from repro.lint import json_document

        print(json_document("compare", result.to_payload()))
        return 0
    print(result.to_table())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, ExperimentConfig, run_experiment

    if args.list:
        for eid in EXPERIMENTS:
            print(eid)
        return 0
    config = ExperimentConfig.by_name(args.preset)
    ids = [i.upper() for i in args.ids] if args.ids else list(EXPERIMENTS)
    failures = 0
    for eid in ids:
        report = run_experiment(eid, config)
        print(report.render())
        print()
        if not report.all_checks_pass:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing shape checks", file=sys.stderr)
    return 1 if failures else 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.datasets import profile_dataset

    dataset = _load(args.data)
    print(profile_dataset(dataset).render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, ExperimentConfig, run_experiment

    config = ExperimentConfig.by_name(args.preset)
    lines = [
        "# Reproduction report",
        "",
        f"preset: `{config.name}` — {config.sections_per_workload} sections "
        f"per workload, {config.instructions_per_section} instructions per "
        f"section, min_instances {config.min_instances}, "
        f"{config.n_folds}-fold CV, seed {config.seed}",
        "",
    ]
    failures = 0
    for eid in EXPERIMENTS:
        print(f"running {eid}...", flush=True)
        result = run_experiment(eid, config)
        status = "PASS" if result.all_checks_pass else "**FAIL**"
        lines.append(f"## {eid}: {result.title} — {status}")
        lines.append("")
        lines.append(f"*Paper:* {result.paper_claim}")
        lines.append("")
        for key, value in result.measured.items():
            lines.append(f"* {key}: {value}")
        lines.append("")
        for key, passed in result.checks.items():
            lines.append(f"* [{'x' if passed else ' '}] {key}")
        lines.append("")
        if result.body:
            lines.append("```")
            lines.append(result.body)
            lines.append("```")
            lines.append("")
        if not result.all_checks_pass:
            failures += 1
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {args.out} ({len(EXPERIMENTS)} experiments, "
          f"{failures} with failing checks)")
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        default_output_path,
        render_document,
        run_bench,
        write_document,
    )

    document = run_bench(
        preset=args.preset, n_jobs=args.jobs, rounds=args.rounds
    )
    print(render_document(document))
    out = args.out or default_output_path()
    write_document(document, out)
    print(f"wrote {out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.data import artifact_cache
    from repro.resilience import CheckpointStore

    cache = artifact_cache()
    store = CheckpointStore()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifact(s) from {cache.directory}")
        cleared = store.clear()
        print(f"removed {cleared} checkpoint(s) from {store.directory}")
        return 0
    print(cache.info().render())
    runs = store.runs()
    if runs:
        print(f"checkpoint runs in {store.directory}:")
        for run_key, n_units in runs.items():
            print(f"  {run_key}  ({n_units} unit(s))")
    else:
        print(f"no checkpoint runs in {store.directory}")
    from repro.serve import ModelRegistry

    registry = ModelRegistry()
    if registry.manifest_path.exists():
        print(registry.render())
    else:
        print(f"no model registry at {registry.directory}")
    return 0


class _DrainRequested(Exception):
    """Raised from the SIGTERM handler to unwind ``serve_forever``."""


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        ModelRegistry,
        ModelServer,
        preflight,
        render_preflight,
    )

    _set_default_jobs(args.jobs)
    registry = ModelRegistry(Path(args.registry) if args.registry else None)
    if args.check:
        results = preflight(registry, model_spec=args.model)
        print(render_preflight(results))
        return 0 if all(r.ok for r in results) else 2
    if args.workers > 1 or args.fleet_config is not None:
        return _serve_fleet(args)
    server = ModelServer(
        registry=registry,
        default_model=args.model,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait,
        task_timeout=args.task_timeout,
        max_inflight=args.max_inflight,
    )
    server.start()
    # SIGTERM (systemd, docker stop, CI cleanup) means drain: stop
    # accepting, let in-flight requests finish within --drain-timeout,
    # exit 0.  Ctrl-C (SIGINT) stays the abrupt path with exit 130.
    import signal

    def _terminate(signum: int, frame: object) -> None:
        raise _DrainRequested

    signal.signal(signal.SIGTERM, _terminate)
    if args.model is not None:
        # Fail at startup, not on the first request.
        served = server.get_model(args.model)
        print(f"serving {served.label} ({served.model.n_leaves} leaves)")
    print(f"listening on http://{args.host}:{server.bound_port} "
          "(endpoints: /predict /explain /models /healthz /metrics; "
          "SIGTERM drains, Ctrl-C stops)", flush=True)
    try:
        server.serve_forever()
    except _DrainRequested:
        drained = server.shutdown(drain_timeout=args.drain_timeout)
        print(
            "drained and stopped" if drained
            else f"drain timeout ({args.drain_timeout:g}s) expired; stopped",
            file=sys.stderr,
        )
        return 0
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        server.shutdown(drain_timeout=0.0)
        return 130
    server.shutdown()
    return 0


def _serve_fleet(args: argparse.Namespace) -> int:
    import json as _json
    import signal

    from repro.serve import FleetConfig, ServingFleet

    base = {
        "model": args.model,
        "workers": max(1, args.workers),
        "host": args.host,
        "port": args.port,
        "mode": args.mode or "router",
        "registry_dir": args.registry,
        "max_batch": args.max_batch,
        "max_wait_s": args.max_wait,
        "task_timeout": args.task_timeout,
        "drain_timeout_s": args.drain_timeout,
    }
    if args.max_inflight is not None:
        base["max_inflight"] = args.max_inflight
    if args.fleet_config is not None:
        with open(args.fleet_config, "r", encoding="utf-8") as handle:
            document = _json.load(handle)
        if not isinstance(document, dict):
            raise ReproError(
                f"{args.fleet_config}: fleet config must be a JSON object"
            )
        base.update(document)
    config = FleetConfig.from_dict(base)
    fleet = ServingFleet(
        config, on_event=lambda event: print(event, file=sys.stderr)
    )

    def _terminate(signum: int, frame: object) -> None:
        raise _DrainRequested

    signal.signal(signal.SIGTERM, _terminate)
    fleet.start()
    print(f"fleet listening on http://{config.host}:{fleet.bound_port} "
          f"({config.workers} worker(s), mode {config.mode}; extra "
          "endpoints: /fleet/status /fleet/rollout; SIGTERM drains)",
          flush=True)
    try:
        fleet.serve_forever()
    except (_DrainRequested, KeyboardInterrupt) as signal_exc:
        fleet.shutdown()
        if isinstance(signal_exc, KeyboardInterrupt):
            print("fleet stopped", file=sys.stderr)
            return 130
        print("fleet drained and stopped", file=sys.stderr)
        return 0
    fleet.shutdown()
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.lint import json_document
    from repro.serve.loadtest import render_result, run_loadtest

    dataset = _load(args.data)
    result = run_loadtest(
        host=args.host,
        port=args.port,
        sections=dataset.X.tolist(),
        rps=args.rps,
        duration_s=args.duration,
        concurrency=args.concurrency,
        timeout_s=args.timeout,
        model=args.model,
        seed=args.seed,
    )
    document = json_document("loadtest", {
        "target": f"http://{args.host}:{args.port}/predict",
        "model": args.model,
        "seed": args.seed,
        "slo": args.slo,
        "slo_met": result.slo_ok(args.slo),
        "result": result.to_dict(),
    })
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    if args.format == "json":
        print(document)
    else:
        print(render_result(result, args.slo))
        if args.out:
            print(f"wrote {args.out}")
    return 0 if result.slo_ok(args.slo) else 2


def _cmd_faults(args: argparse.Namespace) -> int:
    import os

    from repro.resilience.faults import FAULTS_ENV, KNOWN_SITES, FaultSpec

    text = args.spec if args.spec is not None else os.environ.get(FAULTS_ENV, "")
    if not text.strip():
        print("fault injection is inactive (set $REPRO_FAULTS or pass --spec)")
        print("known sites:")
        for site, description in KNOWN_SITES.items():
            print(f"  {site:<18} {description}")
        return 0
    print(FaultSpec.parse(text).describe())
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import (
        run_certified,
        run_differential,
        run_metamorphic,
    )

    report = run_differential(
        seed=args.seed, tier=args.tier, max_cases=args.max_cases
    )
    if not args.skip_metamorphic:
        report.merge(run_metamorphic(seed=args.seed))
    if not args.skip_certified:
        certified = run_certified(
            seed=args.seed, tier=args.tier, max_cases=args.max_cases
        )
        # run_certified counts the same corpus cases; merging them again
        # would double the case total in the summary line.
        certified.n_cases = 0
        report.merge(certified)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code()


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.conformance import run_fuzz
    from repro.conformance.fuzz import TARGETS

    result = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        seconds=args.seconds,
        targets=tuple(args.targets) if args.targets else TARGETS,
    )
    report = result.to_report()
    if args.format == "json":
        print(report.render_json())
        return report.exit_code()
    if report.diagnostics:
        print(report.render_text())
    print(
        f"{result.n_iterations} iteration(s) in "
        f"{result.elapsed_seconds:.1f}s: {result.n_parse_errors} "
        f"ParseError(s), {result.n_valid} still-valid parse(s), "
        f"{len(result.crashes)} crash(es)"
    )
    return report.exit_code()


def _cmd_fastsim(args: argparse.Namespace) -> int:
    if args.fastsim_command == "calibrate":
        return _cmd_fastsim_calibrate(args)
    if args.fastsim_command == "predict":
        return _cmd_fastsim_predict(args)
    return _cmd_fastsim_check(args)


def _cmd_fastsim_calibrate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.experiments.data import artifact_cache
    from repro.fastsim import RESIDUAL_MODEL_NAME, calibrate, get_calibration

    if args.no_cache:
        calibration = calibrate(seed=args.seed)
    else:
        calibration = get_calibration(artifact_cache(), seed=args.seed)
    payload = {
        "seed": calibration.seed,
        "digest": calibration.digest,
        "machine_fingerprint": calibration.machine_fingerprint,
        "workload_fingerprint": calibration.workload_fingerprint,
        "n_samples": calibration.n_samples,
        "n_anchors": len(calibration.anchors),
        "stats": dict(calibration.stats),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(calibration.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        payload["artifact"] = args.out
    if args.publish is not None:
        from repro.serve import ModelRegistry

        registry = ModelRegistry(Path(args.registry) if args.registry else None)
        name = args.publish or RESIDUAL_MODEL_NAME
        record = registry.publish(name, calibration.model)
        payload["published"] = record.spec
    if args.format == "json":
        from repro.lint import json_document

        print(json_document("fastsim-calibrate", payload))
        return 0
    stats = calibration.stats
    print(f"calibrated {len(calibration.anchors)} phase anchor(s) from "
          f"{calibration.n_samples} oracle sample(s), seed {calibration.seed}")
    print(f"digest {calibration.digest}  "
          f"residual tree: {int(stats.get('n_leaves', 0))} leaves")
    print(f"in-sample relative error: mean {stats.get('rel_err_mean', 0):.4f}  "
          f"p95 {stats.get('rel_err_p95', 0):.4f}  "
          f"max {stats.get('rel_err_max', 0):.4f}")
    if args.out:
        print(f"wrote artifact to {args.out}")
    if "published" in payload:
        print(f"published residual model as {payload['published']}")
    return 0


def _cmd_fastsim_predict(args: argparse.Namespace) -> int:
    from repro.datasets.arff import save_arff
    from repro.datasets.csvio import save_csv
    from repro.experiments.data import artifact_cache
    from repro.fastsim import get_calibration
    from repro.workloads import simulate_suite

    calibration = get_calibration(artifact_cache(), seed=args.seed)
    result = simulate_suite(
        sections_per_workload=args.sections,
        instructions_per_section=args.instructions,
        seed=args.seed,
        jitter=args.jitter,
        engine="fast",
        calibration=calibration,
    )
    save_csv(result.dataset, args.out)
    print(result.summary())
    print(f"wrote {result.dataset.n_instances} predicted sections to "
          f"{args.out} (calibration {calibration.digest})")
    if args.arff:
        arff_path = args.out.rsplit(".", 1)[0] + ".arff"
        save_arff(result.dataset, arff_path)
        print(f"wrote WEKA dataset to {arff_path}")
    return 0


def _cmd_fastsim_check(args: argparse.Namespace) -> int:
    from repro.conformance import run_fastsim
    from repro.experiments.data import artifact_cache
    from repro.fastsim import load_calibration

    # Check the artifact a fast run would actually use: the cached one
    # (run_fastsim fits a fresh calibration only on a cache miss).
    calibration = load_calibration(artifact_cache(), seed=args.seed)
    report = run_fastsim(
        seed=args.seed, tier=args.tier, calibration=calibration
    )
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code()


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import spec_like_suite

    for profile in spec_like_suite():
        print(f"{profile.name:<14} {len(profile.schedule)} phase(s)  "
              f"{profile.description}")
    return 0


_COMMANDS = {
    "collect": _cmd_collect,
    "train": _cmd_train,
    "analyze": _cmd_analyze,
    "evaluate": _cmd_evaluate,
    "lint": _cmd_lint,
    "verify": _cmd_verify,
    "compare": _cmd_compare,
    "describe": _cmd_describe,
    "experiments": _cmd_experiments,
    "report": _cmd_report,
    "workloads": _cmd_workloads,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "faults": _cmd_faults,
    "conformance": _cmd_conformance,
    "fuzz": _cmd_fuzz,
    "fastsim": _cmd_fastsim,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted — completed units are checkpointed; rerun "
              "with --resume to continue", file=sys.stderr)
        return 130
    except (ReproError, OSError) as error:
        message = " ".join(str(error).split())
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""The ``repro bench`` micro-benchmark set.

A fixed, named set of timings over the package's hot paths — tree fit,
prediction, cross validation, suite simulation — emitted in a stable
JSON schema so runs are comparable across sessions, machines and
commits (``benchmarks/compare.py`` consumes the same schema to gate
regressions in CI).

Schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "created": "YYYY-MM-DD",
      "preset": "quick",
      "jobs": 4,
      "rounds": 3,
      "versions": {"repro": "...", "numpy": "...", "python": "..."},
      "benchmarks": [
        {"name": "fit_m5p", "rounds": 3,
         "mean_s": 0.41, "min_s": 0.40, "max_s": 0.43}
      ]
    }

``mean_s`` is the comparison key; ``min_s`` is the noise floor.  Names
are append-only: a benchmark may be added but never renamed, so JSON
files from different versions stay comparable.  Throughput benchmarks
additionally carry ``rows_per_s`` (rows / ``mean_s``) — informational,
never a comparison key.
"""

from __future__ import annotations

import datetime as _datetime
import json
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.errors import ConfigError

SCHEMA = "repro-bench/1"

#: Sections/instructions for the ``suite_simulate`` micro-benchmark.
#: Deliberately small and cache-free: it measures simulator throughput,
#: not dataset reuse.
_SIM_SECTIONS = 8
_SIM_INSTRUCTIONS = 512

#: Batch size for the predict-throughput benchmarks (the acceptance
#: batch the compiled predictor must beat the interpreted walk on).
_THROUGHPUT_ROWS = 10_000


@dataclass(frozen=True)
class BenchResult:
    """Timings for one named micro-benchmark.

    ``rows_per_s`` is set only for throughput benchmarks (rows /
    ``mean_s``); it is informational and never compared by the gate.
    """

    name: str
    rounds: int
    mean_s: float
    min_s: float
    max_s: float
    rows_per_s: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "rounds": self.rounds,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }
        if self.rows_per_s is not None:
            payload["rows_per_s"] = self.rows_per_s
        return payload


def _time(fn: Callable[[], object], rounds: int) -> BenchResult:
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return BenchResult(
        name="",
        rounds=rounds,
        mean_s=float(np.mean(timings)),
        min_s=float(min(timings)),
        max_s=float(max(timings)),
    )


def _throughput_matrix(X: np.ndarray, rows: int = _THROUGHPUT_ROWS) -> np.ndarray:
    """Tile the suite matrix up to a fixed row count."""
    repeats = -(-rows // X.shape[0])
    return np.tile(X, (repeats, 1))[:rows]


def _interpreted_predict(model, X: np.ndarray) -> np.ndarray:
    """The pre-compilation per-row walk, kept as the throughput baseline."""
    from repro.core.tree.node import route

    root = model.root_
    return np.array(
        [route(root, x).model.predict_one(x) for x in X], dtype=np.float64
    )


def run_bench(
    preset: str = "quick",
    n_jobs: Optional[int] = None,
    rounds: int = 3,
) -> Dict[str, object]:
    """Run the fixed micro-benchmark set; returns the schema document.

    The suite dataset comes through the artifact cache, so the first
    session pays for simulation once and later sessions measure only
    the modeling paths.
    """
    if rounds < 1:
        raise ConfigError(f"rounds must be at least 1, got {rounds}")
    import functools

    from repro.core.tree import M5Prime
    from repro.evaluation import cross_validate
    from repro.experiments import ExperimentConfig, suite_dataset
    from repro.workloads import simulate_suite

    config = ExperimentConfig.by_name(preset)
    dataset = suite_dataset(config, n_jobs=n_jobs)
    factory = functools.partial(M5Prime, min_instances=config.min_instances)
    fitted = factory().fit(dataset)
    X_throughput = _throughput_matrix(dataset.X)
    fitted.compiled_  # compile outside the timed region

    from repro.baselines.bagging import BaggedM5

    forest = BaggedM5(
        n_estimators=10, min_instances=config.min_instances,
        seed=config.seed, n_jobs=n_jobs,
    ).fit(dataset)
    forest.compiled_  # compile the arena outside the timed region

    cases: List = [
        ("fit_m5p", lambda: factory().fit(dataset)),
        ("predict_m5p", lambda: fitted.predict(dataset.X)),
        (
            "predict_compiled_10k",
            lambda: fitted.compiled_.predict(X_throughput),
        ),
        (
            "predict_interpreted_10k",
            lambda: _interpreted_predict(fitted, X_throughput),
        ),
        (
            "predict_forest_10k",
            lambda: forest.compiled_.predict(X_throughput),
        ),
        (
            "predict_forest_interpreted_10k",
            lambda: np.vstack(
                [_interpreted_predict(m, X_throughput) for m in forest]
            ).mean(axis=0),
        ),
        (
            "cross_validate",
            lambda: cross_validate(
                factory, dataset, n_folds=config.n_folds,
                rng=config.seed, n_jobs=n_jobs,
            ),
        ),
        (
            "suite_simulate",
            lambda: simulate_suite(
                sections_per_workload=_SIM_SECTIONS,
                instructions_per_section=_SIM_INSTRUCTIONS,
                seed=config.seed,
                n_jobs=n_jobs,
            ),
        ),
    ]

    results = []
    for name, fn in cases:
        timing = _time(fn, rounds)
        rows_per_s = (
            _THROUGHPUT_ROWS / timing.mean_s if name.endswith("_10k") else None
        )
        results.append(
            BenchResult(name, timing.rounds, timing.mean_s,
                        timing.min_s, timing.max_s, rows_per_s)
        )

    from repro.parallel import resolve_jobs

    return {
        "schema": SCHEMA,
        "created": _datetime.date.today().isoformat(),
        "preset": preset,
        "jobs": resolve_jobs(n_jobs),
        "rounds": rounds,
        "versions": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "benchmarks": [r.to_dict() for r in results],
    }


def default_output_path() -> str:
    """``BENCH_<date>.json`` in the working directory."""
    return f"BENCH_{_datetime.date.today().isoformat()}.json"


def render_document(document: Dict[str, object]) -> str:
    """Human-readable table for one bench document."""
    lines = [
        f"repro bench — preset {document['preset']}, "
        f"jobs {document['jobs']}, rounds {document['rounds']}",
        f"{'benchmark':<24}{'mean':>10}{'min':>10}{'max':>10}{'rows/s':>12}",
    ]
    for entry in document["benchmarks"]:  # type: ignore[index]
        rate = entry.get("rows_per_s")  # type: ignore[union-attr]
        lines.append(
            f"{entry['name']:<24}"
            f"{entry['mean_s'] * 1000:>8.1f}ms"
            f"{entry['min_s'] * 1000:>8.1f}ms"
            f"{entry['max_s'] * 1000:>8.1f}ms"
            + (f"{rate:>12,.0f}" if rate is not None else f"{'':>12}")
        )
    return "\n".join(lines)


def write_document(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")

"""The fast suite engine: analytic rates + learned residual, no traces.

``fast_suite`` is a drop-in for :func:`repro.workloads.suite.
simulate_suite`: same profiles, same seeding discipline (one spawned
``SeedSequence`` per profile), same :class:`~repro.workloads.suite.
SuiteResult` shape — but instead of synthesizing and replaying an
instruction trace per section, it draws each section's jittered
parameters, evaluates every Table I rate and the expected CPI in one
vectorized pass, and adds the calibrated residual model's correction.

Two contract points differ from the trace engine by design:

* at ``jitter > 0`` the fast engine's per-section parameter draws are
  deterministic but *not* the trace engine's draws (the trace RNG
  interleaves parameter jitter with trace synthesis); differential
  comparisons therefore run at ``jitter=0.0``;
* rates and CPI are expectations plus a learned correction — sampling
  noise is absent, which is exactly what makes the fast path suitable
  for wide scenario sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.counters.metrics import PREDICTOR_NAMES
from repro.datasets.dataset import Dataset
from repro.errors import ConfigError
from repro.fastsim.analytic import analytic_sections
from repro.fastsim.calibration import Calibration, get_calibration, phase_key
from repro.parallel.cache import ArtifactCache
from repro.simulator.config import MachineConfig
from repro.workloads.phases import perturbed_batch
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec import spec_like_suite
from repro.workloads.suite import ProgressCallback, SuiteResult

#: Revision of the fast engine's deterministic draw scheme and numeric
#: pipeline.  The machine and workload fingerprints cover the *inputs*
#: to a dataset; this covers the engine itself, so cached fast datasets
#: can never outlive the code that produced them.  Bump on any change
#: that alters fast_suite's output for identical inputs.
ENGINE_REVISION = 2


def fast_suite(
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    sections_per_workload: int = 120,
    instructions_per_section: int = 2048,
    config: Optional[MachineConfig] = None,
    seed: int = 2007,
    jitter: float = 0.08,
    calibration: Optional[Calibration] = None,
    cache: Optional[ArtifactCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> SuiteResult:
    """Predict the suite dataset without replaying traces.

    Args mirror :func:`~repro.workloads.suite.simulate_suite`;
    ``calibration`` supplies the fitted residual (fetched via
    :func:`~repro.fastsim.calibration.get_calibration` from ``cache`` —
    or fit on the fly — when omitted).  The calibration's machine and
    workload fingerprints must match ``config``/``profiles``; a stale
    calibration raises :class:`~repro.errors.StaleCalibrationError`.
    """
    if profiles is None:
        profiles = spec_like_suite()
    if not profiles:
        raise ConfigError("need at least one workload profile")
    if sections_per_workload < 1:
        raise ConfigError("sections_per_workload must be at least 1")
    if instructions_per_section < 64:
        raise ConfigError("instructions_per_section must be at least 64")
    machine = config or MachineConfig()
    if calibration is None:
        calibration = get_calibration(cache, machine, profiles, seed=seed)
    calibration.require_fresh(machine, profiles)

    # Draw every section's parameters with the suite's seeding
    # discipline: one spawned sequence per profile, sections in order.
    # Phases are temporally contiguous, so each run of sections sharing
    # one PhaseParams is jittered in a single vectorized batch and its
    # phase key computed once.
    seeds = np.random.SeedSequence(seed).spawn(len(profiles))
    all_params = []
    labels: List[str] = []
    section_ids: List[int] = []
    phase_ids: List[int] = []
    section_keys: List[str] = []
    for profile, seq in zip(profiles, seeds):
        rng = np.random.default_rng(seq)
        start = 0
        while start < sections_per_workload:
            params = profile.section_params(start, sections_per_workload)
            end = start + 1
            while (
                end < sections_per_workload
                and profile.section_params(end, sections_per_workload)
                is params
            ):
                end += 1
            run = end - start
            all_params.extend(perturbed_batch(params, rng, jitter, run))
            labels.extend([profile.name] * run)
            section_ids.extend(range(start, end))
            phase_ids.extend(
                [profile.phase_index(start, sections_per_workload)] * run
            )
            section_keys.extend([phase_key(params)] * run)
            start = end

    predictors, analytic_cpi, features = analytic_sections(
        all_params, machine, instructions_per_section=instructions_per_section
    )
    cpi = calibration.correct(analytic_cpi, features, section_keys)
    # CPI below the issue-width floor is unphysical, so clamp there.
    cpi = np.maximum(cpi, 1.0 / machine.issue_width)

    dataset = Dataset(
        predictors,
        cpi,
        PREDICTOR_NAMES,
        target_name="CPI",
        meta={
            "workload": np.asarray(labels, dtype=object),
            "section": np.asarray(section_ids, dtype=object),
            "phase": np.asarray(phase_ids, dtype=object),
        },
    )
    cpi_by_workload: Dict[str, float] = {}
    label_array = np.asarray(labels)
    for profile in profiles:
        mask = label_array == profile.name
        cpi_by_workload[profile.name] = float(np.mean(cpi[mask]))
        if progress is not None:
            progress(profile.name, sections_per_workload, sections_per_workload)
    return SuiteResult(
        dataset=dataset, cpi_by_workload=cpi_by_workload, failures=[]
    )

"""Vectorized closed-form layer of the fast suite engine.

:mod:`repro.simulator.analytic` gives scalar expectations for the data
side of one phase (cache and DTLB miss rates, branch mispredicts).  This
module extends those forms into *full per-component cycle accounting* —
the front end, the store side, memory-dependence blocks, alignment and
LCP channels — and vectorizes everything over all sections of a sweep at
once: one :class:`ParamMatrix` holds every section's (possibly jittered)
:class:`~repro.workloads.phases.PhaseParams` as column arrays, and the
expectation of every Table I counter rate plus the expected CPI of the
cycle-accounting pipeline (:class:`repro.simulator.pipeline.
CycleAccounting`) come out as numpy arrays with no per-section Python
work.

The CPI form mirrors ``CycleAccounting.account`` term by term, replacing
each per-instruction event flag with its expected rate and each
data-dependent discount (MLP, miss shadows, frontend/data overlap) with
its expectation under the phase's long-miss rate.  It is deliberately an
*expectation*, not a re-simulation: the jitter of actual event draws,
conflict misses and predictor training transients are exactly what the
learned residual model (:mod:`repro.fastsim.calibration`) absorbs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.counters.metrics import PREDICTOR_NAMES
from repro.simulator.analytic import STREAM_PREFETCH_COVERAGE, STREAM_STRIDE
from repro.simulator.config import MachineConfig
from repro.simulator.core import WRONG_PATH_DEPTH
from repro.simulator.pipeline import IssueCosts, OverlapModel
from repro.workloads.phases import PhaseParams

#: Instruction size the PC generator advances by (repro.workloads.stream).
_INSTRUCTION_BYTES = 4

#: Fraction of within-run sequential L1I line misses the next-line
#: front-end prefetch hides (a demand miss pre-fills the following line,
#: so alternate lines of a straight-line run hit).
_CODE_PREFETCH_COVERAGE = 0.5

#: The PhaseParams fields ParamMatrix materializes as column arrays.
PARAM_FIELDS: Tuple[str, ...] = (
    "load_fraction",
    "store_fraction",
    "branch_fraction",
    "data_footprint",
    "hot_fraction",
    "hot_set_bytes",
    "stride_fraction",
    "dependent_miss_fraction",
    "ilp",
    "code_footprint",
    "code_hot_fraction",
    "code_hot_bytes",
    "basic_block_length",
    "branch_bias",
    "hard_branch_fraction",
    "lcp_fraction",
    "misalign_fraction",
    "wide_access_fraction",
    "store_load_alias_fraction",
    "sta_fraction",
    "std_fraction",
    "overlap_alias_fraction",
)

#: Extra (non-Table-I) features the residual model sees on top of the 20
#: predictor rates: the analytic CPI plus every phase parameter (byte-
#: sized fields log2-scaled so tree splits see even spacing).  The raw
#: parameters let the tree isolate phases that project onto similar
#: rates but stall differently.
_PARAM_FEATURE_NAMES: Tuple[str, ...] = tuple(
    ("Log" + name) if ("footprint" in name or "bytes" in name) else name
    for name in PARAM_FIELDS
)
EXTRA_FEATURE_NAMES: Tuple[str, ...] = ("AnalyticCPI",) + _PARAM_FEATURE_NAMES

#: Full residual-model feature set, in column order.
RESIDUAL_FEATURE_NAMES: Tuple[str, ...] = PREDICTOR_NAMES + EXTRA_FEATURE_NAMES


class ParamMatrix:
    """All sections' phase parameters as per-field numpy columns."""

    def __init__(self, params: Sequence[PhaseParams]) -> None:
        if not params:
            from repro.errors import ConfigError

            raise ConfigError("ParamMatrix needs at least one section")
        self.n = len(params)
        for name in PARAM_FIELDS:
            setattr(
                self,
                name,
                np.array([getattr(p, name) for p in params], dtype=np.float64),
            )

    def __len__(self) -> int:
        return self.n


def _uniform_hit(capacity_bytes: float, region: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.simulator.analytic.uniform_hit_probability`."""
    with np.errstate(divide="ignore"):
        ratio = np.where(region > 0, capacity_bytes / np.maximum(region, 1.0), 1.0)
    return np.minimum(1.0, ratio)


def _capacity_miss(capacity_bytes: float, resident_set: np.ndarray) -> np.ndarray:
    """Miss probability of a hot set against one level (0 when it fits)."""
    return np.where(
        resident_set <= capacity_bytes,
        0.0,
        1.0 - _uniform_hit(capacity_bytes, resident_set),
    )


def data_miss_rates(
    pm: ParamMatrix, config: MachineConfig
) -> Dict[str, np.ndarray]:
    """Vectorized per-access data-side miss probabilities.

    Mirrors :func:`repro.simulator.analytic.expected_data_miss_rates`
    (``l1d``/``l2``) and extends it with the two DTLB levels (``dtlb0``
    per-access level-0 misses, ``walk`` per-access page walks).
    """
    line = config.l1d.line_bytes
    hot = pm.hot_fraction
    cold = 1.0 - hot
    streaming = cold * pm.stride_fraction
    jumping = cold * (1.0 - pm.stride_fraction)

    hot_l1 = _capacity_miss(config.l1d.size_bytes, pm.hot_set_bytes)
    hot_l2 = _capacity_miss(config.l2.size_bytes, pm.hot_set_bytes)

    accesses_per_line = max(line // STREAM_STRIDE, 1)
    stream_miss = (1.0 / accesses_per_line) * (
        1.0 - (STREAM_PREFETCH_COVERAGE if config.prefetch_next_line else 0.0)
    )

    jump_l1 = 1.0 - _uniform_hit(config.l1d.size_bytes, pm.data_footprint)
    jump_l2 = 1.0 - _uniform_hit(config.l2.size_bytes, pm.data_footprint)

    l1d = hot * hot_l1 + streaming * stream_miss + jumping * jump_l1
    l2 = (
        hot * hot_l2
        + streaming * stream_miss
        + jumping * jump_l1 * jump_l2 / np.maximum(jump_l1, 1e-12)
    )
    l2 = np.minimum(l2, l1d)

    # DTLB levels: reach plays the role capacity does for the caches.
    page = config.dtlb.page_bytes
    reach1 = config.dtlb.entries * page
    reach0 = config.dtlb0.entries * config.dtlb0.page_bytes
    accesses_per_page = max(page // STREAM_STRIDE, 1)
    footprint_walk = 1.0 - _uniform_hit(reach1, pm.data_footprint)
    walk = (
        hot * _capacity_miss(reach1, pm.hot_set_bytes)
        + streaming * (1.0 / accesses_per_page) * footprint_walk
        + jumping * footprint_walk
    )
    footprint_l0 = 1.0 - _uniform_hit(reach0, pm.data_footprint)
    dtlb0 = (
        hot * _capacity_miss(reach0, pm.hot_set_bytes)
        + streaming * (1.0 / accesses_per_page) * footprint_l0
        + jumping * footprint_l0
    )
    # A full walk implies a level-0 miss (reach0 < reach1 architecturally).
    dtlb0 = np.maximum(dtlb0, walk)
    return {"l1d": l1d, "l2": l2, "dtlb0": dtlb0, "walk": walk}


def code_miss_rates(
    pm: ParamMatrix, config: MachineConfig
) -> Dict[str, np.ndarray]:
    """Vectorized per-instruction front-end miss rates.

    The PC generator (:func:`repro.workloads.stream._draw_pcs`) emits
    sequential runs of ``basic_block_length`` instructions, each starting
    at a random 16-byte slot of the hot code region (probability
    ``code_hot_fraction``) or the whole code footprint.  Per instruction
    that means a fresh cache line every run start plus one line crossing
    every ``line_bytes / 4`` instructions, and a fresh page at run starts
    plus one crossing every ``page_bytes / 4`` instructions.
    """
    line = config.l1i.line_bytes
    run = np.maximum(pm.basic_block_length, 1.0)
    p_start = 1.0 / run
    p_cross = _INSTRUCTION_BYTES / line

    hot_l1 = _capacity_miss(config.l1i.size_bytes, pm.code_hot_bytes)
    cold_l1 = 1.0 - _uniform_hit(config.l1i.size_bytes, pm.code_footprint)
    line_l1 = pm.code_hot_fraction * hot_l1 + (1.0 - pm.code_hot_fraction) * cold_l1

    hot_l2 = _capacity_miss(config.l2.size_bytes, pm.code_hot_bytes)
    cold_l2 = 1.0 - _uniform_hit(config.l2.size_bytes, pm.code_footprint)
    line_l2 = pm.code_hot_fraction * hot_l2 + (1.0 - pm.code_hot_fraction) * cold_l2

    cross_cover = (
        1.0 - _CODE_PREFETCH_COVERAGE if config.prefetch_next_line else 1.0
    )
    new_line = p_start + (1.0 - p_start) * p_cross * cross_cover
    l1im = new_line * line_l1
    l2im = np.minimum(new_line * line_l1 * line_l2, l1im)

    reach = config.itlb.entries * config.itlb.page_bytes
    page_cross = _INSTRUCTION_BYTES / config.itlb.page_bytes
    hot_page = _capacity_miss(reach, pm.code_hot_bytes)
    cold_page = 1.0 - _uniform_hit(reach, pm.code_footprint)
    page_miss = (
        pm.code_hot_fraction * hot_page + (1.0 - pm.code_hot_fraction) * cold_page
    )
    itlbm = (p_start + (1.0 - p_start) * page_cross) * page_miss
    return {"l1im": l1im, "l2im": l2im, "itlbm": itlbm}


def branch_mispredict_rate(pm: ParamMatrix) -> np.ndarray:
    """Vectorized :func:`~repro.simulator.analytic.expected_branch_mispredict_rate`."""
    biased = np.minimum(pm.branch_bias, 1.0 - pm.branch_bias)
    return pm.hard_branch_fraction * 0.5 + (1.0 - pm.hard_branch_fraction) * biased


def _split_probability(pm: ParamMatrix, line_bytes: int) -> np.ndarray:
    """Probability a memory access crosses a cache line.

    Aligned accesses never split (size-aligned bases divide the line);
    splits come from the deliberately misaligned fraction, whose crossing
    probability grows with access width (expected offset 2 over sizes
    4/8 at 50/50 and 16-byte wide accesses).
    """
    wide = pm.wide_access_fraction
    expected_size = wide * 16.0 + (1.0 - wide) * 6.0
    return pm.misalign_fraction * np.minimum(1.0, (expected_size + 1.0) / line_bytes)


def expected_rate_matrix(
    pm: ParamMatrix,
    config: Optional[MachineConfig] = None,
) -> Dict[str, np.ndarray]:
    """Every Table I predictor rate for every section, plus internals.

    Returns a dict keyed by predictor name (``PREDICTOR_NAMES``) with
    per-instruction expected rates, plus the internal channels the CPI
    form needs that Table I does not expose (``StoreL1M``, ``StoreL2M``,
    ``L2IM``, ``SplitProb``).
    """
    machine = config or MachineConfig()
    data = data_miss_rates(pm, machine)
    code = code_miss_rates(pm, machine)
    mispredict = branch_mispredict_rate(pm)

    ld = pm.load_fraction
    st = pm.store_fraction
    br = pm.branch_fraction

    br_mis = br * mispredict
    walk_ld = ld * data["walk"]
    spec_walks = br_mis * WRONG_PATH_DEPTH * ld * data["walk"]
    walk_st = st * data["walk"]

    alias = pm.store_load_alias_fraction
    overlap = pm.overlap_alias_fraction
    plain_alias = alias * (1.0 - overlap)
    split = _split_probability(pm, machine.l1d.line_bytes)

    rates: Dict[str, np.ndarray] = {
        "InstLd": ld,
        "InstSt": st,
        "BrMisPr": br_mis,
        "BrPred": br * (1.0 - mispredict),
        "InstOther": np.maximum(1.0 - ld - st - br, 0.0),
        "L1DM": ld * data["l1d"],
        "L1IM": code["l1im"],
        "L2M": ld * data["l2"],
        "DtlbL0LdM": ld * data["dtlb0"],
        "DtlbLdM": walk_ld + spec_walks,
        "DtlbLdReM": walk_ld,
        "Dtlb": walk_ld + walk_st + spec_walks,
        "ItlbM": code["itlbm"],
        "LdBlSta": ld * plain_alias * pm.sta_fraction,
        "LdBlStd": ld * plain_alias * (1.0 - pm.sta_fraction) * pm.std_fraction,
        "LdBlOvSt": ld * alias * overlap,
        "MisalRef": (ld + st) * pm.misalign_fraction,
        "L1DSpLd": ld * split,
        "L1DSpSt": st * split,
        "LCP": pm.lcp_fraction,
        # Internal channels (not Table I counters).
        "StoreL1M": st * data["l1d"],
        "StoreL2M": st * data["l2"],
        "L2IM": code["l2im"],
    }
    return rates


def expected_cpi(
    pm: ParamMatrix,
    rates: Dict[str, np.ndarray],
    config: Optional[MachineConfig] = None,
    overlap: OverlapModel = OverlapModel(),
    issue_costs: IssueCosts = IssueCosts(),
    instructions_per_section: int = 2048,
) -> np.ndarray:
    """Expected CPI of the cycle-accounting pipeline, per section.

    A term-by-term expectation of :meth:`repro.simulator.pipeline.
    CycleAccounting.account`: every event flag becomes its expected rate
    from ``rates``, the MLP divisor becomes its ROB-window expectation,
    and the in-shadow discounts become probability mixtures under the
    section's long-miss rate.
    """
    machine = config or MachineConfig()
    lat = machine.latency
    ov = overlap
    n = instructions_per_section

    ld, st, br = pm.load_fraction, pm.store_fraction, pm.branch_fraction
    base = (
        1.0 / machine.issue_width
        + issue_costs.load_extra * ld
        + issue_costs.store_extra * st
        + issue_costs.branch_extra * br
    )

    # Long-miss rate and its window statistics.
    long_rate = rates["L2M"] + rates["StoreL2M"] + rates["L2IM"]
    window = float(min(machine.rob_size, n))
    local = long_rate * window
    raw_mlp = np.clip(local, 1.0, float(machine.mshr_count))
    mlp = 1.0 + (raw_mlp - 1.0) * (1.0 - pm.dependent_miss_fraction)
    p_shadow = 1.0 - np.power(np.clip(1.0 - long_rate, 0.0, 1.0), window)
    shadow = p_shadow * ov.shadow_discount + (1.0 - p_shadow)
    walk_shadow = p_shadow * ov.walk_shadow_discount + (1.0 - p_shadow)
    mispred_shadow = p_shadow * ov.mispredict_shadow_discount + (1.0 - p_shadow)

    load_l2 = rates["L2M"] / mlp * lat.memory
    store_l2 = rates["StoreL2M"] / mlp * lat.memory * ov.store_miss_exposure

    ooo = 1.0 - ov.ilp_hide_ooo * pm.ilp
    fe = 1.0 - ov.ilp_hide_frontend * pm.ilp
    l1_penalty = lat.l2_hit - lat.l1_hit

    l1_only = np.maximum(rates["L1DM"] - rates["L2M"], 0.0)
    load_l1 = l1_only * shadow * l1_penalty * ooo
    st_l1_only = np.maximum(rates["StoreL1M"] - rates["StoreL2M"], 0.0)
    store_l1 = st_l1_only * shadow * l1_penalty * ooo * ov.store_miss_exposure

    dtlb = (
        rates["DtlbL0LdM"] * shadow * lat.dtlb0_miss * ooo
        + rates["DtlbLdReM"] * walk_shadow * lat.dtlb_walk
        + pm.store_fraction
        * (rates["Dtlb"] - rates["DtlbLdM"])
        / np.maximum(pm.store_fraction, 1e-12)
        * walk_shadow
        * lat.dtlb_walk
        * ov.store_miss_exposure
    )

    load_block = (
        rates["LdBlSta"] * lat.load_block_sta
        + rates["LdBlStd"] * lat.load_block_std
        + rates["LdBlOvSt"] * lat.load_block_overlap
    ) * shadow * ooo

    alignment = (
        rates["MisalRef"] * lat.misaligned
        + rates["L1DSpLd"] * lat.split_access
        + rates["L1DSpSt"] * lat.split_access * ov.store_miss_exposure
    ) * shadow * ooo

    branch = rates["BrMisPr"] * mispred_shadow * lat.branch_mispredict

    l1i_only = np.maximum(rates["L1IM"] - rates["L2IM"], 0.0)
    fetch_memory = rates["L2IM"] * lat.ifetch_memory
    ifetch = l1i_only * shadow * lat.l1i_refill * fe + fetch_memory

    # Frontend/data memory-stall overlap (the LM18 saturation): the
    # smaller of the two expected stall streams mostly hides under the
    # larger.
    data_memory = load_l2 + store_l2
    both = (fetch_memory > 0) & (data_memory > 0)
    total_memory = np.maximum(fetch_memory + data_memory, 1e-12)
    hidden = np.where(
        both,
        ov.frontend_data_overlap * np.minimum(fetch_memory, data_memory),
        0.0,
    )
    scale = 1.0 - hidden / total_memory
    load_l2 = load_l2 * scale
    store_l2 = store_l2 * scale
    ifetch = ifetch - hidden * (fetch_memory / total_memory)

    itlb = rates["ItlbM"] * lat.itlb_walk
    lcp = rates["LCP"] * shadow * lat.lcp_stall * fe

    return (
        base
        + load_l2
        + store_l2
        + load_l1
        + store_l1
        + dtlb
        + load_block
        + alignment
        + branch
        + ifetch
        + itlb
        + lcp
    )


def predictor_matrix(rates: Dict[str, np.ndarray]) -> np.ndarray:
    """The (n_sections, 20) Table I predictor matrix, column order fixed."""
    return np.column_stack([rates[name] for name in PREDICTOR_NAMES])


def residual_features(
    pm: ParamMatrix,
    rates: Dict[str, np.ndarray],
    analytic_cpi: np.ndarray,
) -> np.ndarray:
    """Feature matrix the residual model consumes (RESIDUAL_FEATURE_NAMES)."""
    param_columns = []
    for field in PARAM_FIELDS:
        values = getattr(pm, field)
        if "footprint" in field or "bytes" in field:
            values = np.log2(np.maximum(values, 1.0))
        param_columns.append(values)
    return np.column_stack(
        [rates[name] for name in PREDICTOR_NAMES]
        + [analytic_cpi]
        + param_columns
    )


def analytic_sections(
    params: Sequence[PhaseParams],
    config: Optional[MachineConfig] = None,
    instructions_per_section: int = 2048,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-call analytic pass: (predictor matrix, analytic CPI, features)."""
    pm = ParamMatrix(params)
    rates = expected_rate_matrix(pm, config)
    cpi = expected_cpi(
        pm, rates, config, instructions_per_section=instructions_per_section
    )
    return predictor_matrix(rates), cpi, residual_features(pm, rates, cpi)

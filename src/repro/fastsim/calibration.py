"""Calibration of the fast suite engine against the trace oracle.

The analytical layer (:mod:`repro.fastsim.analytic`) captures the first-
order physics; what it cannot capture — conflict misses, predictor
training transients, prefetcher burstiness, clip-of-expectation vs
expectation-of-clip in the MLP model — is learned once against the
noise-free trace simulator on a seeded sweep and stored as a
:class:`Calibration` artifact with two parts:

* **per-phase anchors** — the noise-averaged log ratio
  ``log(trace_cpi / analytic_cpi)`` at every distinct suite phase's
  nominal parameters.  At ``jitter=0`` (the differential drift regime)
  the anchor alone corrects the fast path, so its accuracy is bounded
  only by the anchor measurement noise;
* **an M5′ residual tree** fit on the log-residual over nominal *and*
  jittered parameter draws.  At runtime it contributes only a
  *differential* term — the difference between the tree at the
  section's jittered parameters and at its phase's nominal parameters —
  shrunk and clipped so a leaf-model extrapolation can never move a
  prediction away from the anchor alone by more than ~5%.

The artifact is content-addressed in :class:`~repro.parallel.cache.
ArtifactCache`, fingerprinted against both the machine configuration
(:func:`machine_fingerprint`) and the workload suite, and the residual
tree is an ordinary fitted M5′ model, publishable through
:class:`~repro.serve.registry.ModelRegistry`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import stable_hash
from repro.core.tree.m5 import M5Prime
from repro.core.tree.serialize import model_from_dict, model_to_dict
from repro.datasets.dataset import Dataset
from repro.errors import ParseError, StaleCalibrationError
from repro.fastsim.analytic import (
    RESIDUAL_FEATURE_NAMES,
    analytic_sections,
)
from repro.parallel.cache import ArtifactCache
from repro.simulator.config import MachineConfig
from repro.simulator.core import SimulatedCore
from repro.simulator.pipeline import IssueCosts, OverlapModel
from repro.workloads.phases import PhaseParams, perturbed
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec import spec_like_suite
from repro.workloads.stream import synthesize_block
from repro.workloads.suite import prewarm, workload_fingerprint

#: Schema tag of the serialized calibration artifact.
CALIBRATION_SCHEMA = "repro-fastsim-calibration/1"

#: Jitter scale of the wide half of the calibration sweep — deliberately
#: wider than the runtime default (0.08) so the residual tree covers the
#: sweep envelope instead of extrapolating at its edge.
CALIBRATION_JITTER = 0.2

#: Jittered replicas drawn per suite phase (half wide, half runtime-like).
CALIBRATION_REPLICAS = 12

#: Instructions simulated per jittered calibration sample.
CALIBRATION_INSTRUCTIONS = 6144

#: Anchor measurement window.  Large-footprint phases are *not*
#: stationary over the first few hundred thousand instructions — CPI
#: keeps drifting as the cache hierarchy converges — so the anchor
#: measures exactly the early-steady-state window the paper's sections
#: occupy: one cold block of ``ANCHOR_WARMUP_INSTRUCTIONS`` is discarded
#: and the CPI is aggregated over the following
#: ``ANCHOR_WINDOW_INSTRUCTIONS`` (the warm window of the drift corpus).
ANCHOR_WARMUP_INSTRUCTIONS = 16_384
ANCHOR_WINDOW_INSTRUCTIONS = 81_920

#: Anchor replication: at least ``ANCHOR_MIN_REPS`` independently seeded
#: windows per phase, continuing until the standard error of the mean
#: log-CPI drops below ``ANCHOR_SEM_TARGET`` or ``ANCHOR_MAX_REPS`` is
#: reached (bursty streaming phases need more reps than steady ones).
ANCHOR_MIN_REPS = 4
ANCHOR_MAX_REPS = 12
ANCHOR_SEM_TARGET = 0.008

#: Shrinkage and clip applied to the tree's differential contribution.
#: Deliberately conservative: the differential improves jittered-section
#: fidelity, but an unconstrained leaf-model extrapolation can both
#: overshoot and inject phase-parameter variance that a CPI tree trained
#: on the 20 Table I predictors cannot explain (which would degrade
#: trainability of fast datasets against the MAE-parity bench).
DIFFERENTIAL_SHRINK = 0.25
DIFFERENTIAL_CLIP = 0.05

#: Default registry name for the published residual model.
RESIDUAL_MODEL_NAME = "fastsim-residual"


def machine_fingerprint(config: Optional[MachineConfig] = None) -> str:
    """Digest of everything the cycle accounting depends on.

    Covers the machine configuration plus the overlap/issue-cost models
    baked into the pipeline: a change to any of them invalidates both
    cached datasets and fastsim calibrations.
    """
    machine = config or MachineConfig()
    return stable_hash([repr(machine), repr(OverlapModel()), repr(IssueCosts())])


def phase_key(params: PhaseParams) -> str:
    """Stable identity of one phase's nominal parameters."""
    return stable_hash([repr(params)])


def suite_phases(
    profiles: Optional[Sequence[WorkloadProfile]] = None,
) -> List[PhaseParams]:
    """Every distinct phase in the suite, in profile order."""
    phases: List[PhaseParams] = []
    seen = set()
    for profile in profiles if profiles is not None else spec_like_suite():
        for params in profile.schedule.phases:
            key = phase_key(params)
            if key not in seen:
                seen.add(key)
                phases.append(params)
    return phases


@dataclass
class Calibration:
    """A fitted fast-engine calibration: anchors, residual tree, provenance."""

    model: M5Prime
    anchors: Dict[str, float]
    nominal_corrections: Dict[str, float]
    machine_fingerprint: str
    workload_fingerprint: str
    seed: int
    n_samples: int
    feature_names: Tuple[str, ...] = RESIDUAL_FEATURE_NAMES
    stats: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CALIBRATION_SCHEMA,
            "machine_fingerprint": self.machine_fingerprint,
            "workload_fingerprint": self.workload_fingerprint,
            "seed": self.seed,
            "n_samples": self.n_samples,
            "feature_names": list(self.feature_names),
            "anchors": dict(sorted(self.anchors.items())),
            "nominal_corrections": dict(sorted(self.nominal_corrections.items())),
            "stats": dict(self.stats),
            "model": model_to_dict(self.model),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Calibration":
        if not isinstance(payload, dict):
            raise ParseError("calibration payload is not a JSON object")
        schema = payload.get("schema")
        if schema != CALIBRATION_SCHEMA:
            raise ParseError(
                f"calibration schema {schema!r} is not {CALIBRATION_SCHEMA!r}"
            )
        required = (
            "machine_fingerprint",
            "workload_fingerprint",
            "seed",
            "n_samples",
            "feature_names",
            "anchors",
            "nominal_corrections",
            "model",
        )
        missing = [key for key in required if key not in payload]
        if missing:
            raise ParseError(f"calibration payload lacks {missing}")
        return cls(
            model=model_from_dict(payload["model"]),
            anchors={
                str(k): float(v) for k, v in dict(payload["anchors"]).items()
            },
            nominal_corrections={
                str(k): float(v)
                for k, v in dict(payload["nominal_corrections"]).items()
            },
            machine_fingerprint=str(payload["machine_fingerprint"]),
            workload_fingerprint=str(payload["workload_fingerprint"]),
            seed=int(payload["seed"]),
            n_samples=int(payload["n_samples"]),
            feature_names=tuple(str(n) for n in payload["feature_names"]),
            stats={
                str(k): float(v)
                for k, v in dict(payload.get("stats", {})).items()
            },
        )

    @property
    def digest(self) -> str:
        """Content digest of the canonical serialized artifact."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return stable_hash([canonical])

    # ------------------------------------------------------------------
    # Freshness
    # ------------------------------------------------------------------
    def staleness(
        self,
        config: Optional[MachineConfig] = None,
        profiles: Optional[Sequence[WorkloadProfile]] = None,
    ) -> List[str]:
        """Fingerprint mismatches against a target configuration.

        Empty means the calibration is fresh for (``config``,
        ``profiles``).  The machine fingerprint must always match.  For
        the default suite the workload fingerprint must match; for an
        explicit profile list the requirement is anchor *coverage* —
        every distinct phase must have been calibrated — which is the
        phase-level form of the same guarantee.
        """
        problems = []
        machine = machine_fingerprint(config)
        if self.machine_fingerprint != machine:
            problems.append(
                "machine fingerprint mismatch: calibration "
                f"{self.machine_fingerprint} vs current {machine}"
            )
        if profiles is None:
            workloads = workload_fingerprint(None)
            if self.workload_fingerprint != workloads:
                problems.append(
                    "workload fingerprint mismatch: calibration "
                    f"{self.workload_fingerprint} vs current {workloads}"
                )
        else:
            uncovered = sorted(
                {
                    f"{profile.name}[{index}]"
                    for profile in profiles
                    for index, params in enumerate(profile.schedule.phases)
                    if phase_key(params) not in self.anchors
                }
            )
            if uncovered:
                problems.append(
                    "uncalibrated phases (no anchor): " + ", ".join(uncovered)
                )
        return problems

    def require_fresh(
        self,
        config: Optional[MachineConfig] = None,
        profiles: Optional[Sequence[WorkloadProfile]] = None,
    ) -> None:
        """Raise :class:`StaleCalibrationError` unless fresh."""
        problems = self.staleness(config, profiles)
        if problems:
            raise StaleCalibrationError(
                "refusing to run the fast engine with a stale calibration: "
                + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def correct(
        self,
        analytic_cpi: np.ndarray,
        features: np.ndarray,
        keys: Sequence[str],
    ) -> np.ndarray:
        """Corrected CPI for sections with per-section nominal phase keys.

        ``correction = anchor(phase) + shrunk clipped differential`` —
        the differential being the tree's prediction at the section's
        (jittered) features minus its prediction at the phase's nominal
        features, so it vanishes exactly at ``jitter=0``.
        """
        try:
            anchor = np.array([self.anchors[k] for k in keys])
            nominal = np.array([self.nominal_corrections[k] for k in keys])
        except KeyError as exc:
            raise StaleCalibrationError(
                f"no anchor for phase key {exc.args[0]!r}; "
                "recalibrate against the current workload suite"
            ) from None
        delta = DIFFERENTIAL_SHRINK * (self.model.predict(features) - nominal)
        delta = np.clip(delta, -DIFFERENTIAL_CLIP, DIFFERENTIAL_CLIP)
        correction = np.clip(anchor + delta, -2.0, 2.0)
        return analytic_cpi * np.exp(correction)


def _trace_cpi(
    params: PhaseParams,
    config: MachineConfig,
    rng: np.random.Generator,
    instructions: int,
) -> float:
    """Noise-free trace-simulator CPI for one parameter point."""
    core = SimulatedCore(config, rng=rng)
    prewarm(core, params)
    # One warmup block trains the branch predictor and settles the
    # prefetchers before the measured block, matching steady-state
    # sections of a long suite run.
    core.run_block(synthesize_block(params, instructions // 2, rng))
    result = core.run_block(synthesize_block(params, instructions, rng))
    return float(result.cycles) / instructions


def _measure_anchor(
    params: PhaseParams,
    config: MachineConfig,
    rng: np.random.Generator,
    analytic_cpi: float,
) -> Tuple[float, int]:
    """Noise-averaged log(trace/analytic) at one phase's nominal point.

    The anchor's target is the *early-steady-state window* the paper's
    sections occupy.  Large-footprint phases are not stationary: their
    CPI keeps falling for hundreds of thousands of instructions as the
    cache hierarchy converges, so streaming one long run would average a
    later regime than the sections being predicted.  Each replicate
    therefore restarts from a fresh prewarmed core, discards one
    :data:`ANCHOR_WARMUP_INSTRUCTIONS` cold block, and aggregates CPI
    over the next :data:`ANCHOR_WINDOW_INSTRUCTIONS` — exactly the warm
    window of the drift corpus.  Replicates until the SEM of the mean
    log-CPI beats :data:`ANCHOR_SEM_TARGET` (bursty streaming phases
    need more reps than steady ones) or :data:`ANCHOR_MAX_REPS` is hit.
    """
    log_cpis: List[float] = []
    while len(log_cpis) < ANCHOR_MAX_REPS:
        core = SimulatedCore(config, rng=rng)
        prewarm(core, params)
        core.run_block(
            synthesize_block(params, ANCHOR_WARMUP_INSTRUCTIONS, rng)
        )
        result = core.run_block(
            synthesize_block(params, ANCHOR_WINDOW_INSTRUCTIONS, rng)
        )
        log_cpis.append(
            float(np.log(result.cycles / ANCHOR_WINDOW_INSTRUCTIONS))
        )
        if len(log_cpis) >= ANCHOR_MIN_REPS:
            sem = float(np.std(log_cpis) / np.sqrt(len(log_cpis)))
            if sem <= ANCHOR_SEM_TARGET:
                break
    anchor = float(np.mean(log_cpis) - np.log(max(analytic_cpi, 1e-9)))
    return anchor, len(log_cpis)


def calibrate(
    config: Optional[MachineConfig] = None,
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    seed: int = 2007,
    replicas: int = CALIBRATION_REPLICAS,
    instructions: int = CALIBRATION_INSTRUCTIONS,
) -> Calibration:
    """Fit anchors and the residual tree against the noise-free oracle.

    Per distinct suite phase: a noise-averaged anchor at the nominal
    parameters, plus ``replicas`` jittered draws (alternating the wide
    :data:`CALIBRATION_JITTER` envelope with the runtime-like 0.08) that
    train the M5′ residual tree on ``log(trace_cpi / analytic_cpi)``.
    """
    machine = config or MachineConfig()
    oracle_config = dataclasses.replace(machine, measurement_noise_sd=0.0)
    phases = suite_phases(profiles)
    rng = np.random.default_rng(np.random.SeedSequence(seed))

    # Anchors first (their own RNG stream position is part of the seed
    # contract; everything derives from one generator, so the artifact
    # is a pure function of (config, profiles, seed)).
    _, nominal_cpi, _ = analytic_sections(
        phases, machine, instructions_per_section=ANCHOR_WINDOW_INSTRUCTIONS
    )
    anchors: Dict[str, float] = {}
    total_reps = 0
    for params, acpi in zip(phases, nominal_cpi):
        anchor, reps = _measure_anchor(params, oracle_config, rng, acpi)
        anchors[phase_key(params)] = anchor
        total_reps += reps

    # Jittered sweep for the residual tree (nominal points included so
    # the tree is trained where the differential is evaluated).
    samples: List[PhaseParams] = []
    for params in phases:
        samples.append(params)
        for index in range(replicas):
            scale = CALIBRATION_JITTER if index % 2 == 0 else 0.08
            samples.append(perturbed(params, rng, scale))
    targets = np.array(
        [
            _trace_cpi(params, oracle_config, rng, instructions)
            for params in samples
        ]
    )
    _, analytic_cpi, features = analytic_sections(
        samples, machine, instructions_per_section=instructions
    )
    floor = 1e-9
    residual = np.log(np.maximum(targets, floor)) - np.log(
        np.maximum(analytic_cpi, floor)
    )
    dataset = Dataset(
        features, residual, RESIDUAL_FEATURE_NAMES, target_name="LogResidualCPI"
    )
    model = M5Prime(min_instances=4, sd_fraction=0.02)
    model.fit(dataset)

    # The tree's value at each nominal point, stored so the differential
    # can be formed without re-deriving nominal features at runtime.
    _, _, nominal_features = analytic_sections(
        phases, machine, instructions_per_section=instructions
    )
    nominal_predictions = model.predict(nominal_features)
    nominal_corrections = {
        phase_key(params): float(value)
        for params, value in zip(phases, nominal_predictions)
    }

    calibration = Calibration(
        model=model,
        anchors=anchors,
        nominal_corrections=nominal_corrections,
        machine_fingerprint=machine_fingerprint(machine),
        workload_fingerprint=workload_fingerprint(profiles),
        seed=seed,
        n_samples=len(samples) + total_reps,
    )
    sample_keys = [
        phase_key(params) for params in phases for _ in range(1 + replicas)
    ]
    predicted = calibration.correct(analytic_cpi, features, sample_keys)
    errors = np.abs(predicted - targets) / np.maximum(targets, 1e-12)
    calibration.stats = {
        "residual_mean": float(np.mean(residual)),
        "residual_sd": float(np.std(residual)),
        "anchor_reps": float(total_reps),
        "n_leaves": float(model.n_leaves),
        "rel_err_mean": float(np.mean(errors)),
        "rel_err_p95": float(np.percentile(errors, 95)),
        "rel_err_max": float(np.max(errors)),
    }
    return calibration


# ----------------------------------------------------------------------
# Artifact storage
# ----------------------------------------------------------------------
def _cache_key(
    config: Optional[MachineConfig],
    profiles: Optional[Sequence[WorkloadProfile]],
    seed: int,
) -> List[object]:
    return [
        "fastsim-calibration",
        CALIBRATION_SCHEMA,
        machine_fingerprint(config),
        workload_fingerprint(profiles),
        seed,
    ]


def store_calibration(
    cache: ArtifactCache,
    calibration: Calibration,
    config: Optional[MachineConfig] = None,
    profiles: Optional[Sequence[WorkloadProfile]] = None,
):
    """Persist a calibration, content-addressed by its provenance."""
    return cache.store_json(
        _cache_key(config, profiles, calibration.seed), calibration.to_dict()
    )


def load_calibration(
    cache: ArtifactCache,
    config: Optional[MachineConfig] = None,
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    seed: int = 2007,
) -> Optional[Calibration]:
    """Load the cached calibration for a configuration, if present."""
    payload = cache.load_json(_cache_key(config, profiles, seed))
    if payload is None:
        return None
    try:
        return Calibration.from_dict(payload)
    except ParseError:
        return None


def get_calibration(
    cache: Optional[ArtifactCache] = None,
    config: Optional[MachineConfig] = None,
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    seed: int = 2007,
    **calibrate_kwargs,
) -> Calibration:
    """Load the calibration for a configuration, fitting it on a miss."""
    if cache is not None:
        cached = load_calibration(cache, config, profiles, seed)
        if cached is not None:
            return cached
    calibration = calibrate(config, profiles, seed=seed, **calibrate_kwargs)
    if cache is not None:
        store_calibration(cache, calibration, config, profiles)
    return calibration

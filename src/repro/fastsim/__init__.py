"""Analytical–ML fused fast path for suite simulation.

Predicts per-section Table I counter rates and CPI without replaying
instruction traces: a vectorized analytical layer
(:mod:`repro.fastsim.analytic`) extends the closed forms of
:mod:`repro.simulator.analytic` into full per-component cycle
accounting, and a calibrated M5′ residual model
(:mod:`repro.fastsim.calibration`) absorbs what the closed forms miss.
The trace-driven simulator remains the oracle; the FAST00x conformance
cases (:mod:`repro.conformance.fastsim`) bound the drift.
"""

from repro.fastsim.analytic import (
    EXTRA_FEATURE_NAMES,
    RESIDUAL_FEATURE_NAMES,
    ParamMatrix,
    analytic_sections,
    branch_mispredict_rate,
    code_miss_rates,
    data_miss_rates,
    expected_cpi,
    expected_rate_matrix,
    predictor_matrix,
    residual_features,
)
from repro.fastsim.calibration import (
    CALIBRATION_JITTER,
    CALIBRATION_SCHEMA,
    RESIDUAL_MODEL_NAME,
    Calibration,
    calibrate,
    get_calibration,
    load_calibration,
    machine_fingerprint,
    phase_key,
    store_calibration,
    suite_phases,
)
from repro.fastsim.engine import ENGINE_REVISION, fast_suite

__all__ = [
    "CALIBRATION_JITTER",
    "CALIBRATION_SCHEMA",
    "ENGINE_REVISION",
    "EXTRA_FEATURE_NAMES",
    "RESIDUAL_FEATURE_NAMES",
    "RESIDUAL_MODEL_NAME",
    "Calibration",
    "ParamMatrix",
    "analytic_sections",
    "branch_mispredict_rate",
    "calibrate",
    "code_miss_rates",
    "data_miss_rates",
    "expected_cpi",
    "expected_rate_matrix",
    "fast_suite",
    "get_calibration",
    "load_calibration",
    "machine_fingerprint",
    "phase_key",
    "predictor_matrix",
    "residual_features",
    "store_calibration",
    "suite_phases",
]

"""Side-by-side comparison of several learners (paper Section V-B, [23])."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.evaluation.crossval import (
    CrossValidationResult,
    EstimatorFactory,
    cross_validate,
)
from repro.evaluation.tables import render_table
from repro.errors import ConfigError, RetryExhaustedError
from repro.resilience import FAIL_FAST, RunPolicy, TaskFailure


@dataclass
class ComparisonResult:
    """Cross-validation results per method name.

    Attributes:
        results: Completed methods only.
        n_folds: The shared fold count.
        failures: Units that failed under a capturing
            :class:`~repro.resilience.RunPolicy`: fold-level failures
            are keyed ``method/fold-NNN``; a method whose whole
            cross-validation collapsed is keyed by its name alone.
    """

    results: Dict[str, CrossValidationResult]
    n_folds: int
    failures: List[TaskFailure] = field(default_factory=list)

    def ranking(self, metric: str = "rae") -> List[str]:
        """Method names sorted best-first by a mean-over-folds metric.

        ``correlation`` ranks descending; error metrics rank ascending.
        """
        if metric not in ("correlation", "mae", "rae", "rmse", "rrse"):
            raise ConfigError(f"unknown metric {metric!r}")
        reverse = metric == "correlation"
        return sorted(
            self.results,
            key=lambda name: getattr(self.results[name].mean, metric),
            reverse=reverse,
        )

    def significance_against(
        self, reference: str, metric: str = "mae"
    ) -> Dict[str, "object"]:
        """Corrected paired t-test of every method against ``reference``.

        Returns method name -> :class:`PairedComparison` (the reference
        itself is omitted).  All methods in a comparison share folds, so
        the pairing is valid by construction.
        """
        from repro.evaluation.significance import paired_fold_test

        if reference not in self.results:
            raise ConfigError(f"unknown method {reference!r}")
        return {
            name: paired_fold_test(result, self.results[reference], metric)
            for name, result in self.results.items()
            if name != reference
        }

    def to_table(self) -> str:
        """A comparison table like the companion study's."""
        header = ["method", "C", "MAE", "RAE %", "RMSE", "RRSE %"]
        rows = []
        for name in self.ranking("rae"):
            mean = self.results[name].mean
            rows.append(
                [
                    name,
                    f"{mean.correlation:.4f}",
                    f"{mean.mae:.4f}",
                    f"{100 * mean.rae:.2f}",
                    f"{mean.rmse:.4f}",
                    f"{100 * mean.rrse:.2f}",
                ]
            )
        table = render_table(header, rows)
        if self.failures:
            lines = [table, ""]
            for failure in self.failures:
                lines.append(f"FAILED {failure.render()}")
            return "\n".join(lines)
        return table

    def to_payload(self) -> dict:
        """The comparison as a JSON-envelope payload (``repro compare``).

        ``failed_units`` lists every unit a capturing failure policy
        recorded, so automated consumers can tell a complete table from
        a degraded one.
        """
        return {
            "folds": self.n_folds,
            "ranking": self.ranking("rae"),
            "methods": {
                name: {
                    "mean": result.mean.to_dict(),
                    "pooled": result.pooled.to_dict(),
                    "n_completed_folds": result.n_folds,
                }
                for name, result in self.results.items()
            },
            "failed_units": [f.to_dict() for f in self.failures],
        }


def compare_estimators(
    factories: Mapping[str, EstimatorFactory],
    dataset: Dataset,
    n_folds: int = 10,
    seed: RandomState = 0,
    n_jobs: Optional[int] = None,
    policy: Optional[RunPolicy] = None,
) -> ComparisonResult:
    """Cross-validate every factory on identical folds.

    Each method sees the same fold partition (the fold RNG is re-seeded
    per method from the same master), so differences are attributable to
    the learners alone.  ``n_jobs`` parallelizes each method's folds;
    results are bit-identical at any worker count.

    With a capturing :class:`~repro.resilience.RunPolicy`, a method
    whose folds partially fail still contributes (its fold failures are
    recorded under ``method/fold-NNN``); a method whose cross-validation
    collapses entirely is dropped from the table and recorded under its
    own name.  Checkpoints, when enabled, are scoped per method, so a
    resumed comparison skips every fold any earlier attempt completed.
    """
    if not factories:
        raise ConfigError("need at least one estimator factory")
    master = check_random_state(seed)
    fold_seed = int(master.integers(0, 2**31 - 1))
    results = {}
    failures: List[TaskFailure] = []
    for name, factory in factories.items():
        method_policy = policy.scoped(name) if policy is not None else None
        try:
            result = cross_validate(
                factory,
                dataset,
                n_folds=n_folds,
                rng=fold_seed,
                n_jobs=n_jobs,
                policy=method_policy,
            )
        except RetryExhaustedError as error:
            if policy is None or policy.fail_policy.kind == FAIL_FAST:
                raise
            failures.append(
                TaskFailure(
                    key=name,
                    index=len(failures),
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=policy.retry.max_attempts,
                )
            )
            continue
        results[name] = result
        failures.extend(
            TaskFailure(
                key=f"{name}/{fold_failure.key}",
                index=fold_failure.index,
                error_type=fold_failure.error_type,
                message=fold_failure.message,
                attempts=fold_failure.attempts,
            )
            for fold_failure in result.failures
        )
    if not results:
        raise RetryExhaustedError(
            "every method's cross-validation failed; no comparison possible"
        )
    return ComparisonResult(
        results=results, n_folds=n_folds, failures=failures
    )

"""Side-by-side comparison of several learners (paper Section V-B, [23])."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.evaluation.crossval import (
    CrossValidationResult,
    EstimatorFactory,
    cross_validate,
)
from repro.evaluation.tables import render_table
from repro.errors import ConfigError


@dataclass
class ComparisonResult:
    """Cross-validation results per method name."""

    results: Dict[str, CrossValidationResult]
    n_folds: int

    def ranking(self, metric: str = "rae") -> List[str]:
        """Method names sorted best-first by a mean-over-folds metric.

        ``correlation`` ranks descending; error metrics rank ascending.
        """
        if metric not in ("correlation", "mae", "rae", "rmse", "rrse"):
            raise ConfigError(f"unknown metric {metric!r}")
        reverse = metric == "correlation"
        return sorted(
            self.results,
            key=lambda name: getattr(self.results[name].mean, metric),
            reverse=reverse,
        )

    def significance_against(
        self, reference: str, metric: str = "mae"
    ) -> Dict[str, "object"]:
        """Corrected paired t-test of every method against ``reference``.

        Returns method name -> :class:`PairedComparison` (the reference
        itself is omitted).  All methods in a comparison share folds, so
        the pairing is valid by construction.
        """
        from repro.evaluation.significance import paired_fold_test

        if reference not in self.results:
            raise ConfigError(f"unknown method {reference!r}")
        return {
            name: paired_fold_test(result, self.results[reference], metric)
            for name, result in self.results.items()
            if name != reference
        }

    def to_table(self) -> str:
        """A comparison table like the companion study's."""
        header = ["method", "C", "MAE", "RAE %", "RMSE", "RRSE %"]
        rows = []
        for name in self.ranking("rae"):
            mean = self.results[name].mean
            rows.append(
                [
                    name,
                    f"{mean.correlation:.4f}",
                    f"{mean.mae:.4f}",
                    f"{100 * mean.rae:.2f}",
                    f"{mean.rmse:.4f}",
                    f"{100 * mean.rrse:.2f}",
                ]
            )
        return render_table(header, rows)


def compare_estimators(
    factories: Mapping[str, EstimatorFactory],
    dataset: Dataset,
    n_folds: int = 10,
    seed: RandomState = 0,
    n_jobs: Optional[int] = None,
) -> ComparisonResult:
    """Cross-validate every factory on identical folds.

    Each method sees the same fold partition (the fold RNG is re-seeded
    per method from the same master), so differences are attributable to
    the learners alone.  ``n_jobs`` parallelizes each method's folds;
    results are bit-identical at any worker count.
    """
    if not factories:
        raise ConfigError("need at least one estimator factory")
    master = check_random_state(seed)
    fold_seed = int(master.integers(0, 2**31 - 1))
    results = {}
    for name, factory in factories.items():
        results[name] = cross_validate(
            factory, dataset, n_folds=n_folds, rng=fold_seed, n_jobs=n_jobs
        )
    return ComparisonResult(results=results, n_folds=n_folds)

"""K-fold cross validation (the paper's 10-fold protocol, [24]).

Every fold trains a fresh estimator on the other folds and predicts the
held-out one, so each instance is predicted by a model that never saw it
— the property the paper highlights for its Figure 3 scatter.

Folds are independent once the split assignment is fixed, so they can
run in parallel (``n_jobs``).  All randomness is resolved *before* any
fold runs: the fold assignment comes from the caller's ``rng`` and each
fold gets its own pre-spawned seed, which is why ``n_jobs=4`` returns
bit-identical predictions to a serial run.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.datasets.splits import kfold_splits
from repro.errors import ConfigError
from repro.evaluation.metrics import (
    EvaluationResult,
    evaluate_predictions,
    mean_result,
)
from repro.parallel import derive_fold_seeds, parallel_map

EstimatorFactory = Callable[..., object]


@dataclass
class CrossValidationResult:
    """Outcome of one cross-validation run.

    Attributes:
        folds: Per-fold metrics.
        mean: Metrics averaged over folds (the paper's headline numbers).
        pooled: Metrics computed once over all out-of-fold predictions.
        predictions: Out-of-fold prediction per dataset row, aligned with
            the input dataset (Figure 3's y-axis).
        actuals: The corresponding measured targets (Figure 3's x-axis).
    """

    folds: List[EvaluationResult]
    mean: EvaluationResult
    pooled: EvaluationResult
    predictions: np.ndarray
    actuals: np.ndarray

    @property
    def n_folds(self) -> int:
        return len(self.folds)

    def describe(self) -> str:
        lines = [f"{self.n_folds}-fold cross validation"]
        lines.append(f"  mean over folds: {self.mean.describe()}")
        lines.append(f"  pooled:          {self.pooled.describe()}")
        return "\n".join(lines)


def _wants_rng(factory: EstimatorFactory) -> bool:
    """Whether ``factory`` declares a required parameter for a fold RNG."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    for parameter in parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ) and parameter.default is inspect.Parameter.empty:
            return True
    return False


class _FoldTask:
    """One fold's fit-and-predict, self-contained and picklable.

    Holding the full dataset (instead of materialized subsets) keeps the
    pickled payload small-ish and lets the task slice locally.
    """

    def __init__(
        self,
        factory: EstimatorFactory,
        dataset: Dataset,
        pass_rng: bool,
    ) -> None:
        self.factory = factory
        self.dataset = dataset
        self.pass_rng = pass_rng

    def __call__(self, job) -> np.ndarray:
        train_idx, test_idx, fold_seed = job
        if self.pass_rng:
            estimator = self.factory(np.random.default_rng(fold_seed))
        else:
            estimator = self.factory()
        estimator.fit(self.dataset.subset(train_idx))  # type: ignore[attr-defined]
        return np.asarray(
            estimator.predict(self.dataset.X[test_idx])  # type: ignore[attr-defined]
        )


def cross_validate(
    factory: EstimatorFactory,
    dataset: Dataset,
    n_folds: int = 10,
    rng: RandomState = None,
    n_jobs: Optional[int] = None,
) -> CrossValidationResult:
    """Run k-fold CV of ``factory()`` estimators over ``dataset``.

    The factory must return a fresh unfitted estimator supporting
    ``fit(Dataset)`` and ``predict(X)`` (all learners in this package
    do).  A factory with one required positional parameter is instead
    called with a per-fold :class:`numpy.random.Generator`, pre-spawned
    from ``rng`` in fold order, so stochastic learners stay reproducible
    at any ``n_jobs``.

    Args:
        n_jobs: Fold-level parallelism — ``1`` serial (default), ``N``
            workers, ``-1`` all cores, ``None`` defers to ``REPRO_JOBS``.
            Serial and parallel runs return bit-identical results.
    """
    if n_folds > dataset.n_instances:
        raise ConfigError(
            f"cannot run {n_folds}-fold cross validation on "
            f"{dataset.n_instances} instances; every fold needs at least "
            f"one instance — reduce n_folds or supply more data"
        )
    generator = check_random_state(rng)
    splits = kfold_splits(dataset.n_instances, n_folds, generator)
    fold_seeds = derive_fold_seeds(generator if rng is not None else None, n_folds)
    task = _FoldTask(factory, dataset, pass_rng=_wants_rng(factory))
    jobs = [
        (train_idx, test_idx, seed)
        for (train_idx, test_idx), seed in zip(splits, fold_seeds)
    ]
    fold_predictions = parallel_map(task, jobs, n_jobs=n_jobs)

    predictions = np.empty(dataset.n_instances)
    fold_results: List[EvaluationResult] = []
    for (train_idx, test_idx), fold_pred in zip(splits, fold_predictions):
        predictions[test_idx] = fold_pred
        fold_results.append(evaluate_predictions(dataset.y[test_idx], fold_pred))
    return CrossValidationResult(
        folds=fold_results,
        mean=mean_result(fold_results),
        pooled=evaluate_predictions(dataset.y, predictions),
        predictions=predictions,
        actuals=dataset.y.copy(),
    )

"""K-fold cross validation (the paper's 10-fold protocol, [24]).

Every fold trains a fresh estimator on the other folds and predicts the
held-out one, so each instance is predicted by a model that never saw it
— the property the paper highlights for its Figure 3 scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.datasets.splits import kfold_splits
from repro.evaluation.metrics import (
    EvaluationResult,
    evaluate_predictions,
    mean_result,
)

EstimatorFactory = Callable[[], object]


@dataclass
class CrossValidationResult:
    """Outcome of one cross-validation run.

    Attributes:
        folds: Per-fold metrics.
        mean: Metrics averaged over folds (the paper's headline numbers).
        pooled: Metrics computed once over all out-of-fold predictions.
        predictions: Out-of-fold prediction per dataset row, aligned with
            the input dataset (Figure 3's y-axis).
        actuals: The corresponding measured targets (Figure 3's x-axis).
    """

    folds: List[EvaluationResult]
    mean: EvaluationResult
    pooled: EvaluationResult
    predictions: np.ndarray
    actuals: np.ndarray

    @property
    def n_folds(self) -> int:
        return len(self.folds)

    def describe(self) -> str:
        lines = [f"{self.n_folds}-fold cross validation"]
        lines.append(f"  mean over folds: {self.mean.describe()}")
        lines.append(f"  pooled:          {self.pooled.describe()}")
        return "\n".join(lines)


def cross_validate(
    factory: EstimatorFactory,
    dataset: Dataset,
    n_folds: int = 10,
    rng: RandomState = None,
) -> CrossValidationResult:
    """Run k-fold CV of ``factory()`` estimators over ``dataset``.

    The factory must return a fresh unfitted estimator supporting
    ``fit(Dataset)`` and ``predict(X)`` (all learners in this package do).
    """
    generator = check_random_state(rng)
    splits = kfold_splits(dataset.n_instances, n_folds, generator)
    predictions = np.empty(dataset.n_instances)
    fold_results: List[EvaluationResult] = []
    for train_idx, test_idx in splits:
        estimator = factory()
        estimator.fit(dataset.subset(train_idx))  # type: ignore[attr-defined]
        fold_pred = np.asarray(
            estimator.predict(dataset.X[test_idx])  # type: ignore[attr-defined]
        )
        predictions[test_idx] = fold_pred
        fold_results.append(evaluate_predictions(dataset.y[test_idx], fold_pred))
    return CrossValidationResult(
        folds=fold_results,
        mean=mean_result(fold_results),
        pooled=evaluate_predictions(dataset.y, predictions),
        predictions=predictions,
        actuals=dataset.y.copy(),
    )

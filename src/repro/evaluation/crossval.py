"""K-fold cross validation (the paper's 10-fold protocol, [24]).

Every fold trains a fresh estimator on the other folds and predicts the
held-out one, so each instance is predicted by a model that never saw it
— the property the paper highlights for its Figure 3 scatter.

Folds are independent once the split assignment is fixed, so they can
run in parallel (``n_jobs``).  All randomness is resolved *before* any
fold runs: the fold assignment comes from the caller's ``rng`` and each
fold gets its own pre-spawned seed, which is why ``n_jobs=4`` returns
bit-identical predictions to a serial run.

The same pre-resolution makes folds *restartable*: with a
:class:`~repro.resilience.RunPolicy` carrying a checkpoint store, every
completed fold is persisted as it finishes and a resumed run recomputes
only the missing ones — bit-identical to an uninterrupted run.  Failing
folds are retried with backoff and, under a capturing failure policy,
recorded as :class:`~repro.resilience.TaskFailure` entries in
``result.failures`` instead of aborting the run.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.datasets.splits import kfold_splits
from repro.errors import ConfigError, RetryExhaustedError
from repro.evaluation.metrics import (
    EvaluationResult,
    evaluate_predictions,
    mean_result,
)
from repro.parallel import derive_fold_seeds, parallel_map
from repro.resilience import RunPolicy, TaskFailure
from repro.resilience.faults import maybe_inject

EstimatorFactory = Callable[..., object]


@dataclass
class CrossValidationResult:
    """Outcome of one cross-validation run.

    Attributes:
        folds: Per-fold metrics (completed folds only).
        mean: Metrics averaged over completed folds (the paper's
            headline numbers).
        pooled: Metrics computed once over all out-of-fold predictions.
        predictions: Out-of-fold prediction per dataset row, aligned with
            the input dataset (Figure 3's y-axis).  Rows belonging to a
            failed fold hold NaN.
        actuals: The corresponding measured targets (Figure 3's x-axis).
        failures: Folds that exhausted their retries under a capturing
            failure policy (empty on a clean or policy-free run).
    """

    folds: List[EvaluationResult]
    mean: EvaluationResult
    pooled: EvaluationResult
    predictions: np.ndarray
    actuals: np.ndarray
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def n_folds(self) -> int:
        return len(self.folds)

    def describe(self) -> str:
        lines = [f"{self.n_folds}-fold cross validation"]
        lines.append(f"  mean over folds: {self.mean.describe()}")
        lines.append(f"  pooled:          {self.pooled.describe()}")
        for failure in self.failures:
            lines.append(f"  FAILED {failure.render()}")
        return "\n".join(lines)


def _wants_rng(factory: EstimatorFactory) -> bool:
    """Whether ``factory`` declares a required parameter for a fold RNG."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    for parameter in parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ) and parameter.default is inspect.Parameter.empty:
            return True
    return False


class _FoldTask:
    """One fold's fit-and-predict, self-contained and picklable.

    Holding the full dataset (instead of materialized subsets) keeps the
    pickled payload small-ish and lets the task slice locally.
    """

    def __init__(
        self,
        factory: EstimatorFactory,
        dataset: Dataset,
        pass_rng: bool,
    ) -> None:
        self.factory = factory
        self.dataset = dataset
        self.pass_rng = pass_rng

    def __call__(self, job) -> np.ndarray:
        fold_index, train_idx, test_idx, fold_seed = job
        maybe_inject("fold", f"fold-{fold_index:03d}")
        if self.pass_rng:
            estimator = self.factory(np.random.default_rng(fold_seed))
        else:
            estimator = self.factory()
        estimator.fit(self.dataset.subset(train_idx))  # type: ignore[attr-defined]
        return np.asarray(
            estimator.predict(self.dataset.X[test_idx])  # type: ignore[attr-defined]
        )


class _CheckpointedFoldTask:
    """A fold task that persists its prediction as soon as it succeeds.

    Writing from inside the task (in whatever worker runs it) is what
    makes a killed run resumable: every fold that finished before the
    kill is already durable.
    """

    def __init__(self, inner: _FoldTask, store, run_key: str) -> None:
        self.inner = inner
        self.store = store
        self.run_key = run_key

    def __call__(self, job) -> np.ndarray:
        fold_index = job[0]
        prediction = self.inner(job)
        self.store.store(
            self.run_key,
            f"fold-{fold_index:03d}",
            {"fold": fold_index, "predictions": prediction},
        )
        return prediction


def cross_validate(
    factory: EstimatorFactory,
    dataset: Dataset,
    n_folds: int = 10,
    rng: RandomState = None,
    n_jobs: Optional[int] = None,
    policy: Optional[RunPolicy] = None,
) -> CrossValidationResult:
    """Run k-fold CV of ``factory()`` estimators over ``dataset``.

    The factory must return a fresh unfitted estimator supporting
    ``fit(Dataset)`` and ``predict(X)`` (all learners in this package
    do).  A factory with one required positional parameter is instead
    called with a per-fold :class:`numpy.random.Generator`, pre-spawned
    from ``rng`` in fold order, so stochastic learners stay reproducible
    at any ``n_jobs``.

    Args:
        n_jobs: Fold-level parallelism — ``1`` serial (default), ``N``
            workers, ``-1`` all cores, ``None`` defers to ``REPRO_JOBS``.
            Serial and parallel runs return bit-identical results.
        policy: Optional :class:`~repro.resilience.RunPolicy`.  Adds
            per-fold retries/timeouts, failure-policy handling, and —
            with a checkpoint store — durable per-fold results that a
            ``resume`` run reuses.  ``None`` keeps the historical
            fail-on-first-error behavior exactly.
    """
    if n_folds > dataset.n_instances:
        raise ConfigError(
            f"cannot run {n_folds}-fold cross validation on "
            f"{dataset.n_instances} instances; every fold needs at least "
            f"one instance — reduce n_folds or supply more data"
        )
    generator = check_random_state(rng)
    splits = kfold_splits(dataset.n_instances, n_folds, generator)
    fold_seeds = derive_fold_seeds(generator if rng is not None else None, n_folds)
    task = _FoldTask(factory, dataset, pass_rng=_wants_rng(factory))
    jobs = [
        (index, train_idx, test_idx, seed)
        for index, ((train_idx, test_idx), seed) in enumerate(
            zip(splits, fold_seeds)
        )
    ]

    if policy is None:
        fold_predictions: List[Optional[np.ndarray]] = list(
            parallel_map(task, jobs, n_jobs=n_jobs)
        )
        failures: List[TaskFailure] = []
    else:
        fold_predictions, failures = _run_folds_with_policy(
            task, jobs, n_folds, n_jobs, policy
        )

    predictions = np.full(dataset.n_instances, np.nan)
    fold_results: List[EvaluationResult] = []
    for (train_idx, test_idx), fold_pred in zip(splits, fold_predictions):
        if fold_pred is None:
            continue
        predictions[test_idx] = fold_pred
        fold_results.append(evaluate_predictions(dataset.y[test_idx], fold_pred))
    if not fold_results:
        raise RetryExhaustedError(
            f"all {n_folds} cross-validation folds failed; "
            "no metrics can be computed"
        )
    covered = np.isfinite(predictions)
    return CrossValidationResult(
        folds=fold_results,
        mean=mean_result(fold_results),
        pooled=evaluate_predictions(
            dataset.y[covered], predictions[covered]
        ),
        predictions=predictions,
        actuals=dataset.y.copy(),
        failures=failures,
    )


def _run_folds_with_policy(
    task: _FoldTask,
    jobs: List[tuple],
    n_folds: int,
    n_jobs: Optional[int],
    policy: RunPolicy,
) -> tuple:
    """Execute folds under a :class:`RunPolicy`.

    Returns ``(per-fold predictions or None, failures)`` with one entry
    per fold in fold order.
    """
    unit_names = [f"fold-{index:03d}" for index in range(n_folds)]
    predictions: List[Optional[np.ndarray]] = [None] * n_folds
    run_task = task
    if policy.checkpointing:
        assert policy.checkpoint is not None
        run_key = policy.require_run_key()
        if policy.resume:
            for index, unit in enumerate(unit_names):
                payload = policy.checkpoint.load(run_key, unit)
                if payload is not None:
                    predictions[index] = np.asarray(
                        payload["predictions"], dtype=np.float64
                    )
        run_task = _CheckpointedFoldTask(task, policy.checkpoint, run_key)
    pending = [i for i in range(n_folds) if predictions[i] is None]
    outcomes = parallel_map(
        run_task,
        [jobs[i] for i in pending],
        n_jobs=n_jobs,
        retry=policy.retry,
        fail_policy=policy.fail_policy,
        task_timeout=policy.task_timeout,
        keys=[unit_names[i] for i in pending],
    )
    failures: List[TaskFailure] = []
    for fold_index, outcome in zip(pending, outcomes):
        if isinstance(outcome, TaskFailure):
            failures.append(outcome)
        else:
            predictions[fold_index] = np.asarray(outcome, dtype=np.float64)
    return predictions, failures

"""Evaluation: the paper's metrics and 10-fold cross validation."""

from repro.evaluation.metrics import (
    EvaluationResult,
    correlation_coefficient,
    evaluate_predictions,
    mean_absolute_error,
    relative_absolute_error,
    root_mean_squared_error,
    root_relative_squared_error,
)
from repro.evaluation.crossval import CrossValidationResult, cross_validate
from repro.evaluation.comparison import ComparisonResult, compare_estimators
from repro.evaluation.significance import (
    PairedComparison,
    naive_paired_ttest,
    paired_fold_test,
)
from repro.evaluation.learning_curve import (
    LearningCurve,
    LearningCurvePoint,
    learning_curve,
)
from repro.evaluation.residuals import ResidualGroup, ResidualReport, residual_report
from repro.evaluation.tables import render_table

__all__ = [
    "ComparisonResult",
    "CrossValidationResult",
    "EvaluationResult",
    "LearningCurve",
    "LearningCurvePoint",
    "PairedComparison",
    "ResidualGroup",
    "ResidualReport",
    "compare_estimators",
    "correlation_coefficient",
    "cross_validate",
    "evaluate_predictions",
    "learning_curve",
    "naive_paired_ttest",
    "paired_fold_test",
    "mean_absolute_error",
    "relative_absolute_error",
    "render_table",
    "residual_report",
    "root_mean_squared_error",
    "root_relative_squared_error",
]

"""Paired significance testing for cross-validated comparisons.

WEKA-era methodology compares learners with a paired t-test over fold
errors.  The naive paired test is optimistic because CV folds share
training data; Nadeau & Bengio's *corrected resampled t-test* inflates
the variance by ``1/k + n_test/n_train`` to compensate, and is the
standard used by WEKA's experimenter.  We implement both and use the
corrected one by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigError, DataError
from repro.evaluation.crossval import CrossValidationResult


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired test between two learners' fold errors.

    Attributes:
        metric: Which fold metric was compared (e.g. ``"mae"``).
        mean_difference: mean(A − B); negative means A is better for
            error metrics.
        t_statistic / p_value: Two-sided test of mean difference = 0.
        corrected: Whether the Nadeau–Bengio variance correction applied.
        n_folds: Number of paired observations.
    """

    metric: str
    mean_difference: float
    t_statistic: float
    p_value: float
    corrected: bool
    n_folds: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def describe(self) -> str:
        marker = "significant" if self.significant() else "not significant"
        kind = "corrected " if self.corrected else ""
        return (
            f"mean d({self.metric}) = {self.mean_difference:+.4f}, "
            f"{kind}paired t = {self.t_statistic:.3f}, p = {self.p_value:.4f} "
            f"({marker} at 0.05, k = {self.n_folds})"
        )


def paired_fold_test(
    a: CrossValidationResult,
    b: CrossValidationResult,
    metric: str = "mae",
    test_fraction: float | None = None,
) -> PairedComparison:
    """Corrected resampled paired t-test between two CV results.

    Both results must come from the same folds (use
    :func:`repro.evaluation.compare_estimators`, which guarantees it, or
    pass the same ``rng`` to both :func:`cross_validate` calls).

    Args:
        metric: Fold metric to compare (``mae``, ``rae``, ``rmse``,
            ``rrse``, or ``correlation``).
        test_fraction: ``n_test / n_train`` for the correction; defaults
            to ``1 / (k - 1)``, exact for k-fold CV.
    """
    if metric not in ("mae", "rae", "rmse", "rrse", "correlation"):
        raise ConfigError(f"unknown metric {metric!r}")
    if a.n_folds != b.n_folds:
        raise DataError("results have different fold counts")
    k = a.n_folds
    if k < 2:
        raise DataError("need at least two folds")
    values_a = np.array([getattr(fold, metric) for fold in a.folds])
    values_b = np.array([getattr(fold, metric) for fold in b.folds])
    differences = values_a - values_b

    mean = float(differences.mean())
    variance = float(differences.var(ddof=1))
    if variance <= 0:
        # Identical per-fold results: no evidence of a difference.
        return PairedComparison(metric, mean, 0.0, 1.0, True, k)

    if test_fraction is None:
        test_fraction = 1.0 / (k - 1)
    corrected_variance = variance * (1.0 / k + test_fraction)
    t_statistic = mean / np.sqrt(corrected_variance)
    p_value = float(2.0 * stats.t.sf(abs(t_statistic), df=k - 1))
    return PairedComparison(
        metric=metric,
        mean_difference=mean,
        t_statistic=float(t_statistic),
        p_value=p_value,
        corrected=True,
        n_folds=k,
    )


def naive_paired_ttest(
    a: CrossValidationResult, b: CrossValidationResult, metric: str = "mae"
) -> PairedComparison:
    """The classical (uncorrected, optimistic) paired t-test — for reference."""
    if metric not in ("mae", "rae", "rmse", "rrse", "correlation"):
        raise ConfigError(f"unknown metric {metric!r}")
    if a.n_folds != b.n_folds:
        raise DataError("results have different fold counts")
    values_a = np.array([getattr(fold, metric) for fold in a.folds])
    values_b = np.array([getattr(fold, metric) for fold in b.folds])
    statistic, p_value = stats.ttest_rel(values_a, values_b)
    if np.isnan(statistic):
        statistic, p_value = 0.0, 1.0
    return PairedComparison(
        metric=metric,
        mean_difference=float((values_a - values_b).mean()),
        t_statistic=float(statistic),
        p_value=float(p_value),
        corrected=False,
        n_folds=a.n_folds,
    )

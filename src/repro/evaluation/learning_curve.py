"""Learning curves: accuracy as a function of training-set size.

The paper fixes its dataset and tunes `min_instances`; the complementary
question — how much *data* the method needs before the class structure
stabilizes — is answered by a learning curve: train on growing random
subsets, always evaluate on one held-out test split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.datasets.splits import train_test_split
from repro.errors import ConfigError
from repro.evaluation.metrics import EvaluationResult, evaluate_predictions
from repro.evaluation.tables import render_table

EstimatorFactory = Callable[[], object]


@dataclass(frozen=True)
class LearningCurvePoint:
    """Evaluation of one training-set size."""

    n_train: int
    result: EvaluationResult


@dataclass
class LearningCurve:
    """All points of one learning-curve sweep, ascending in size."""

    points: List[LearningCurvePoint]
    n_test: int

    def to_table(self) -> str:
        rows = [
            [
                str(point.n_train),
                f"{point.result.correlation:.4f}",
                f"{point.result.mae:.4f}",
                f"{100 * point.result.rae:.2f}",
            ]
            for point in self.points
        ]
        return render_table(["n_train", "C", "MAE", "RAE %"], rows)

    def converged(self, tolerance: float = 0.02) -> bool:
        """True when the last doubling improved RAE by under ``tolerance``."""
        if len(self.points) < 2:
            return False
        return (
            self.points[-2].result.rae - self.points[-1].result.rae
        ) < tolerance


def learning_curve(
    factory: EstimatorFactory,
    dataset: Dataset,
    fractions: Optional[Sequence[float]] = None,
    test_fraction: float = 0.25,
    rng: RandomState = None,
) -> LearningCurve:
    """Sweep training-set size against one fixed held-out test split.

    Args:
        factory: Returns a fresh unfitted estimator per point.
        fractions: Shares of the training pool to use, ascending
            (default: 1/8, 1/4, 1/2, 1).
        test_fraction: Held-out share, fixed across all points.
    """
    fractions = list(fractions) if fractions is not None else [0.125, 0.25, 0.5, 1.0]
    if not fractions or any(not 0.0 < f <= 1.0 for f in fractions):
        raise ConfigError("fractions must lie in (0, 1]")
    if sorted(fractions) != fractions:
        raise ConfigError("fractions must be ascending")
    generator = check_random_state(rng)
    pool, test = train_test_split(dataset, test_fraction, rng=generator)

    points: List[LearningCurvePoint] = []
    for fraction in fractions:
        n_train = max(2, int(round(pool.n_instances * fraction)))
        subset = pool.subset(generator.permutation(pool.n_instances)[:n_train])
        estimator = factory()
        estimator.fit(subset)  # type: ignore[attr-defined]
        predictions = estimator.predict(test.X)  # type: ignore[attr-defined]
        points.append(
            LearningCurvePoint(
                n_train=n_train,
                result=evaluate_predictions(test.y, predictions),
            )
        )
    return LearningCurve(points=points, n_test=test.n_instances)

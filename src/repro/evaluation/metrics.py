"""Prediction-quality metrics.

The paper reports three (Section V-B): the correlation coefficient C,
the mean absolute error MAE, and the relative absolute error RAE — the
total absolute error normalized by that of always predicting the mean.
RMSE and RRSE are included because the companion comparison study [23]
uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DataError


def _validate(y_true: Sequence, y_pred: Sequence):
    actual = np.asarray(y_true, dtype=np.float64).ravel()
    predicted = np.asarray(y_pred, dtype=np.float64).ravel()
    if actual.shape != predicted.shape:
        raise DataError(
            f"y_true has {actual.shape[0]} values, y_pred {predicted.shape[0]}"
        )
    if actual.size == 0:
        raise DataError("metrics need at least one prediction")
    return actual, predicted


def correlation_coefficient(y_true: Sequence, y_pred: Sequence) -> float:
    """Pearson correlation between actual and predicted values.

    Degenerate (zero-variance) inputs return 0 rather than NaN, the
    conservative reading for a useless predictor.
    """
    actual, predicted = _validate(y_true, y_pred)
    if np.std(actual) <= 1e-15 or np.std(predicted) <= 1e-15:
        return 0.0
    return float(np.corrcoef(actual, predicted)[0, 1])


def mean_absolute_error(y_true: Sequence, y_pred: Sequence) -> float:
    actual, predicted = _validate(y_true, y_pred)
    return float(np.mean(np.abs(actual - predicted)))


def relative_absolute_error(y_true: Sequence, y_pred: Sequence) -> float:
    """Total |error| relative to the mean predictor's, as a fraction.

    A value of 0.0783 corresponds to the paper's "7.83 %".
    """
    actual, predicted = _validate(y_true, y_pred)
    baseline = np.sum(np.abs(actual - np.mean(actual)))
    if baseline <= 1e-300:
        raise DataError("RAE is undefined on a constant target")
    return float(np.sum(np.abs(actual - predicted)) / baseline)


def root_mean_squared_error(y_true: Sequence, y_pred: Sequence) -> float:
    actual, predicted = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def root_relative_squared_error(y_true: Sequence, y_pred: Sequence) -> float:
    actual, predicted = _validate(y_true, y_pred)
    baseline = np.sum((actual - np.mean(actual)) ** 2)
    if baseline <= 1e-300:
        raise DataError("RRSE is undefined on a constant target")
    return float(np.sqrt(np.sum((actual - predicted) ** 2) / baseline))


@dataclass(frozen=True)
class EvaluationResult:
    """All five metrics for one evaluation.

    Attributes mirror the paper's notation: ``correlation`` is C,
    ``mae`` is MAE, ``rae`` is RAE *as a fraction* (0.0783 = 7.83 %).
    """

    correlation: float
    mae: float
    rae: float
    rmse: float
    rrse: float
    n: int

    def describe(self) -> str:
        return (
            f"C={self.correlation:.4f}  MAE={self.mae:.4f}  "
            f"RAE={100 * self.rae:.2f}%  RMSE={self.rmse:.4f}  "
            f"RRSE={100 * self.rrse:.2f}%  (n={self.n})"
        )

    def to_dict(self) -> dict:
        """Plain-JSON form for machine-readable reporting."""
        return {
            "correlation": self.correlation,
            "mae": self.mae,
            "rae": self.rae,
            "rmse": self.rmse,
            "rrse": self.rrse,
            "n": self.n,
        }


def evaluate_predictions(y_true: Sequence, y_pred: Sequence) -> EvaluationResult:
    """Compute every metric at once."""
    actual, predicted = _validate(y_true, y_pred)
    return EvaluationResult(
        correlation=correlation_coefficient(actual, predicted),
        mae=mean_absolute_error(actual, predicted),
        rae=relative_absolute_error(actual, predicted),
        rmse=root_mean_squared_error(actual, predicted),
        rrse=root_relative_squared_error(actual, predicted),
        n=int(actual.size),
    )


def mean_result(results: Sequence[EvaluationResult]) -> EvaluationResult:
    """Average metrics over folds, as the paper does for its 10-fold CV."""
    if not results:
        raise DataError("cannot average zero evaluation results")
    return EvaluationResult(
        correlation=float(np.mean([r.correlation for r in results])),
        mae=float(np.mean([r.mae for r in results])),
        rae=float(np.mean([r.rae for r in results])),
        rmse=float(np.mean([r.rmse for r in results])),
        rrse=float(np.mean([r.rrse for r in results])),
        n=int(sum(r.n for r in results)),
    )

"""Fixed-width text tables for reports and benchmark output."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import DataError


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a left-aligned fixed-width table with a separator rule."""
    if not header:
        raise DataError("table needs a header")
    for row in rows:
        if len(row) != len(header):
            raise DataError(
                f"row has {len(row)} cells but header has {len(header)}"
            )
    columns = [list(col) for col in zip(header, *rows)] if rows else [
        [h] for h in header
    ]
    widths = [max(len(str(cell)) for cell in col) for col in columns]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines: List[str] = [fmt(header), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)

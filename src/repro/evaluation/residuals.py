"""Residual analysis: where does a performance model err?

After validating a model globally, the next question is *where* the
error lives — which workloads, which classes, and with what bias.  A
systematic positive bias on one class means its leaf model understates
an effect; error concentrated in one workload means its behaviour is
under-represented in training.  `residual_report` breaks out-of-fold (or
plain) predictions down both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import DataError
from repro.evaluation.tables import render_table


@dataclass(frozen=True)
class ResidualGroup:
    """Residual statistics of one group (a workload or a tree class)."""

    name: str
    n: int
    mean_actual: float
    bias: float          # mean(predicted - actual): +ve = overestimates
    mae: float
    worst: float         # largest |residual|

    @property
    def relative_mae(self) -> float:
        return self.mae / self.mean_actual if self.mean_actual else float("inf")


@dataclass
class ResidualReport:
    """Residual breakdown by workload and (optionally) by tree class."""

    overall: ResidualGroup
    by_workload: List[ResidualGroup]
    by_leaf: List[ResidualGroup]

    def worst_workload(self) -> Optional[ResidualGroup]:
        if not self.by_workload:
            return None
        return max(self.by_workload, key=lambda group: group.relative_mae)

    def biased_groups(self, threshold: float = 0.15) -> List[ResidualGroup]:
        """Groups whose |bias| exceeds ``threshold`` of their mean target."""
        suspicious = []
        for group in self.by_workload + self.by_leaf:
            if group.mean_actual and abs(group.bias) > threshold * group.mean_actual:
                suspicious.append(group)
        return suspicious

    def render(self) -> str:
        def rows_for(groups: Sequence[ResidualGroup]) -> List[List[str]]:
            return [
                [
                    group.name,
                    str(group.n),
                    f"{group.mean_actual:.3f}",
                    f"{group.bias:+.3f}",
                    f"{group.mae:.3f}",
                    f"{100 * group.relative_mae:.1f}",
                    f"{group.worst:.3f}",
                ]
                for group in groups
            ]

        header = ["group", "n", "mean", "bias", "MAE", "rel %", "worst"]
        lines = [
            "overall: "
            f"n={self.overall.n}  bias={self.overall.bias:+.4f}  "
            f"MAE={self.overall.mae:.4f}",
        ]
        if self.by_workload:
            lines += ["", "by workload:", render_table(header, rows_for(self.by_workload))]
        if self.by_leaf:
            lines += ["", "by tree class:", render_table(header, rows_for(self.by_leaf))]
        return "\n".join(lines)


def _group(name: str, actual: np.ndarray, predicted: np.ndarray) -> ResidualGroup:
    residual = predicted - actual
    return ResidualGroup(
        name=name,
        n=int(actual.size),
        mean_actual=float(actual.mean()),
        bias=float(residual.mean()),
        mae=float(np.abs(residual).mean()),
        worst=float(np.abs(residual).max()),
    )


def residual_report(
    dataset: Dataset,
    predictions: Sequence[float],
    model=None,
) -> ResidualReport:
    """Break residuals down by workload and, if a tree is given, by class.

    Args:
        dataset: The evaluated sections (uses its ``workload`` metadata
            when present).
        predictions: One prediction per section — typically the
            out-of-fold predictions of
            :func:`repro.evaluation.cross_validate`.
        model: Optional fitted :class:`repro.core.tree.M5Prime`; adds the
            per-class breakdown via its leaf assignments.
    """
    predicted = np.asarray(predictions, dtype=np.float64).ravel()
    if predicted.shape[0] != dataset.n_instances:
        raise DataError(
            f"{predicted.shape[0]} predictions for {dataset.n_instances} sections"
        )
    overall = _group("overall", dataset.y, predicted)

    by_workload: List[ResidualGroup] = []
    if "workload" in dataset.meta:
        labels = dataset.meta["workload"]
        for name in sorted(np.unique(labels).tolist()):
            mask = labels == name
            by_workload.append(_group(str(name), dataset.y[mask], predicted[mask]))

    by_leaf: List[ResidualGroup] = []
    if model is not None:
        ids = model.leaf_ids(dataset.X)
        for leaf in sorted(np.unique(ids).tolist()):
            mask = ids == leaf
            by_leaf.append(_group(f"LM{leaf}", dataset.y[mask], predicted[mask]))

    return ResidualReport(overall=overall, by_workload=by_workload, by_leaf=by_leaf)

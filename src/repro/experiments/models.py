"""Shared fitted models for the experiment modules.

Fitting the paper-regime tree is seconds of work repeated by every
experiment and benchmark session; fitted models are therefore memoized
in-process and persisted as JSON in the artifact cache, keyed by the
dataset identity plus the tree parameters that shape the fit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.tree import M5Prime
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import (
    artifact_cache,
    experiment_fingerprint,
    suite_dataset,
)

_FITTED: Dict[Tuple, M5Prime] = {}


def fitted_tree(config: Optional[ExperimentConfig] = None) -> M5Prime:
    """The M5' tree fitted on the config's suite dataset (memoized).

    With ``use_cache`` enabled the fitted model is also stored as JSON
    in the artifact cache, so benchmark sessions skip refitting.
    """
    cfg = config or ExperimentConfig.quick()
    key = experiment_fingerprint(cfg) + (cfg.min_instances,)
    if key in _FITTED:
        return _FITTED[key]

    cache = artifact_cache() if cfg.use_cache else None
    if cache is not None:
        cached = cache.load_model(key)
        if cached is not None:
            _FITTED[key] = cached
            return cached

    dataset = suite_dataset(cfg)
    model = M5Prime(min_instances=cfg.min_instances)
    model.fit(dataset)
    if cache is not None:
        cache.store_model(key, model)
    _FITTED[key] = model
    return model

"""Shared fitted models for the experiment modules."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.tree import M5Prime
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset

_FITTED: Dict[Tuple, M5Prime] = {}


def fitted_tree(config: Optional[ExperimentConfig] = None) -> M5Prime:
    """The M5' tree fitted on the config's suite dataset (memoized)."""
    cfg = config or ExperimentConfig.quick()
    key = cfg.cache_key() + (cfg.min_instances,)
    if key not in _FITTED:
        dataset = suite_dataset(cfg)
        model = M5Prime(min_instances=cfg.min_instances)
        model.fit(dataset)
        _FITTED[key] = model
    return _FITTED[key]

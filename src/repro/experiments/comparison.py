"""R2 — method comparison: M5' vs ANN, SVM, CART, OLS, k-NN, naive.

The paper (and its companion study [23]) reports the ANN slightly ahead
(C = 0.99), the SVM on par (C = 0.98), and argues M5' wins on
interpretability at competitive accuracy.  The reproduction checks the
ordering: black-box methods comparable to M5'; piecewise-constant CART
and global OLS behind it; the fixed-penalty model far behind everything.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import (
    EpsilonSVR,
    KNNRegressor,
    LinearRegressionBaseline,
    MLPRegressor,
    NaiveFixedPenaltyModel,
    RegressionTree,
)
from repro.core.tree import M5Prime
from repro.evaluation import compare_estimators
from repro.experiments import paper
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.report import ExperimentReport


def estimator_factories(cfg: ExperimentConfig):
    """The comparison field, everything built from scratch in-package."""
    return {
        "M5P model tree": lambda: M5Prime(min_instances=cfg.min_instances),
        "ANN (MLP)": lambda: MLPRegressor(
            hidden=(48, 24), epochs=150, seed=cfg.seed
        ),
        "SVM (eps-SVR)": lambda: EpsilonSVR(C=20.0, epsilon=0.02, seed=cfg.seed),
        "CART reg. tree": lambda: RegressionTree(min_instances=cfg.min_instances),
        "linear regression": LinearRegressionBaseline,
        "k-NN (k=5)": lambda: KNNRegressor(k=5),
        "naive fixed penalty": NaiveFixedPenaltyModel,
    }


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    comparison = compare_estimators(
        estimator_factories(cfg), dataset, n_folds=cfg.n_folds, seed=cfg.seed
    )
    results = comparison.results
    c = {name: results[name].mean.correlation for name in results}
    rae = {name: results[name].mean.rae for name in results}
    significance = comparison.significance_against("M5P model tree", metric="mae")
    naive_test = significance["naive fixed penalty"]

    tree_c = c["M5P model tree"]
    return ExperimentReport(
        experiment_id="R2",
        title="Comparison with other regression methods",
        paper_claim=(
            f"ANN C = {paper.ANN_CORRELATION}, SVM C = "
            f"{paper.SVM_CORRELATION}, both comparable to M5' (C = "
            f"{paper.CORRELATION}) but uninterpretable; CART is known to "
            "trail model trees"
        ),
        measured={
            **{
                name: f"C={c[name]:.4f}  RAE={100 * rae[name]:.1f}%"
                for name in comparison.ranking("correlation")
            },
            "naive vs tree": naive_test.describe(),
        },
        checks={
            "ANN within 0.02 correlation of M5'": abs(c["ANN (MLP)"] - tree_c)
            <= 0.02,
            "SVM within 0.03 correlation of M5'": abs(c["SVM (eps-SVR)"] - tree_c)
            <= 0.03,
            "M5' beats CART": rae["M5P model tree"] < rae["CART reg. tree"],
            "M5' beats global linear regression": rae["M5P model tree"]
            < rae["linear regression"],
            "naive fixed-penalty model is the worst": comparison.ranking("rae")[-1]
            == "naive fixed penalty",
            "naive's deficit is statistically significant": (
                naive_test.significant() and naive_test.mean_difference > 0
            ),
        },
        body=comparison.to_table(),
    )

"""Extension experiments beyond the paper's evaluation.

The paper's introduction names two further uses of counter-based
performance models — "compare the performance behaviors of various
platforms or even ... help design new platforms" — and its phase
assumption rests on Sherwood-style phase tracking.  Neither is
evaluated in the paper; both are built here on the same substrate:

* **E1 — platform comparison**: re-run the suite on modified machines
  (double L2, better branch predictor, no prefetcher) and compare the
  per-workload CPI and the per-machine trees' root decisions.
* **E2 — phase tracking**: recover a two-phase workload's phase
  boundary purely from counters, via tree-class segmentation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.analysis.phasetrack import detect_phases, render_phases
from repro.evaluation.tables import render_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.models import fitted_tree
from repro.experiments.report import ExperimentReport
from repro.simulator.config import CacheConfig, MachineConfig
from repro.workloads.suite import simulate_suite


def _platform_variants() -> Dict[str, MachineConfig]:
    base = MachineConfig()
    return {
        "core2duo (base)": base,
        "8MB L2": dataclasses.replace(
            base, l2=CacheConfig(8 * 1024 * 1024, 16)
        ),
        "no prefetcher": dataclasses.replace(base, prefetch_next_line=False),
        "16-bit gshare": dataclasses.replace(base, branch_history_bits=16),
    }


def run_platform_comparison(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentReport:
    """E1: the same workloads across machine variants."""
    cfg = config or ExperimentConfig.quick()
    sections = max(cfg.sections_per_workload // 4, 8)
    results = {}
    for name, machine in _platform_variants().items():
        results[name] = simulate_suite(
            sections_per_workload=sections,
            instructions_per_section=cfg.instructions_per_section,
            config=machine,
            seed=cfg.seed,
            jitter=cfg.jitter,
        )

    workloads = sorted(results["core2duo (base)"].cpi_by_workload)
    rows = []
    for workload in workloads:
        rows.append(
            [workload]
            + [f"{results[m].cpi_by_workload[workload]:.2f}" for m in results]
        )
    table = render_table(["workload"] + list(results), rows)

    base = results["core2duo (base)"].cpi_by_workload
    big_l2 = results["8MB L2"].cpi_by_workload
    no_prefetch = results["no prefetcher"].cpi_by_workload

    mean = lambda cpis: float(np.mean(list(cpis.values())))  # noqa: E731
    return ExperimentReport(
        experiment_id="E1",
        title="Extension: platform comparison",
        paper_claim="counter-based models 'can also be used to compare the "
        "performance behaviors of various platforms' (Section I)",
        measured={
            "mean CPI (base)": f"{mean(base):.2f}",
            "mean CPI (8MB L2)": f"{mean(big_l2):.2f}",
            "mean CPI (no prefetcher)": f"{mean(no_prefetch):.2f}",
            "mcf speedup from 8MB L2": (
                f"{base['mcf_like'] / big_l2['mcf_like']:.2f}x"
            ),
            "libq slowdown without prefetcher": (
                f"{no_prefetch['libq_like'] / base['libq_like']:.2f}x"
            ),
        },
        checks={
            "bigger L2 helps the L2-bound workload": (
                big_l2["mcf_like"] < base["mcf_like"]
            ),
            "bigger L2 leaves the cache-resident workload alone": (
                abs(big_l2["calm_like"] - base["calm_like"])
                < 0.15 * base["calm_like"]
            ),
            "removing the prefetcher hurts streaming most": (
                no_prefetch["libq_like"] / base["libq_like"]
                > no_prefetch["calm_like"] / base["calm_like"]
            ),
        },
        body=table,
    )


def run_phase_tracking(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentReport:
    """E2: recover a known phase boundary from counters alone."""
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    model = fitted_tree(cfg)

    workload = "mcf_like"  # 75/25 two-phase schedule by construction
    mask = dataset.meta["workload"] == workload
    timeline = dataset.subset(mask)
    order = np.argsort(timeline.meta["section"].astype(int))
    timeline = timeline.subset(order)

    segments = detect_phases(model, timeline, smoothing_window=7, min_segment=3)
    true_boundary = int(0.75 * timeline.n_instances)
    # The detected boundary nearest the true one.
    cuts = [segment.start for segment in segments[1:]]
    nearest = min(cuts, key=lambda c: abs(c - true_boundary)) if cuts else -1
    tolerance = max(3, timeline.n_instances // 10)

    true_phases = timeline.meta["phase"].astype(int)
    return ExperimentReport(
        experiment_id="E2",
        title="Extension: phase tracking from counters",
        paper_claim="workloads 'in general may embody multiple phases or "
        "classes of behavior' (Section III, citing [7]); classes are "
        "recoverable from counters",
        measured={
            "workload": workload,
            "true boundary (section)": str(true_boundary),
            "nearest detected boundary": str(nearest),
            "segments": str(len(segments)),
            "true phases": str(len(set(true_phases.tolist()))),
        },
        checks={
            "multiple phases detected": len(segments) >= 2,
            "a boundary lands near the true phase change": (
                nearest >= 0 and abs(nearest - true_boundary) <= tolerance
            ),
        },
        body=render_phases(segments),
    )

"""One entry point per paper table/figure/result.

Every experiment module exposes ``run(config) -> ExperimentReport``; the
registry maps experiment ids (T1, F1, F2, F3, R1..R5, A1..A4) to those
callables.  ``repro experiments --id F2`` on the command line and the
benchmark suite both go through this package.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentReport
from repro.experiments.data import suite_dataset
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentReport",
    "get_experiment",
    "run_experiment",
    "suite_dataset",
]

"""Numbers the paper reports, collected in one place.

Every experiment cites these constants so EXPERIMENTS.md and the
benchmark output can print paper-vs-measured rows from a single source.
"""

#: 10-fold CV correlation coefficient (Sections I and V-B; V-B also
#: quotes 0.9845 in the conclusion).
CORRELATION = 0.98

#: 10-fold CV mean absolute error (Section V-B).
MAE = 0.05

#: 10-fold CV relative absolute error, as a fraction (Section V-B: 7.83%).
RAE = 0.0783

#: Comparison methods (Section V-B, citing the companion study [23]).
ANN_CORRELATION = 0.99
SVM_CORRELATION = 0.98

#: LM18: the constant-CPI class of high-L1IM x high-L2M sections
#: (436.cactusADM); the paper reports CPI = 2.2 and >95% of cactusADM
#: sections in this class.
LM18_CPI = 2.2
CACTUS_DOMINANT_SHARE = 0.95

#: LM17: the high-L2M + high-L1DM class holding >70% of 429.mcf sections.
MCF_DOMINANT_SHARE = 0.70

#: LM10: the LCP-stall class; ~20% of 403.gcc sections are affected.
GCC_LCP_SHARE = 0.20

#: Worked contribution example (Section V-A2, Equation 4 / LM8):
#: CPI = 0.52 + 139.91*ItlbM + 2.22*DtlbL0LdM + 28.21*DtlbLdReM
#:       + 6.69*L1IM + 1.08*InstLd;
#: with CPI=1.0 and L1IM=0.03 the L1IM term contributes 6.69*0.03 = 20%.
LM8_L1IM_COEFFICIENT = 6.69
LM8_EXAMPLE_L1IM = 0.03
LM8_EXAMPLE_CONTRIBUTION = 0.20

#: LM11 (Equation 5): a single-event leaf model,
#: CPI = 0.75 + 193.98 * DtlbLdReM.
LM11_COEFFICIENT = 193.98

#: Split-variable impact example (Section V-A2): the LdBlSta split in the
#: left subtree; left-class means 0.57 and 0.51 vs right mean 0.84 give
#: an impact of ~0.30 CPI, ~35% of the right-side CPI.
SPLIT_IMPACT_EXAMPLE_CPI = 0.30
SPLIT_IMPACT_EXAMPLE_FRACTION = 0.35

#: The tree's qualitative structure (Section V-A1): L2M is the root
#: split; DTLB-family events come next; branch events follow; rare events
#: (LCP, misalignment, load blocks) appear deeper.
ROOT_SPLIT = "L2M"
SECOND_LEVEL_FAMILIES = ("Dtlb", "L1IM", "L1DM", "BrMisPr")

#: Pre-pruning minimum instances the paper derived for its dataset.
MIN_INSTANCES = 430

"""Experiment configuration presets.

The paper's dataset came from full SPEC runs with a minimum leaf
population of 430.  The ``paper`` preset reproduces that regime (about
9 000 sections, min 430); ``quick`` is the development default (about
900 sections, proportionally scaled minimum); ``tiny`` exists for unit
tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Tuple

from repro.errors import ConfigError

#: Environment variable overriding the dataset cache directory.
CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Dataset cache location (override with ``REPRO_CACHE_DIR``)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment needs to be reproducible.

    Attributes:
        name: Preset name (used in cache keys).
        sections_per_workload: Sections simulated per workload.
        instructions_per_section: Instructions replayed per section.
        min_instances: M5' minimum leaf population for this dataset size.
        n_folds: Cross-validation folds.
        seed: Master seed for the whole pipeline.
        jitter: Phase parameter jitter passed to the suite.
        use_cache: Cache the simulated dataset on disk.
    """

    name: str = "quick"
    sections_per_workload: int = 120
    instructions_per_section: int = 2048
    min_instances: int = 25
    n_folds: int = 10
    seed: int = 2007
    jitter: float = 0.08
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.sections_per_workload < 2:
            raise ConfigError("sections_per_workload must be at least 2")
        if self.instructions_per_section < 64:
            raise ConfigError("instructions_per_section must be at least 64")
        if self.min_instances < 1:
            raise ConfigError("min_instances must be at least 1")
        if self.n_folds < 2:
            raise ConfigError("n_folds must be at least 2")

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Paper-regime dataset: ~9200 sections, min leaf 430."""
        return cls(
            name="paper",
            sections_per_workload=1400,
            instructions_per_section=2048,
            min_instances=430,
        )

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Development default: ~900 sections in a few seconds."""
        return cls(name="quick")

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Unit-test preset: small and fast, still phase-structured."""
        return cls(
            name="tiny",
            sections_per_workload=16,
            instructions_per_section=512,
            min_instances=10,
            n_folds=4,
            use_cache=False,
        )

    @classmethod
    def by_name(cls, name: str) -> "ExperimentConfig":
        presets = {"paper": cls.paper, "quick": cls.quick, "tiny": cls.tiny}
        try:
            return presets[name]()
        except KeyError:
            raise ConfigError(
                f"unknown preset {name!r}; choose from {sorted(presets)}"
            ) from None

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)

    def cache_key(self) -> Tuple:
        """The identity of the dataset this config produces."""
        return (
            self.sections_per_workload,
            self.instructions_per_section,
            self.seed,
            self.jitter,
        )

"""Suite dataset construction with on-disk caching.

The paper-regime dataset takes a minute or two of simulation; it is
cached as CSV (with metadata columns) keyed by the generating
parameters, so experiments and benchmarks share one copy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro import __version__
from repro._util import stable_hash
from repro.datasets.csvio import load_csv, save_csv
from repro.datasets.dataset import Dataset
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig, default_cache_dir
from repro.workloads.suite import simulate_suite, workload_fingerprint

#: In-process cache so repeated experiment calls share one dataset object.
_MEMORY_CACHE: dict = {}


def _machine_fingerprint() -> str:
    """Digest of the simulator's default physics (cache invalidation).

    Any change to the machine geometry, latencies or overlap constants
    changes the CPI a simulation would produce, so it must invalidate
    cached datasets.
    """
    from repro.simulator.config import MachineConfig
    from repro.simulator.pipeline import IssueCosts, OverlapModel

    return stable_hash([repr(MachineConfig()), repr(OverlapModel()), repr(IssueCosts())])


def suite_dataset(
    config: Optional[ExperimentConfig] = None,
    cache_dir: Optional[Path] = None,
) -> Dataset:
    """The section dataset for ``config`` (simulating it if needed).

    The disk cache key includes the package version: any code change
    that could alter the simulation invalidates old caches.
    """
    cfg = config or ExperimentConfig.quick()
    key = (__version__, workload_fingerprint(), _machine_fingerprint()) + cfg.cache_key()
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    path = None
    if cfg.use_cache:
        directory = cache_dir or default_cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        digest = stable_hash([str(part) for part in key])
        path = directory / f"suite-{digest}.csv"
        if path.exists():
            try:
                dataset = load_csv(path)
            except ReproError:
                path.unlink()
            else:
                _MEMORY_CACHE[key] = dataset
                return dataset

    result = simulate_suite(
        sections_per_workload=cfg.sections_per_workload,
        instructions_per_section=cfg.instructions_per_section,
        seed=cfg.seed,
        jitter=cfg.jitter,
    )
    dataset = result.dataset
    if path is not None:
        save_csv(dataset, path)
    _MEMORY_CACHE[key] = dataset
    return dataset


def workload_mask(dataset: Dataset, workload: str) -> np.ndarray:
    """Boolean row mask selecting one workload's sections."""
    return dataset.meta["workload"] == workload

"""Suite dataset construction with on-disk caching.

The paper-regime dataset takes a minute or two of simulation; it is
stored in the content-addressed artifact cache
(:mod:`repro.parallel.cache`) keyed by the generating parameters plus
every code-relevant fingerprint, so experiments, benchmarks and CLI
sessions share one copy and any code change invalidates stale ones.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro import __version__
from repro.datasets.dataset import Dataset
from repro.experiments.config import ExperimentConfig, default_cache_dir
from repro.parallel import ArtifactCache
from repro.workloads.suite import simulate_suite, workload_fingerprint

#: In-process cache so repeated experiment calls share one dataset object.
_MEMORY_CACHE: dict = {}


def _machine_fingerprint() -> str:
    """Digest of the simulator's default physics (cache invalidation).

    Any change to the machine geometry, latencies or overlap constants
    changes the CPI a simulation would produce, so it must invalidate
    cached datasets.  Delegates to the fastsim fingerprint so datasets
    and calibrations can never disagree about what "the machine" is.
    """
    from repro.fastsim.calibration import machine_fingerprint

    return machine_fingerprint()


def experiment_fingerprint(config: ExperimentConfig) -> Tuple:
    """The full identity of the dataset ``config`` produces.

    Combines the config's own cache key with the package version and the
    workload/machine fingerprints: equal tuples guarantee equal datasets,
    and any code change that could alter the simulation changes the tuple.
    """
    return (
        __version__,
        workload_fingerprint(),
        _machine_fingerprint(),
    ) + config.cache_key()


def artifact_cache(cache_dir: Optional[Path] = None) -> ArtifactCache:
    """The artifact cache experiments read and write.

    ``cache_dir`` overrides the root (tests use temporary directories);
    the default lives under :func:`default_cache_dir`.
    """
    if cache_dir is not None:
        return ArtifactCache(Path(cache_dir))
    return ArtifactCache(default_cache_dir() / "artifacts")


def collect_run_key(
    sections_per_workload: int,
    instructions_per_section: int,
    seed: int,
    jitter: float = 0.08,
) -> str:
    """Checkpoint run key for one suite-collection identity.

    Everything that determines a workload unit's result participates —
    the generating parameters plus the code fingerprints — so two runs
    share checkpoints exactly when their units would be bit-identical.
    """
    from repro._util import stable_hash

    return "collect-" + stable_hash([
        __version__,
        workload_fingerprint(),
        _machine_fingerprint(),
        sections_per_workload,
        instructions_per_section,
        seed,
        jitter,
    ])


def suite_dataset(
    config: Optional[ExperimentConfig] = None,
    cache_dir: Optional[Path] = None,
    n_jobs: Optional[int] = None,
    policy=None,
    engine: str = "trace",
    calibration=None,
) -> Dataset:
    """The section dataset for ``config`` (simulating it if needed).

    Simulation fans out across workloads (``n_jobs``; ``None`` defers to
    ``REPRO_JOBS``) and the result is bit-identical at any worker count.
    The disk cache key includes the package version: any code change
    that could alter the simulation invalidates old caches.

    ``policy`` (a :class:`~repro.resilience.RunPolicy`) adds
    per-workload retries, timeouts and checkpoint/resume to the
    simulation leg; a policy without a ``run_key`` is automatically
    scoped to this config's collection identity.

    ``engine="fast"`` predicts the dataset through
    :func:`repro.fastsim.fast_suite` instead of replaying traces.  Fast
    datasets are cached under a key extended with the engine name and
    the calibration artifact's content digest, so they can never collide
    with — or serve in place of — trace datasets, datasets from a
    different calibration, or datasets from a different machine
    configuration.  ``calibration`` supplies the
    :class:`~repro.fastsim.Calibration`; ``None`` loads or fits one
    through the same artifact cache.
    """
    cfg = config or ExperimentConfig.quick()
    if engine not in ("trace", "fast"):
        from repro.errors import ConfigError

        raise ConfigError(f"engine must be 'trace' or 'fast', got {engine!r}")

    cache = artifact_cache(cache_dir) if cfg.use_cache else None
    if engine == "fast":
        from repro.fastsim.calibration import (
            DIFFERENTIAL_CLIP,
            DIFFERENTIAL_SHRINK,
            get_calibration,
        )
        from repro.fastsim.engine import ENGINE_REVISION

        if calibration is None:
            calibration = get_calibration(cache, seed=cfg.seed)
        # The differential shrink/clip are applied at predict time, not
        # baked into the artifact, so they are part of the dataset's
        # identity alongside the calibration content digest and the
        # engine revision.
        key = experiment_fingerprint(cfg) + (
            "engine",
            "fast",
            ENGINE_REVISION,
            calibration.digest,
            DIFFERENTIAL_SHRINK,
            DIFFERENTIAL_CLIP,
        )
    else:
        key = experiment_fingerprint(cfg)
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    if cache is not None:
        dataset = cache.load_dataset(key)
        if dataset is not None:
            _MEMORY_CACHE[key] = dataset
            return dataset

    if engine == "fast":
        result = simulate_suite(
            sections_per_workload=cfg.sections_per_workload,
            instructions_per_section=cfg.instructions_per_section,
            seed=cfg.seed,
            jitter=cfg.jitter,
            engine="fast",
            calibration=calibration,
        )
    else:
        if policy is not None and policy.checkpointing and not policy.run_key:
            from dataclasses import replace

            policy = replace(policy, run_key=collect_run_key(
                cfg.sections_per_workload,
                cfg.instructions_per_section,
                cfg.seed,
                cfg.jitter,
            ))
        result = simulate_suite(
            sections_per_workload=cfg.sections_per_workload,
            instructions_per_section=cfg.instructions_per_section,
            seed=cfg.seed,
            jitter=cfg.jitter,
            n_jobs=n_jobs,
            policy=policy,
        )
    dataset = result.dataset
    if result.failures:
        # A partial dataset must never masquerade as the canonical one:
        # neither cache layer may serve it for this fingerprint.
        return dataset
    if cache is not None:
        cache.store_dataset(key, dataset)
    _MEMORY_CACHE[key] = dataset
    return dataset


def workload_mask(dataset: Dataset, workload: str) -> np.ndarray:
    """Boolean row mask selecting one workload's sections."""
    return dataset.meta["workload"] == workload

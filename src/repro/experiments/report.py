"""The common experiment report structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ExperimentReport:
    """Outcome of one paper-artifact reproduction.

    Attributes:
        experiment_id: Registry id (``"F2"``, ``"R1"``, ...).
        title: Human-readable artifact name.
        paper_claim: What the paper reports for this artifact.
        measured: Name -> value pairs measured by this reproduction.
        body: Full text output (tree renderings, tables, scatters).
        checks: Name -> bool shape checks ("root splits on L2M", ...).
    """

    experiment_id: str
    title: str
    paper_claim: str
    measured: Dict[str, str] = field(default_factory=dict)
    body: str = ""
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        lines: List[str] = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"paper: {self.paper_claim}",
        ]
        if self.measured:
            lines.append("measured:")
            for key, value in self.measured.items():
                lines.append(f"  {key}: {value}")
        if self.checks:
            lines.append("shape checks:")
            for key, passed in self.checks.items():
                lines.append(f"  [{'PASS' if passed else 'FAIL'}] {key}")
        if self.body:
            lines.append("")
            lines.append(self.body)
        return "\n".join(lines)

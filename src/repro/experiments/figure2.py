"""F2 — Figure 2: the performance-analysis tree.

The paper's qualitative structure claims, all checked here:

* L2M is the root split (the longest-latency event decides first);
* on the high-L2M side the tree separates instruction-side (L1IM) from
  data-side (L1DM) misses;
* DTLB-family splits appear on the no-L2-miss side (DTLB reach is a
  fraction of L2 capacity);
* branch events split below cache/TLB events;
* 436.cactusADM-like sections concentrate in a high-CPI leaf reached
  through high L2M and high L1IM (the paper's LM18, CPI ~ 2.2);
* 429.mcf-like sections concentrate in a high-L2M data-side leaf (LM17);
* a class of 403.gcc-like sections is characterized by LCP stalls (LM10).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.analysis import dominant_leaf, workload_leaf_table
from repro.core.tree.node import Node, SplitNode, path_to_leaf
from repro.experiments import paper
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset, workload_mask
from repro.experiments.models import fitted_tree
from repro.experiments.report import ExperimentReport

import numpy as np


def _split_attributes_by_depth(root: Node) -> List[Set[str]]:
    levels: List[Set[str]] = []

    def visit(node: Node, depth: int) -> None:
        if node.is_leaf:
            return
        assert isinstance(node, SplitNode)
        while len(levels) <= depth:
            levels.append(set())
        levels[depth].add(node.attribute_name)
        visit(node.left, depth + 1)
        visit(node.right, depth + 1)

    visit(root, 0)
    return levels


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    model = fitted_tree(cfg)
    root = model.root_
    assert root is not None

    levels = _split_attributes_by_depth(root)
    root_attribute = levels[0].copy().pop() if levels and levels[0] else "<leaf>"
    shallow = set().union(*levels[1:3]) if len(levels) > 1 else set()

    cactus_leaf, cactus_share = dominant_leaf(model, dataset, "cactus_like")
    mcf_leaf, mcf_share = dominant_leaf(model, dataset, "mcf_like")

    # The cactus-dominant leaf must be reached through high L2M and high
    # L1IM decisions, and must be a high-CPI class.  Inspect a section
    # that actually lands in that leaf.
    leaf_ids = model.leaf_ids(dataset.X)
    cactus_members = dataset.X[
        workload_mask(dataset, "cactus_like") & (leaf_ids == cactus_leaf)
    ]
    example = cactus_members[len(cactus_members) // 2]
    path = path_to_leaf(root, example)
    path_high = {
        node.attribute_name
        for node in path[:-1]
        if isinstance(node, SplitNode)
        and example[node.attribute_index] > node.threshold
    }
    cactus_cpi = float(np.mean(dataset.y[leaf_ids == cactus_leaf]))

    # LCP-limited sections must be detectable (gcc's LM10 analogue):
    # either a split on LCP or an LCP term in some leaf model.
    all_split_attributes = set().union(*levels) if levels else set()
    models = model.leaf_models()
    lcp_in_models = any("LCP" in lm.names for lm in models.values())

    table = workload_leaf_table(model, dataset)
    lines = []
    for workload in sorted(table):
        top = sorted(table[workload].items(), key=lambda kv: -kv[1])[:3]
        shares = "  ".join(f"LM{leaf}:{100 * share:.0f}%" for leaf, share in top)
        lines.append(f"{workload:<15} {shares}")
    body = model.to_text() + "\n\nworkload -> dominant classes\n" + "\n".join(lines)

    return ExperimentReport(
        experiment_id="F2",
        title="Figure 2: performance analysis tree",
        paper_claim="root splits on L2M; DTLB next; branch events follow; "
        f"cactusADM >= {paper.CACTUS_DOMINANT_SHARE:.0%} in one "
        f"high-L2M+L1IM class (CPI ~ {paper.LM18_CPI}); mcf >= "
        f"{paper.MCF_DOMINANT_SHARE:.0%} in the L2M+data class; a gcc "
        "class is characterized by LCP stalls",
        measured={
            "root split": root_attribute,
            "splits at depths 1-2": ", ".join(sorted(shallow)),
            "n_leaves / depth": f"{model.n_leaves} / {model.depth}",
            "cactus dominant class": f"LM{cactus_leaf} ({cactus_share:.0%}), "
            f"mean CPI {cactus_cpi:.2f}",
            "mcf dominant class": f"LM{mcf_leaf} ({mcf_share:.0%})",
        },
        checks={
            "root splits on L2M": root_attribute == paper.ROOT_SPLIT,
            "cache/TLB/branch family splits near the top": bool(
                shallow
                & {"L1IM", "L1DM", "Dtlb", "DtlbLdM", "DtlbLdReM", "DtlbL0LdM", "BrMisPr"}
            ),
            # The paper reaches LM18 through high L2M plus high L1IM; our
            # tree always isolates the class through high L2M plus an
            # instruction-side or stencil co-signature (L1IM, ItlbM, or
            # the store-dense mix), depending on which collinear marker
            # wins the SDR tie — see EXPERIMENTS.md.
            "cactus class reached through high L2M + its signature": (
                "L2M" in path_high
                and bool(path_high & {"L1IM", "ItlbM", "InstSt", "L1DM"})
            ),
            "instruction-side events used (L1IM/ItlbM split or term)": bool(
                all_split_attributes & {"L1IM", "ItlbM"}
            )
            or any(
                set(lm.names) & {"L1IM", "ItlbM"}
                for lm in model.leaf_models().values()
            ),
            # The paper's LM18 is "simply a constant: CPI = 2.2" — the
            # saturated fetch-bound class needs no event slopes.
            "cactus class model is (near-)constant like LM18": (
                len(models[cactus_leaf].coefficients) <= 2
            ),
            "cactus class is a high-CPI class (> 2)": cactus_cpi > 2.0,
            "LCP detected (split or leaf-model term)": (
                "LCP" in all_split_attributes or lcp_in_models
            ),
            "mcf concentrates in few classes (top share > 0.3)": mcf_share > 0.3,
        },
        body=body,
    )

"""E3 — leave-one-workload-out generalization.

The paper validates with 10-fold CV over *sections*, which mixes every
workload into both train and test folds.  A deployed performance model
faces a harder case: a program it never saw.  This experiment holds out
each workload in turn, trains on the other ten, and measures prediction
on the unseen program — quantifying how far the class structure
transfers beyond its training population.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.tree import M5Prime
from repro.evaluation.tables import render_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.report import ExperimentReport


def run_leave_one_workload_out(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    labels = dataset.meta["workload"]
    workloads = sorted(set(labels.tolist()))

    rows = []
    correlations = {}
    relative_errors = {}
    for held_out in workloads:
        mask = labels == held_out
        train = dataset.subset(~mask)
        test = dataset.subset(mask)
        model = M5Prime(min_instances=cfg.min_instances).fit(train)
        predictions = model.predict(test.X)
        mae = float(np.mean(np.abs(predictions - test.y)))
        mean_cpi = float(np.mean(test.y))
        correlations[held_out] = float(
            np.corrcoef(predictions, test.y)[0, 1]
        ) if np.std(predictions) > 0 and np.std(test.y) > 0 else 0.0
        relative_errors[held_out] = mae / mean_cpi if mean_cpi else float("inf")
        rows.append(
            [
                held_out,
                f"{mean_cpi:.2f}",
                f"{float(np.mean(predictions)):.2f}",
                f"{mae:.3f}",
                f"{100 * relative_errors[held_out]:.1f}",
            ]
        )
    table = render_table(
        ["held-out workload", "true CPI", "predicted", "MAE", "rel err %"], rows
    )

    median_rel = float(np.median(list(relative_errors.values())))
    worst = max(relative_errors, key=lambda w: relative_errors[w])
    return ExperimentReport(
        experiment_id="E3",
        title="Extension: leave-one-workload-out generalization",
        paper_claim="(not evaluated in the paper) — CV mixes workloads "
        "across folds; a deployed model must price programs it never saw",
        measured={
            "median relative error": f"{100 * median_rel:.1f}%",
            "hardest workload": (
                f"{worst} ({100 * relative_errors[worst]:.1f}%)"
            ),
            "workloads": str(len(workloads)),
        },
        checks={
            "median relative error under 40%": median_rel < 0.40,
            "most workloads transfer (rel err < 60%)": (
                sum(1 for v in relative_errors.values() if v < 0.6)
                >= len(workloads) - 2
            ),
        },
        body=table,
    )

"""R3 — the paper's leaf-model worked examples (LM8 and LM11).

Section V-A2 demonstrates the "how much" answer: in its LM8, the L1IM
term (coefficient 6.69) at L1IM = 0.03 contributes ~20% of a CPI of 1.0;
its LM11 is a single-event model (CPI = 0.75 + 193.98 * DtlbLdReM).  The
reproduction finds analogous leaves in our tree — one whose model prices
L1I misses, one dominated by a DTLB-family term — and runs the same
arithmetic through :mod:`repro.core.analysis.contribution`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.analysis import PerformanceAnalyzer, leaf_contributions
from repro.experiments import paper
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.models import fitted_tree
from repro.experiments.report import ExperimentReport

_DTLB_FAMILY = ("DtlbLdReM", "DtlbLdM", "Dtlb", "DtlbL0LdM")


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    model = fitted_tree(cfg)
    models = model.leaf_models()

    # The paper's LM8 prices instruction-fetch events (both ItlbM at
    # 139.91 and L1IM at 6.69); any leaf with a positive coefficient on
    # either event is its analogue.  Prefer L1IM when both exist.
    ifetch_event = None
    l1im_leaf = None
    for wanted in ("L1IM", "ItlbM"):
        for leaf, lm in sorted(models.items()):
            if wanted in lm.names and lm.coefficients[lm.names.index(wanted)] > 0:
                l1im_leaf = leaf
                ifetch_event = wanted
                break
        if l1im_leaf is not None:
            break
    dtlb_leaf = next(
        (
            leaf
            for leaf, lm in sorted(models.items())
            if any(name in _DTLB_FAMILY for name in lm.names)
        ),
        None,
    )

    measured = {}
    checks = {
        "a leaf model prices instruction-fetch misses (LM8 analogue)": (
            l1im_leaf is not None
        ),
        "a leaf model prices DTLB misses (LM11 analogue)": dtlb_leaf is not None,
    }
    body_lines = []

    contribution_value = None
    if l1im_leaf is not None:
        lm = models[l1im_leaf]
        body_lines.append(f"LM{l1im_leaf}: {lm.describe('CPI')}")
        # Recreate the paper's arithmetic on a real section of this leaf.
        ids = model.leaf_ids(dataset.X)
        rows = dataset.X[ids == l1im_leaf]
        row = rows[np.argmax(rows[:, dataset.attribute_index(ifetch_event)])]
        contributions = leaf_contributions(model, row)
        fetch_contribution = next(
            (c for c in contributions if c.event == ifetch_event), None
        )
        if fetch_contribution is not None:
            contribution_value = fetch_contribution.fraction
            measured[f"{ifetch_event} coefficient"] = (
                f"{fetch_contribution.coefficient:.2f}"
            )
            measured[f"section {ifetch_event}"] = f"{fetch_contribution.value:.4f}"
            measured[f"{ifetch_event} contribution"] = (
                f"{fetch_contribution.potential_gain_percent:.1f}% of predicted CPI"
            )
            body_lines.append("worked example: " + fetch_contribution.describe())
        analyzer = PerformanceAnalyzer(model)
        body_lines.append("")
        body_lines.append(analyzer.analyze_section(row).render())
    checks["contribution arithmetic yields a positive share"] = (
        contribution_value is not None and 0.0 < contribution_value < 1.0
    )

    if dtlb_leaf is not None:
        lm = models[dtlb_leaf]
        body_lines.append("")
        body_lines.append(f"LM{dtlb_leaf}: {lm.describe('CPI')}")
        dtlb_coef = max(
            (
                lm.coefficients[i]
                for i, name in enumerate(lm.names)
                if name in _DTLB_FAMILY
            ),
            default=0.0,
        )
        measured["DTLB-family coefficient"] = f"{dtlb_coef:.2f}"
        checks["DTLB coefficient within the paper's order of magnitude"] = (
            1.0 <= abs(dtlb_coef) <= 2000.0
        )

    return ExperimentReport(
        experiment_id="R3",
        title="Leaf-model contribution examples (LM8 / LM11 analogues)",
        paper_claim=(
            f"LM8: {paper.LM8_L1IM_COEFFICIENT} * L1IM at L1IM = "
            f"{paper.LM8_EXAMPLE_L1IM} contributes "
            f"{paper.LM8_EXAMPLE_CONTRIBUTION:.0%} of CPI; LM11: CPI = 0.75 "
            f"+ {paper.LM11_COEFFICIENT} * DtlbLdReM"
        ),
        measured=measured,
        checks=checks,
        body="\n".join(body_lines),
    )

"""R5 — the motivating claim: fixed-penalty accounting is inaccurate.

Section I: "the traditional approach of assigning a uniform estimated
penalty to each event does not accurately identify and quantify
performance limiters", because dynamic and speculative execution elide
penalties depending on ILP and event interactions.  The reproduction
quantifies the gap on identical data: the naive model's error against
the model tree's, plus the naive model's systematic *overestimation* of
high-MLP sections (the streaming workloads whose misses overlap).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines import NaiveFixedPenaltyModel
from repro.core.tree import M5Prime
from repro.evaluation import cross_validate
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset, workload_mask
from repro.experiments.report import ExperimentReport


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)

    naive_cv = cross_validate(
        NaiveFixedPenaltyModel, dataset, n_folds=cfg.n_folds, rng=cfg.seed
    )
    tree_cv = cross_validate(
        lambda: M5Prime(min_instances=cfg.min_instances),
        dataset,
        n_folds=cfg.n_folds,
        rng=cfg.seed,
    )

    # Overestimation on the high-MLP streaming workloads: architectural
    # penalties assume every L2 miss pays full memory latency.  Use the
    # unfitted model (fixed architectural base CPI) for this part — a
    # fitted intercept would just shift the overestimate onto everyone.
    architectural = NaiveFixedPenaltyModel(base_cpi=0.3).fit(dataset)
    streaming = workload_mask(dataset, "libq_like") | workload_mask(
        dataset, "lbm_like"
    )
    naive_bias = float(
        np.mean(architectural.predict(dataset.X[streaming]) - dataset.y[streaming])
    )
    mean_streaming_cpi = float(np.mean(dataset.y[streaming]))

    ratio = naive_cv.mean.rae / tree_cv.mean.rae if tree_cv.mean.rae else float("inf")
    return ExperimentReport(
        experiment_id="R5",
        title="Naive fixed-penalty model vs model tree",
        paper_claim="uniform per-event penalties mis-state performance "
        "because penalties overlap and interact (Section I)",
        measured={
            "naive RAE": f"{100 * naive_cv.mean.rae:.1f}%",
            "model tree RAE": f"{100 * tree_cv.mean.rae:.1f}%",
            "error ratio naive/tree": f"{ratio:.1f}x",
            "naive bias on streaming workloads": (
                f"{naive_bias:+.2f} CPI on a mean of {mean_streaming_cpi:.2f}"
            ),
        },
        checks={
            "naive error at least 2x the tree's": ratio >= 2.0,
            "naive overestimates high-MLP sections": naive_bias > 0.0,
        },
        body=(
            "naive: "
            + naive_cv.mean.describe()
            + "\ntree:  "
            + tree_cv.mean.describe()
        ),
    )

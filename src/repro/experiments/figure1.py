"""F1 — Figure 1: an example M5' tree on Y = f(X1..X4).

The paper's Figure 1 is a didactic tree over four generic attributes
with five leaf models.  We generate data with exactly that piecewise
structure and verify M5' recovers it: the dominant attribute at the
root and per-leaf linear models.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tree import M5Prime
from repro.core.tree.node import SplitNode
from repro.datasets.synthetic import figure1_dataset, figure1_regions
from repro.evaluation import evaluate_predictions
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentReport


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = figure1_dataset(n=4000, noise_sd=0.05, rng=cfg.seed)
    model = M5Prime(min_instances=60)
    model.fit(dataset)
    result = evaluate_predictions(dataset.y, model.predict(dataset.X))

    root = model.root_
    root_attribute = (
        root.attribute_name if isinstance(root, SplitNode) else "<leaf>"
    )
    n_truth = len(figure1_regions())
    return ExperimentReport(
        experiment_id="F1",
        title="Figure 1: example M5' tree structure",
        paper_claim="M5' partitions a 4-attribute input space into leaf "
        "classes, each with its own linear model (5 LMs shown)",
        measured={
            "ground-truth regions": str(n_truth),
            "recovered leaves": str(model.n_leaves),
            "root split": root_attribute,
            "training fit": result.describe(),
        },
        checks={
            "root splits on the dominant attribute X1": root_attribute == "X1",
            "leaf count within 2 of the ground truth": abs(
                model.n_leaves - n_truth
            )
            <= 2,
            "fit correlation above 0.97": result.correlation > 0.97,
        },
        body=model.to_text(),
    )

"""R1 — headline accuracy: C ~ 0.98, MAE ~ 0.05, RAE < 8% (10-fold CV).

Absolute numbers depend on the substrate (ours is a simulator with
deliberately retained hidden variance), so the checks are shape-level:
correlation matches the paper's to within a small margin and RAE stays
far below the naive/mean-model regime.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tree import M5Prime
from repro.evaluation import cross_validate
from repro.experiments import paper
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.report import ExperimentReport


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    cv = cross_validate(
        lambda: M5Prime(min_instances=cfg.min_instances),
        dataset,
        n_folds=cfg.n_folds,
        rng=cfg.seed,
    )
    mean = cv.mean
    return ExperimentReport(
        experiment_id="R1",
        title="Cross-validated accuracy of the model tree",
        paper_claim=(
            f"C = {paper.CORRELATION}, MAE = {paper.MAE}, "
            f"RAE = {100 * paper.RAE:.2f}% (10-fold CV)"
        ),
        measured={
            "C (mean over folds)": f"{mean.correlation:.4f}",
            "MAE": f"{mean.mae:.4f}",
            "RAE": f"{100 * mean.rae:.2f}%",
            "RMSE": f"{mean.rmse:.4f}",
            "folds": str(cv.n_folds),
        },
        checks={
            "correlation within 0.03 of the paper's 0.98": abs(
                mean.correlation - paper.CORRELATION
            )
            <= 0.03,
            "RAE below 25% (paper: 7.8%; naive models sit far above)": mean.rae
            < 0.25,
        },
        body=cv.describe(),
    )

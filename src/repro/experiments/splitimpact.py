"""R4 — split-variable impact estimation.

Section V-A2's second technique: a split variable that never appears in
a leaf equation still has measurable impact, estimated from the CPI gap
across its branches (the paper's LdBlSta example: 0.84 - mean(0.57,
0.51) ~ 0.30, i.e. ~35% of the right-side CPI), or from a one-variable
regression R^2.  The reproduction computes all three estimators for
every split in the tree.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analysis import split_impacts
from repro.evaluation.tables import render_table
from repro.experiments import paper
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.models import fitted_tree
from repro.experiments.report import ExperimentReport


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    model = fitted_tree(cfg)
    impacts = split_impacts(model, dataset)

    rows = [
        [
            impact.attribute,
            f"{impact.threshold:.5g}",
            str(impact.depth),
            f"{impact.mean_left:.3f}",
            f"{impact.mean_right:.3f}",
            f"{impact.impact_simple:+.3f}",
            f"{impact.impact_weighted:+.3f}",
            f"{100 * impact.impact_fraction:.0f}%",
            "-" if impact.r_squared is None else f"{impact.r_squared:.3f}",
        ]
        for impact in impacts
    ]
    table = render_table(
        [
            "split",
            "threshold",
            "depth",
            "left mean",
            "right mean",
            "simple",
            "weighted",
            "frac",
            "R^2",
        ],
        rows,
    )

    root = impacts[0]
    deep_positive = [i for i in impacts if i.depth >= 1 and i.impact_weighted > 0]
    return ExperimentReport(
        experiment_id="R4",
        title="Split-variable impact estimates",
        paper_claim=(
            "cross-branch CPI statistics quantify split variables absent "
            f"from leaf models (example: ~{paper.SPLIT_IMPACT_EXAMPLE_CPI} "
            f"CPI, ~{paper.SPLIT_IMPACT_EXAMPLE_FRACTION:.0%} of the "
            "right-side CPI); a one-variable regression R^2 is an "
            "alternative estimator"
        ),
        measured={
            "splits analyzed": str(len(impacts)),
            "root split impact": root.describe(),
            "positive-impact interior splits": str(len(deep_positive)),
        },
        checks={
            "root (L2M) impact is positive and large": root.impact_weighted > 0.5,
            "root impact is a major share of right-side CPI": (
                root.impact_fraction > 0.3
            ),
            "R^2 computed for every split": all(
                i.r_squared is not None for i in impacts
            ),
            "interior splits with positive impact exist": bool(deep_positive),
        },
        body=table,
    )

"""A1-A4 — ablations of the design choices DESIGN.md calls out.

* A1 pruning on/off: the paper's Section IV-B claims pruning mitigates
  overfitting and keeps the model compact.
* A2 minimum-leaf-population sweep: the paper determined 430 instances
  experimentally as the bias/variance balance for its dataset.
* A3 smoothing on/off: a WEKA M5' option; trades interpretability for
  accuracy on small leaves.
* A4 section size: the paper groups counters into sections of equal
  retired instructions; the size is a methodological free parameter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.tree import M5Prime
from repro.evaluation import cross_validate
from repro.evaluation.tables import render_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.report import ExperimentReport


def _cv(dataset, cfg: ExperimentConfig, **model_kwargs):
    kwargs = {"min_instances": cfg.min_instances}
    kwargs.update(model_kwargs)
    return cross_validate(
        lambda: M5Prime(**kwargs), dataset, n_folds=cfg.n_folds, rng=cfg.seed
    )


def run_pruning(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    pruned = _cv(dataset, cfg, prune=True)
    unpruned = _cv(dataset, cfg, prune=False)
    pruned_leaves = M5Prime(min_instances=cfg.min_instances, prune=True).fit(
        dataset
    ).n_leaves
    unpruned_leaves = M5Prime(min_instances=cfg.min_instances, prune=False).fit(
        dataset
    ).n_leaves
    return ExperimentReport(
        experiment_id="A1",
        title="Ablation: post-pruning",
        paper_claim="pruning mitigates overfitting and balances compactness "
        "against discriminative ability (Sections IV-B, VI)",
        measured={
            "pruned": f"{pruned.mean.describe()}  ({pruned_leaves} leaves)",
            "unpruned": f"{unpruned.mean.describe()}  ({unpruned_leaves} leaves)",
        },
        checks={
            "pruning does not lose accuracy (RAE within 10% relative)": (
                pruned.mean.rae <= unpruned.mean.rae * 1.10
            ),
            "pruning never grows the tree": pruned_leaves <= unpruned_leaves,
        },
    )


def run_min_instances(
    config: Optional[ExperimentConfig] = None,
    factors: Optional[List[float]] = None,
) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    factors = factors or [0.25, 0.5, 1.0, 2.0, 4.0]
    rows = []
    raes = {}
    for factor in factors:
        minimum = max(4, int(round(cfg.min_instances * factor)))
        result = cross_validate(
            lambda m=minimum: M5Prime(min_instances=m),
            dataset,
            n_folds=cfg.n_folds,
            rng=cfg.seed,
        )
        leaves = M5Prime(min_instances=minimum).fit(dataset).n_leaves
        raes[factor] = result.mean.rae
        rows.append(
            [
                str(minimum),
                str(leaves),
                f"{result.mean.correlation:.4f}",
                f"{100 * result.mean.rae:.2f}",
            ]
        )
    body = render_table(["min_instances", "leaves", "C", "RAE %"], rows)
    return ExperimentReport(
        experiment_id="A2",
        title="Ablation: minimum leaf population",
        paper_claim="a minimum population (430 for the paper's dataset) "
        "balances accuracy on training vs new data (Section IV-A)",
        measured={"sweep": "see table"},
        checks={
            # The huge-leaf extreme underfits relative to the chosen value.
            "largest minimum is worse than the chosen one": raes[factors[-1]]
            >= raes[1.0],
        },
        body=body,
    )


def run_smoothing(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    plain = _cv(dataset, cfg, smoothing=False)
    smoothed = _cv(dataset, cfg, smoothing=True)
    return ExperimentReport(
        experiment_id="A3",
        title="Ablation: M5 smoothing",
        paper_claim="smoothing is a WEKA M5' option; the paper reads raw "
        "leaf equations, so interpretability argues for off",
        measured={
            "smoothing off": plain.mean.describe(),
            "smoothing on": smoothed.mean.describe(),
        },
        checks={
            "both variants stay within 25% relative RAE of each other": (
                abs(plain.mean.rae - smoothed.mean.rae)
                <= 0.25 * max(plain.mean.rae, smoothed.mean.rae)
            ),
        },
    )


def run_section_size(
    config: Optional[ExperimentConfig] = None,
    sizes: Optional[List[int]] = None,
) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    sizes = sizes or [512, 2048, 8192]
    rows = []
    raes = []
    for size in sizes:
        sized = cfg.with_overrides(
            instructions_per_section=size,
            # Hold simulated instructions roughly constant across sizes.
            sections_per_workload=max(
                8,
                cfg.sections_per_workload * cfg.instructions_per_section // size,
            ),
        )
        dataset = suite_dataset(sized)
        minimum = max(4, int(dataset.n_instances * 0.045))
        result = cross_validate(
            lambda m=minimum: M5Prime(min_instances=m),
            dataset,
            n_folds=cfg.n_folds,
            rng=cfg.seed,
        )
        raes.append(result.mean.rae)
        rows.append(
            [
                str(size),
                str(dataset.n_instances),
                f"{result.mean.correlation:.4f}",
                f"{100 * result.mean.rae:.2f}",
            ]
        )
    body = render_table(["instr/section", "sections", "C", "RAE %"], rows)
    return ExperimentReport(
        experiment_id="A4",
        title="Ablation: section size (equal-instruction grouping)",
        paper_claim="counters are grouped into sections of equal retired "
        "instructions (Section I); size trades resolution for noise",
        measured={"sweep": "see table"},
        checks={
            "model stays predictive at every section size": all(
                rae < 0.5 for rae in raes
            ),
        },
        body=body,
    )

"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.experiments import (
    ablations,
    extensions,
    generalization,
    accuracy,
    comparison,
    figure1,
    figure2,
    figure3,
    lm_examples,
    naive_gap,
    splitimpact,
    table1,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentReport

Runner = Callable[[Optional[ExperimentConfig]], ExperimentReport]

EXPERIMENTS: Dict[str, Runner] = {
    "T1": table1.run,
    "F1": figure1.run,
    "F2": figure2.run,
    "F3": figure3.run,
    "R1": accuracy.run,
    "R2": comparison.run,
    "R3": lm_examples.run,
    "R4": splitimpact.run,
    "R5": naive_gap.run,
    "A1": ablations.run_pruning,
    "A2": ablations.run_min_instances,
    "A3": ablations.run_smoothing,
    "A4": ablations.run_section_size,
    "E1": extensions.run_platform_comparison,
    "E2": extensions.run_phase_tracking,
    "E3": generalization.run_leave_one_workload_out,
}


def get_experiment(experiment_id: str) -> Runner:
    """The runner for an experiment id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: "
            + ", ".join(sorted(EXPERIMENTS))
        )
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> ExperimentReport:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(config)

"""T1 — Table I: the selected metrics and their event formulas.

Reproduces the metric catalogue and verifies the full collection path:
the simulator must emit every raw event Table I references, and the
derivation layer must produce all 20 predictors plus CPI.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.counters import ALL_METRICS, PREDICTOR_METRICS, metric_row
from repro.evaluation.tables import render_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentReport
from repro.simulator import MachineConfig, SimulatedCore
from repro.workloads.phases import PhaseParams
from repro.workloads.stream import synthesize_block


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Render Table I and check the simulator covers it."""
    rows = [
        [metric.name, metric.formula, metric.description]
        for metric in ALL_METRICS
    ]
    table = render_table(["Metric", "Corresponding event(s)", "Description"], rows)

    # Collection check: one simulated section must yield every metric.
    core = SimulatedCore(MachineConfig(), rng=np.random.default_rng(0))
    params = PhaseParams(
        lcp_fraction=0.02,
        misalign_fraction=0.05,
        wide_access_fraction=0.2,
        store_load_alias_fraction=0.2,
        sta_fraction=0.3,
        std_fraction=0.3,
        data_footprint=8 << 20,
        hot_fraction=0.6,
    )
    block = synthesize_block(params, 4096, np.random.default_rng(1))
    result = core.run_block(block)
    derived = metric_row(result.counts)

    missing = [m.name for m in ALL_METRICS if m.name not in derived]
    inactive = [
        m.name for m in PREDICTOR_METRICS if derived.get(m.name, 0.0) == 0.0
    ]
    return ExperimentReport(
        experiment_id="T1",
        title="Table I: selected metrics",
        paper_claim="20 per-instruction predictor metrics plus CPI, each "
        "defined over named Core 2 PMU events",
        measured={
            "metrics defined": str(len(ALL_METRICS)),
            "metrics emitted by simulator": str(len(derived)),
            "inactive under stress section": ", ".join(inactive) or "none",
        },
        checks={
            "all 21 metrics derivable from simulated counts": not missing,
            "every predictor observable under a stress workload": not inactive,
        },
        body=table,
    )

"""F3 — Figure 3: predicted vs actual CPI under 10-fold CV.

Reproduces the scatter: every point is an out-of-fold prediction.  The
text rendering is an ASCII density plot around the unity line, plus the
series itself for external plotting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.tree import M5Prime
from repro.evaluation import cross_validate
from repro.experiments import paper
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import suite_dataset
from repro.experiments.report import ExperimentReport


def ascii_scatter(
    x: np.ndarray, y: np.ndarray, width: int = 56, height: int = 20
) -> str:
    """Density scatter of y vs x with a unity diagonal, like Figure 3."""
    finite_max = float(max(x.max(), y.max()))
    finite_min = float(min(x.min(), y.min(), 0.0))
    span = max(finite_max - finite_min, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for row in range(height):
        # Unity line: actual == predicted.
        value = finite_min + (row + 0.5) / height * span
        col = int((value - finite_min) / span * (width - 1))
        grid[height - 1 - row][col] = "/"
    shades = ".:*#"
    counts = np.zeros((height, width), dtype=int)
    for xi, yi in zip(x, y):
        col = int((xi - finite_min) / span * (width - 1))
        row = int((yi - finite_min) / span * (height - 1))
        counts[height - 1 - row][col] += 1
    peak = counts.max() if counts.max() > 0 else 1
    for r in range(height):
        for c in range(width):
            if counts[r][c]:
                level = min(
                    len(shades) - 1, int(counts[r][c] / peak * (len(shades) - 1) + 0.5)
                )
                grid[r][c] = shades[level]
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(
        f"x: actual CPI [{finite_min:.2f}, {finite_max:.2f}]   "
        "y: predicted CPI   '/' = unity line"
    )
    return "\n".join(lines)


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    cfg = config or ExperimentConfig.quick()
    dataset = suite_dataset(cfg)
    cv = cross_validate(
        lambda: M5Prime(min_instances=cfg.min_instances),
        dataset,
        n_folds=cfg.n_folds,
        rng=cfg.seed,
    )
    actual = cv.actuals
    predicted = cv.predictions
    near_unity = float(
        np.mean(np.abs(predicted - actual) <= 0.25 * np.maximum(actual, 0.5))
    )
    return ExperimentReport(
        experiment_id="F3",
        title="Figure 3: predicted vs actual CPI (10-fold CV)",
        paper_claim="strong correlation; except for a few outliers, points "
        "lie close to the unity line",
        measured={
            "pooled correlation": f"{cv.pooled.correlation:.4f}",
            "points within 25% of unity": f"{near_unity:.0%}",
            "n points": str(len(actual)),
        },
        checks={
            "pooled correlation at least 0.95": cv.pooled.correlation >= 0.95,
            "at least 85% of points near the unity line": near_unity >= 0.85,
        },
        body=ascii_scatter(actual, predicted),
    )

"""Certified-bounds conformance: the verifier's claims, checked empirically.

The static verifier (:mod:`repro.verify`) certifies, per leaf, an output
interval no served prediction may escape.  That claim is proved by
interval arithmetic over the reals; this module is the harness that
holds it to account in floating point: every corpus-fitted model must
(a) verify with zero errors, (b) earn a certificate, and (c) keep ten
thousand uniformly drawn in-domain predictions inside the certified
per-leaf intervals — bit-for-bit the same predictions serving would
produce, smoothing included.

A single escaping prediction is a ``CONF007`` divergence: either the
verifier's interval arithmetic or its widening slack is wrong, and the
certificate the registry hands to drift monitoring cannot be trusted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.conformance.corpus import build_corpus
from repro.conformance.report import ConformanceReport
from repro.core.tree.m5 import M5Prime
from repro.errors import ReproError
from repro.verify import verify_model

__all__ = ["run_certified"]

#: Rows per empirical containment batch (the acceptance criterion's 10k).
DEFAULT_ROWS = 10_000


def run_certified(
    seed: int = 2007,
    tier: str = "quick",
    rows: int = DEFAULT_ROWS,
    max_cases: Optional[int] = None,
) -> ConformanceReport:
    """Verify and empirically bound-check every corpus-fitted model.

    Args:
        seed: Master corpus seed (the same corpus the differential
            runner fits, so CI verifies exactly the models it diffs).
        tier: Corpus tier, ``"quick"`` or ``"deep"``.
        rows: Rows per uniform in-domain probe batch.
        max_cases: Cap on corpus cases (for fast local runs); ``None``
            runs them all.
    """
    report = ConformanceReport(tier=tier, seed=seed)
    cases = build_corpus(seed=seed, tier=tier)
    if max_cases is not None:
        cases = cases[:max_cases]
    for index, case in enumerate(cases):
        report.n_cases += 1
        try:
            model = M5Prime(**case.params).fit(case.dataset)
        except ReproError as exc:
            report.add(
                "CONF007",
                f"corpus model failed to fit: {exc}",
                case.name,
            )
            continue
        report.n_checks += 1
        result = verify_model(model)
        if not result.ok:
            findings = "; ".join(
                d.render() for d in result.diagnostics[:3]
            )
            report.add(
                "CONF007",
                f"static verification found {result.n_errors} error(s) "
                f"on a production-fitted model: {findings}",
                case.name,
            )
            continue
        if result.certificate is None:
            report.add(
                "CONF007",
                "clean verification run issued no certificate for a "
                "fitted model (feature_ranges_ should always be recorded "
                "at fit time)",
                case.name,
            )
            continue
        report.n_checks += 1
        assert model.feature_ranges_ is not None
        low = np.array([lo for lo, _ in model.feature_ranges_])
        high = np.array([hi for _, hi in model.feature_ranges_])
        generator = np.random.default_rng(
            np.random.SeedSequence([seed, index, 7])
        )
        X = generator.uniform(low, high, size=(rows, low.shape[0]))
        predictions = model.predict(X)
        leaf_ids = model.leaf_ids(X)
        escaped = result.certificate.check_predictions(leaf_ids, predictions)
        if escaped:
            worst = escaped[0]
            leaf = int(leaf_ids[worst])
            certified = result.certificate.leaf(leaf)
            report.add(
                "CONF007",
                f"{len(escaped)} of {rows} in-domain predictions escaped "
                f"their certified leaf interval; first: row {worst} "
                f"predicted {predictions[worst]!r} outside "
                f"[{certified.output[0]!r}, {certified.output[1]!r}] "
                f"certified for leaf LM{leaf}",
                case.name,
            )
    return report

"""Differential drift harness for the fast suite engine (FAST00x).

The trace-driven simulator stays the oracle; the fast engine
(:mod:`repro.fastsim`) is an approximation whose error is *bounded*, not
zero.  This harness pins that bound: it builds a seeded corpus — every
distinct suite phase as a single-phase workload, simulated at
``jitter=0`` with measurement noise disabled — and compares the fast
engine's per-section CPI against noise-averaged oracle sections under
tolerance gates.  Gates are tolerance-based by design (bit identity is
the trace engine's contract, never the fast path's); a failure means the
analytical layer, the calibration, or the simulator physics drifted
apart, and the calibration must be refit before the fast path can be
trusted again.

Corpus geometry: sections are :data:`CORPUS_INSTRUCTIONS` instructions
long and the first (cold-start) section of each workload is excluded —
the paper's sections sit mid-execution on warm hardware, and both
engines model that steady state.  Oracle sections are averaged over
:data:`CORPUS_ORACLE_REPS` independently seeded runs so the gate
measures drift, not the oracle's own sampling noise.

Check identifiers (continuing the table in
:mod:`repro.conformance.report`):

======== ==============================================================
FAST001  calibration is stale (machine or workload fingerprint mismatch)
FAST002  per-section CPI relative error exceeded the p95 tolerance
FAST003  per-workload mean CPI relative error exceeded tolerance
FAST004  fast dataset violated Table I metric invariants or finiteness
FAST005  fast engine is not deterministic (repeat run differed)
======== ==============================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.conformance.report import ConformanceReport
from repro.counters.invariants import METRIC_INVARIANTS, check_dataset
from repro.errors import StaleCalibrationError
from repro.fastsim.calibration import Calibration, get_calibration, suite_phases
from repro.fastsim.engine import fast_suite
from repro.simulator.config import MachineConfig
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.suite import simulate_suite

__all__ = [
    "FastsimTolerance",
    "corpus_profiles",
    "run_fastsim",
]

#: Instructions per corpus section (long enough that the oracle's own
#: per-section sampling noise sits well inside the drift tolerance).
CORPUS_INSTRUCTIONS = 16_384

#: Sections per corpus workload (section 0 is excluded as cold start).
CORPUS_SECTIONS = 6

#: Independently seeded oracle runs averaged per section.
CORPUS_ORACLE_REPS = 2


@dataclass(frozen=True)
class FastsimTolerance:
    """Drift tolerances of the FAST00x gates.

    Attributes:
        section_p95: Per-section CPI relative error bound at the 95th
            percentile over all warm corpus sections (FAST002).
        workload_mean: Per-workload mean CPI relative error bound
            (FAST003).
    """

    section_p95: float = 0.05
    workload_mean: float = 0.04


def corpus_profiles(
    profiles: Optional[Sequence[WorkloadProfile]] = None,
) -> Sequence[WorkloadProfile]:
    """The seeded drift corpus: each distinct suite phase, isolated.

    Single-phase workloads keep the oracle free of phase-transition
    transients, so the comparison measures modeling drift and nothing
    else.
    """
    return [
        WorkloadProfile.single_phase(
            f"phase{index:02d}",
            params,
            description="fastsim drift corpus phase",
        )
        for index, params in enumerate(suite_phases(profiles))
    ]


def run_fastsim(
    seed: int = 2007,
    tier: str = "quick",
    config: Optional[MachineConfig] = None,
    calibration: Optional[Calibration] = None,
    tolerance: FastsimTolerance = FastsimTolerance(),
) -> ConformanceReport:
    """Bound fast-vs-oracle drift on the seeded corpus.

    Args:
        seed: Master seed: calibration identity, corpus section draws
            and oracle replication seeds all derive from it.
        tier: ``"quick"`` or ``"deep"`` (deep doubles the oracle reps).
        config: Machine model under test (default Core 2 Duo config).
        calibration: Calibration to check; ``None`` fits one for
            (``config``, suite, ``seed``) — the cached-artifact path is
            the CLI's job, not this harness's.
        tolerance: Drift gates (see :class:`FastsimTolerance`).
    """
    report = ConformanceReport(tier=tier, seed=seed)
    machine = config or MachineConfig()
    corpus = corpus_profiles()
    oracle_reps = CORPUS_ORACLE_REPS * (2 if tier == "deep" else 1)

    # FAST001 — freshness. A stale calibration invalidates every other
    # gate, so the run stops here.
    if calibration is None:
        calibration = get_calibration(None, machine, seed=seed)
    report.n_checks += 1
    problems = calibration.staleness(machine, corpus)
    problems.extend(calibration.staleness(machine, None))
    if problems:
        for problem in problems:
            report.add("FAST001", problem, location="calibration")
        return report

    try:
        fast = fast_suite(
            corpus,
            sections_per_workload=CORPUS_SECTIONS,
            instructions_per_section=CORPUS_INSTRUCTIONS,
            config=machine,
            seed=seed + 31,
            jitter=0.0,
            calibration=calibration,
        )
    except StaleCalibrationError as exc:  # pragma: no cover - FAST001 gates
        report.add("FAST001", str(exc), location="fast_suite")
        return report
    report.n_cases = len(corpus)

    # FAST005 — determinism: a repeat run must be bit-identical.
    report.n_checks += 1
    repeat = fast_suite(
        corpus,
        sections_per_workload=CORPUS_SECTIONS,
        instructions_per_section=CORPUS_INSTRUCTIONS,
        config=machine,
        seed=seed + 31,
        jitter=0.0,
        calibration=calibration,
    )
    if not (
        np.array_equal(fast.dataset.X, repeat.dataset.X)
        and np.array_equal(fast.dataset.y, repeat.dataset.y)
    ):
        report.add(
            "FAST005",
            "fast engine repeat run produced a different dataset",
            location="fast_suite",
        )

    # FAST004 — the fast dataset must satisfy the same Table I
    # invariants the trace counters satisfy by construction.
    report.n_checks += 1
    if not (
        np.all(np.isfinite(fast.dataset.X))
        and np.all(np.isfinite(fast.dataset.y))
        and np.all(fast.dataset.X >= 0.0)
        and np.all(fast.dataset.y > 0.0)
    ):
        report.add(
            "FAST004",
            "fast dataset contains non-finite, negative-rate or "
            "non-positive-CPI rows",
            location="dataset",
        )
    else:
        columns = {
            name: fast.dataset.column(name) for name in fast.dataset.attributes
        }
        violations = check_dataset(columns, METRIC_INVARIANTS)
        for violation in violations:
            report.add(
                "FAST004",
                "metric invariant violated on fast dataset: "
                f"{violation.message} ({violation.n_rows} rows)",
                location=violation.invariant,
            )

    # Oracle: noise-free trace runs, averaged across independent seeds.
    oracle_config = dataclasses.replace(machine, measurement_noise_sd=0.0)
    oracle_runs = [
        simulate_suite(
            corpus,
            sections_per_workload=CORPUS_SECTIONS,
            instructions_per_section=CORPUS_INSTRUCTIONS,
            config=oracle_config,
            seed=seed + 1009 + rep,
            jitter=0.0,
        )
        for rep in range(oracle_reps)
    ]
    oracle_y = np.mean([run.dataset.y for run in oracle_runs], axis=0)

    sections = np.array([int(s) for s in fast.dataset.meta["section"]])
    warm = sections >= 1
    relative = np.abs(fast.dataset.y[warm] - oracle_y[warm]) / oracle_y[warm]

    # FAST002 — per-section CPI drift at p95.
    report.n_checks += 1
    p95 = float(np.percentile(relative, 95))
    if p95 > tolerance.section_p95:
        worst = float(np.max(relative))
        report.add(
            "FAST002",
            f"per-section CPI relative error p95 {p95:.4f} exceeds "
            f"{tolerance.section_p95:.4f} (max {worst:.4f} over "
            f"{relative.size} warm sections)",
            location="sections",
        )

    # FAST003 — per-workload mean CPI drift.
    labels = np.asarray([str(w) for w in fast.dataset.meta["workload"]])
    for profile in corpus:
        report.n_checks += 1
        mask = warm & (labels == profile.name)
        fast_mean = float(np.mean(fast.dataset.y[mask]))
        oracle_mean = float(np.mean(oracle_y[mask]))
        drift = abs(fast_mean - oracle_mean) / oracle_mean
        if drift > tolerance.workload_mean:
            report.add(
                "FAST003",
                f"mean CPI drift {drift:.4f} exceeds "
                f"{tolerance.workload_mean:.4f} "
                f"(fast {fast_mean:.4f} vs oracle {oracle_mean:.4f})",
                location=profile.name,
            )
    return report

"""A deliberately naive reference implementation of M5' (the oracle).

Every optimized execution path in this package — the chunked vectorized
split scan (:mod:`repro.core.tree.splitting`), the compiled flat-array
inference (:mod:`repro.serve.compiled`), parallel cross-validation folds,
cached artifacts, JSON round trips — promises to compute *exactly* the
Quinlan/Wang–Witten M5' algorithm.  This module is the other side of
that promise: a straight-line, textbook transcription of the algorithm
with no vectorized split scan, no compiled arrays, no caching — just
recursion, running sums and per-row tree walks.  The differential runner
(:mod:`repro.conformance.differential`) fits both implementations on the
same data and asserts bit-identical trees and predictions.

Being *naive* is the point: an exhaustive per-attribute, per-boundary
loop is slow but easy to audit against the paper's description.  Three
deliberate exceptions keep the oracle honest about what it checks:

* Node/leaf containers reuse :class:`~repro.core.tree.node.LeafNode` and
  :class:`~repro.core.tree.node.SplitNode` — they are dumb structs with
  no algorithmic content, and sharing them makes tree comparison and
  serialization checks trivial.
* Node *linear-model fitting* (least squares, ridge, the greedy M5 term
  dropping, the collinearity filters) is delegated to the shared
  primitives in :mod:`repro.core.tree.linear`.  Those are not among the
  optimized paths under test, and an independent reimplementation of
  LAPACK-backed solvers cannot be bit-identical anyway.  The metamorphic
  suite (:mod:`repro.conformance.metamorphic`) covers their behaviour
  from the outside instead.
* Scalar reductions call ``np.std`` / ``np.mean`` — numpy primitives,
  not repo code.

Bit-identity requires matching the *operation order* of the production
SDR scan, so the running-sum accumulation below mirrors ``np.cumsum``
(strictly sequential left-to-right addition) and the variance is taken
as ``E[y^2] - E[y]^2`` exactly as the vectorized scan computes it.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.tree.builder import MODEL_ATTRIBUTE_POLICIES
from repro.core.tree.linear import (
    LinearModel,
    fit_linear_model,
    resolve_opposed_pairs,
    select_uncorrelated,
    simplify_model,
)
from repro.core.tree.node import LeafNode, Node, SplitNode
from repro.core.tree.smoothing import DEFAULT_SMOOTHING_K
from repro.datasets.dataset import Dataset
from repro.datasets.unpack import unpack_training_data
from repro.errors import ConfigError, DataError, NotFittedError

#: The production tie-break margin: a later attribute replaces the
#: incumbent best split only when its SDR exceeds it by more than this.
SDR_TIE_MARGIN = 1e-15

#: Pessimistic multiplier for saturated models (n <= parameters); the
#: same constant the production pruning applies via
#: :func:`repro.core.tree.linear.adjusted_error`.
SATURATED_PENALTY = 10.0


class ReferenceM5Prime:
    """Textbook M5' fitted with exhaustive loops — the conformance oracle.

    Accepts the same constructor parameters as
    :class:`~repro.core.tree.m5.M5Prime` and produces a tree of the same
    node containers, so the two can be compared field by field.
    """

    def __init__(
        self,
        min_instances: int = 4,
        sd_fraction: float = 0.05,
        prune: bool = True,
        smoothing: bool = False,
        smoothing_k: float = DEFAULT_SMOOTHING_K,
        model_attributes: str = "path+subtree",
        simplify: bool = True,
        collinearity_threshold: float = 0.95,
        ridge: float = 1e-4,
        nonnegative_attributes=None,
    ) -> None:
        if min_instances < 1:
            raise ConfigError(f"min_instances must be at least 1, got {min_instances}")
        if not 0.0 <= sd_fraction < 1.0:
            raise ConfigError(f"sd_fraction must lie in [0, 1), got {sd_fraction}")
        if model_attributes not in MODEL_ATTRIBUTE_POLICIES:
            raise ConfigError(
                f"model_attributes must be one of {MODEL_ATTRIBUTE_POLICIES}, "
                f"got {model_attributes!r}"
            )
        self.min_instances = int(min_instances)
        self.sd_fraction = float(sd_fraction)
        self.prune = bool(prune)
        self.smoothing = bool(smoothing)
        self.smoothing_k = float(smoothing_k)
        self.model_attributes = model_attributes
        self.simplify = bool(simplify)
        self.collinearity_threshold = float(collinearity_threshold)
        self.ridge = float(ridge)
        self.nonnegative_attributes = (
            tuple(nonnegative_attributes) if nonnegative_attributes else ()
        )
        self.root_: Optional[Node] = None
        self.attributes_: Tuple[str, ...] = ()
        self.target_name_: str = "Y"
        self.feature_ranges_: Optional[Tuple[Tuple[float, float], ...]] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        data: Union[Dataset, np.ndarray, Sequence],
        y: Optional[Sequence] = None,
        attribute_names: Optional[Sequence[str]] = None,
    ) -> "ReferenceM5Prime":
        X, targets, names, target_name = unpack_training_data(
            data, y, attribute_names
        )
        X = np.asarray(X, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if X.shape[0] != targets.shape[0]:
            raise DataError("X and y disagree on instance count")
        if X.shape[0] == 0:
            raise DataError("cannot grow a tree on zero instances")
        self._names = tuple(names)
        unknown = set(self.nonnegative_attributes) - set(self._names)
        if unknown:
            raise DataError(
                f"nonnegative_attributes name unknown attributes: {sorted(unknown)}"
            )
        self._nonnegative_indices = tuple(
            self._names.index(name) for name in self.nonnegative_attributes
        )
        self._global_sd = float(np.std(targets))
        root = self._grow(X, targets, frozenset())[0]
        if self.prune:
            root = self._prune(root)[0]
        _assign_leaf_ids(root)
        self.root_ = root
        self.attributes_ = self._names
        self.target_name_ = target_name
        self.feature_ranges_ = tuple(
            (float(np.min(column)), float(np.max(column))) for column in X.T
        )
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, path_attributes: FrozenSet[int]
    ) -> Tuple[Node, FrozenSet[int]]:
        n = y.shape[0]
        sd = float(np.std(y))
        mean = float(np.mean(y))

        split = None
        if n >= 2 * self.min_instances and sd > self.sd_fraction * self._global_sd:
            split = _exhaustive_best_split(X, y, self.min_instances)

        if split is None:
            leaf = LeafNode(n, sd, mean)
            leaf.model = self._fit_model(X, y, path_attributes, frozenset())
            return leaf, frozenset()

        attribute_index, threshold = split
        go_left = X[:, attribute_index] <= threshold
        child_path = path_attributes | {attribute_index}
        left, left_attrs = self._grow(X[go_left], y[go_left], child_path)
        right, right_attrs = self._grow(X[~go_left], y[~go_left], child_path)
        subtree_attrs = left_attrs | right_attrs | {attribute_index}
        node = SplitNode(
            n_instances=n,
            sd=sd,
            mean=mean,
            attribute_index=attribute_index,
            attribute_name=self._names[attribute_index],
            threshold=threshold,
            left=left,
            right=right,
        )
        node.model = self._fit_model(X, y, path_attributes, subtree_attrs)
        return node, subtree_attrs

    def _fit_model(
        self,
        X: np.ndarray,
        y: np.ndarray,
        path_attributes: FrozenSet[int],
        subtree_attributes: FrozenSet[int],
    ) -> LinearModel:
        # Candidate policy transcription; the solves themselves are the
        # shared primitives (see the module docstring for why).
        if self.model_attributes == "all":
            candidates: FrozenSet[int] = frozenset(range(X.shape[1]))
        elif self.model_attributes == "subtree":
            candidates = subtree_attributes
        elif self.model_attributes == "path":
            candidates = path_attributes
        else:
            candidates = path_attributes | subtree_attributes
        usable: Sequence[int] = sorted(candidates)
        if self.collinearity_threshold < 1.0:
            usable = select_uncorrelated(
                X, y, sorted(candidates), self.collinearity_threshold
            )
        model = fit_linear_model(
            X, y, sorted(usable), self._names, self.ridge,
            self._nonnegative_indices,
        )
        if self.simplify:
            model = simplify_model(
                X=X, y=y, model=model, attribute_names=self._names,
                ridge=self.ridge, nonnegative=self._nonnegative_indices,
            )
        if self.collinearity_threshold < 1.0:
            model = resolve_opposed_pairs(
                model, X, y, self._names, self.ridge,
                nonnegative=self._nonnegative_indices,
            )
        return model

    def _prune(self, node: Node) -> Tuple[Node, float]:
        """Textbook bottom-up pruning: collapse when the node's own model
        is pessimistically no worse than its children combined."""
        model = node.model
        assert model is not None
        if node.is_leaf:
            node.estimated_error = _pessimistic_error(model)
            return node, node.estimated_error
        assert isinstance(node, SplitNode)
        node.left, left_error = self._prune(node.left)
        node.right, right_error = self._prune(node.right)
        n_left = node.left.n_instances
        n_right = node.right.n_instances
        subtree_error = (n_left * left_error + n_right * right_error) / (
            n_left + n_right
        )
        model_error = _pessimistic_error(model)
        if model_error <= subtree_error:
            leaf = LeafNode(node.n_instances, node.sd, node.mean)
            leaf.model = model
            leaf.estimated_error = model_error
            return leaf, model_error
        node.estimated_error = subtree_error
        return node, subtree_error

    # ------------------------------------------------------------------
    # Prediction (plain per-row walks; no compiled arrays)
    # ------------------------------------------------------------------
    def _require_fitted(self) -> Node:
        if self.root_ is None:
            raise NotFittedError("ReferenceM5Prime must be fitted before use")
        return self.root_

    def predict(self, X: Union[np.ndarray, Sequence]) -> np.ndarray:
        root = self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != len(self.attributes_):
            raise DataError(
                f"X has {X.shape[1]} columns but the oracle was trained "
                f"on {len(self.attributes_)}"
            )
        out = np.empty(X.shape[0], dtype=np.float64)
        for i in range(X.shape[0]):
            out[i] = self._predict_row(root, X[i])
        return out

    def _predict_row(self, root: Node, x: np.ndarray) -> float:
        path: List[Node] = [root]
        node = root
        while isinstance(node, SplitNode):
            node = node.left if x[node.attribute_index] <= node.threshold else node.right
            path.append(node)
        leaf_model = node.model
        assert leaf_model is not None
        prediction = _evaluate_model(leaf_model, x)
        if not self.smoothing:
            return prediction
        k = self.smoothing_k
        for position in range(len(path) - 2, -1, -1):
            ancestor = path[position]
            below = path[position + 1]
            assert ancestor.model is not None
            ancestor_prediction = _evaluate_model(ancestor.model, x)
            prediction = (
                below.n_instances * prediction + k * ancestor_prediction
            ) / (below.n_instances + k)
        return float(prediction)

    def leaf_ids(self, X: Union[np.ndarray, Sequence]) -> np.ndarray:
        root = self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        out = np.empty(X.shape[0], dtype=np.int64)
        for i in range(X.shape[0]):
            node = root
            while isinstance(node, SplitNode):
                if X[i, node.attribute_index] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[i] = node.leaf_id
        return out

    @property
    def n_leaves(self) -> int:
        return self._require_fitted().n_leaves()


# ----------------------------------------------------------------------
# The exhaustive SDR split search
# ----------------------------------------------------------------------
def _exhaustive_best_split(
    X: np.ndarray, y: np.ndarray, min_leaf: int
) -> Optional[Tuple[int, float]]:
    """Scan every attribute and boundary for the SDR-maximizing split.

    Running sums accumulate strictly left-to-right (the order
    ``np.cumsum`` uses) and the child variance is ``E[y^2] - E[y]^2``,
    clamped at zero — the exact arithmetic of the vectorized scan, one
    candidate at a time.  Ties resolve to the lowest attribute index and
    then the lowest threshold, via the same strict ``+ 1e-15`` margin.
    """
    n = y.shape[0]
    if n < 2 * min_leaf:
        return None
    sd_total = float(np.std(y))
    if sd_total <= 0.0:
        return None

    best_sdr: Optional[float] = None
    best: Optional[Tuple[int, float]] = None
    for attribute_index in range(X.shape[1]):
        column = X[:, attribute_index]
        order = np.argsort(column, kind="stable")
        xs = column[order]
        ys = y[order]
        candidate = _best_boundary(xs, ys, min_leaf, sd_total)
        if candidate is None:
            continue
        candidate_sdr, threshold = candidate
        if best_sdr is None or candidate_sdr > best_sdr + SDR_TIE_MARGIN:
            best_sdr = candidate_sdr
            best = (attribute_index, threshold)
    return best


def _best_boundary(
    xs: np.ndarray, ys: np.ndarray, min_leaf: int, sd_total: float
) -> Optional[Tuple[float, float]]:
    """Best (sdr, threshold) over one sorted column, or ``None``."""
    n = ys.shape[0]
    total_sum = 0.0
    total_sumsq = 0.0
    for value in ys:
        total_sum += float(value)
        total_sumsq += float(value) * float(value)

    best_sdr = -math.inf
    best_index: Optional[int] = None
    running_sum = 0.0
    running_sumsq = 0.0
    for i in range(n - min_leaf):
        value = float(ys[i])
        running_sum += value
        running_sumsq += value * value
        boundary = i  # split between sorted positions i and i + 1
        if boundary < min_leaf - 1:
            continue
        if not xs[boundary] < xs[boundary + 1]:
            continue  # no threshold separates equal values
        n_left = float(boundary + 1)
        n_right = n - n_left
        sum_left = running_sum
        sum_right = total_sum - sum_left
        sumsq_left = running_sumsq
        sumsq_right = total_sumsq - sumsq_left
        var_left = max(sumsq_left / n_left - (sum_left / n_left) ** 2, 0.0)
        var_right = max(sumsq_right / n_right - (sum_right / n_right) ** 2, 0.0)
        weighted_sd = (
            n_left * math.sqrt(var_left) + n_right * math.sqrt(var_right)
        ) / n
        sdr = sd_total - weighted_sd
        if sdr > best_sdr:
            best_sdr = sdr
            best_index = boundary
    if best_index is None or best_sdr <= 0.0:
        return None
    threshold = float((xs[best_index] + xs[best_index + 1]) / 2.0)
    if not threshold < xs[best_index + 1]:
        # Adjacent floats whose midpoint rounds up: cut at the left value
        # so the split actually separates the children.
        threshold = float(xs[best_index])
    return best_sdr, threshold


def _pessimistic_error(model: LinearModel) -> float:
    """M5's (n + v) / (n - v) pessimistic error, transcribed."""
    n = model.n_training
    v = model.n_parameters
    if n <= 0:
        return math.inf
    if n <= v:
        return model.training_error * SATURATED_PENALTY
    return model.training_error * (n + v) / (n - v)


def _evaluate_model(model: LinearModel, x: np.ndarray) -> float:
    """Evaluate a node model term by term, in stored term order."""
    value = model.intercept
    for index, coefficient in zip(model.indices, model.coefficients):
        value += coefficient * x[index]
    return float(value)


def _assign_leaf_ids(root: Node) -> int:
    """Pre-order left-to-right leaf numbering from 1 (LM1..LMk)."""
    counter = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, SplitNode):
            node.leaf_id = 0
            stack.append(node.right)
            stack.append(node.left)
        else:
            counter += 1
            node.leaf_id = counter
    return counter
